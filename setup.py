"""Setup shim enabling legacy editable installs in offline environments.

The offline environment lacks the ``wheel`` package, so PEP 517
editable installs fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` goes through this shim instead.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
