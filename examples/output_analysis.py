"""Rigorous output analysis of a single simulation run.

Simulation papers (this one included) report point estimates from one
run per configuration.  This example shows the library's tooling for
doing better:

1. event tracing — inspect exactly what individual transactions did;
2. warmup inspection — compare statistics with and without truncation;
3. batch-means confidence intervals — a defensible interval from one
   long run, with an autocorrelation diagnostic;
4. cross-replication intervals — the gold standard, for comparison;
5. response-time percentiles — tail behaviour, not just the mean.

Usage::

    python examples/output_analysis.py
"""

from repro import SimulationParameters, simulate_replications
from repro.core.model import LockingGranularityModel
from repro.des.trace import Trace
from repro.stats import batch_means_ci, lag1_autocorrelation, recommended_batches


def main():
    params = SimulationParameters(npros=10, ltot=100, tmax=2000.0, seed=9)

    # -- 1. trace the first moments of the run --------------------------
    trace = Trace(limit=4000)
    model = LockingGranularityModel(params, trace=trace)
    result = model.run()
    print("First transaction lifecycles:")
    print(trace.format(limit=10))
    print("...")
    counts = trace.counts()
    print("Event counts: {} requests, {} denials, {} completions".format(
        counts.get("lock_request", 0), counts.get("lock_deny", 0),
        counts.get("complete", 0)))
    print()

    # -- 2. the point estimates a paper would report --------------------
    print("Point estimates (single run, tmax={:.0f}):".format(params.tmax))
    print("  throughput      : {:.4f}".format(result.throughput))
    print("  response mean   : {:.2f}".format(result.response_time))
    print("  response median : {:.2f}".format(result.response_p50))
    print("  response p95    : {:.2f}".format(result.response_p95))
    print()

    # -- 3. batch-means interval from the same single run ----------------
    samples = model.metrics.response_samples
    batches = recommended_batches(len(samples))
    analysis = batch_means_ci(samples, batches=batches)
    rho = lag1_autocorrelation(analysis.batch_means)
    print("Batch means over {} completions ({} batches of {}):".format(
        len(samples), analysis.batches, analysis.batch_size))
    print("  response mean   : {:.2f} ± {:.2f} (95% CI)".format(
        analysis.mean, analysis.half_width))
    print("  batch-mean lag-1 autocorrelation: {:+.2f} "
          "(near 0 = batches large enough)".format(rho))
    print()

    # -- 4. the gold standard: independent replications -------------------
    replicated = simulate_replications(
        params.replace(tmax=500.0), replications=5
    )
    low, high = replicated.ci("response_time")
    print("Cross-replication check (5 runs of tmax=500):")
    print("  response mean   : {:.2f}  95% CI [{:.2f}, {:.2f}]".format(
        replicated.mean("response_time"), low, high))
    print("  throughput      : {:.4f} ± {:.4f}".format(
        replicated.mean("throughput"),
        replicated.half_width("throughput")))
    print()
    print("The batch-means and replication intervals should overlap; if")
    print("they do not, the run is too short or the warmup too small.")


if __name__ == "__main__":
    main()
