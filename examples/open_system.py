"""Open-system study: where is the saturation knee?

The paper's model is closed (a fixed terminal population).  Real OLTP
front-ends look open: requests arrive whether or not earlier ones
finished.  This example uses the open-arrival extension to find the
saturation knee — the arrival rate beyond which response times explode
— and shows how the lock granularity moves that knee.

Usage::

    python examples/open_system.py
"""

from repro import SimulationParameters, simulate
from repro.analytic import throughput_upper_bound

ARRIVAL_RATES = (0.05, 0.10, 0.14, 0.17, 0.19, 0.22)


def sweep(params):
    print("  {:>8s} {:>11s} {:>10s} {:>9s} {:>9s}".format(
        "lambda", "throughput", "response", "backlog", "denied"))
    knee = None
    for rate in ARRIVAL_RATES:
        result = simulate(
            params.replace(arrival_process="open", arrival_rate=rate)
        )
        backlog = result.mean_blocked + result.mean_pending
        print("  {:>8.2f} {:>11.4f} {:>10.1f} {:>9.1f} {:>8.0%}".format(
            rate, result.throughput, result.response_time, backlog,
            result.denial_rate))
        if knee is None and result.throughput < 0.9 * rate:
            knee = rate
    return knee


def main():
    base = SimulationParameters(npros=10, tmax=800.0, seed=21)

    good = base.replace(ltot=20)
    print("Well-chosen granularity (ltot = 20):")
    print("  analytic capacity bound: {:.3f} txn/unit".format(
        throughput_upper_bound(good)))
    knee_good = sweep(good)
    print()

    bad = base.replace(ltot=5000)
    print("Record-level locking (ltot = 5000):")
    print("  analytic capacity bound: {:.3f} txn/unit".format(
        throughput_upper_bound(bad)))
    knee_bad = sweep(bad)
    print()

    print("Saturation knees: ltot=20 -> {} | ltot=5000 -> {}".format(
        "~{:.2f}/unit".format(knee_good) if knee_good else "beyond sweep",
        "~{:.2f}/unit".format(knee_bad) if knee_bad else "beyond sweep"))
    print()
    print("The closed-model conclusion carries over: lock overhead at fine")
    print("granularity consumes real capacity, so the open system saturates")
    print("at a visibly lower arrival rate.")


if __name__ == "__main__":
    main()
