"""The lock-manager substrate used standalone (no simulation).

Shows the pieces a database implementer would reuse directly:

1. preclaim (all-or-nothing) locking — the paper's protocol;
2. incremental 2PL with a waits-for deadlock and its resolution;
3. multi-granularity (intention) locking over a database → file →
   block hierarchy, as in the paper's Gamma discussion.

Usage::

    python examples/lock_manager_demo.py
"""

from repro.lockmgr import (
    DeadlockDetector,
    GranuleTree,
    HierarchicalLockManager,
    LockManager,
    LockMode,
    RequestStatus,
)
from repro.lockmgr.manager import exclusive_requests


def demo_preclaim():
    print("1. Preclaim (conservative) locking")
    manager = LockManager()
    assert manager.try_acquire_all("transfer#1", exclusive_requests([101, 202])) is None
    print("   transfer#1 locked accounts 101 and 202 atomically")
    blocker = manager.try_acquire_all("transfer#2", exclusive_requests([202, 303]))
    print("   transfer#2 wanted 202 and 303: denied, blocked by "
          "{!r}; nothing was acquired".format(blocker))
    manager.release_all("transfer#1")
    assert manager.try_acquire_all("transfer#2", exclusive_requests([202, 303])) is None
    print("   after transfer#1 finished, transfer#2 got its locks")
    print()


def demo_deadlock():
    print("2. Incremental 2PL and deadlock resolution")
    manager = LockManager()
    start_order = {"T-old": 1, "T-new": 2}
    manager.acquire("T-old", "acct-A", LockMode.X)
    manager.acquire("T-new", "acct-B", LockMode.X)
    waiting = {
        "T-old": manager.acquire("T-old", "acct-B", LockMode.X),
        "T-new": manager.acquire("T-new", "acct-A", LockMode.X),
    }
    detector = DeadlockDetector(manager, victim_key=lambda o: start_order[o])
    cycle = detector.find_cycle()
    victim = detector.choose_victim(cycle)
    print("   cycle detected: {}; victim (youngest): {}".format(cycle, victim))
    manager.cancel(waiting[victim])
    granted = manager.release_all(victim)
    print("   victim aborted; its release granted {} waiting "
          "request(s)".format(len(granted)))
    assert detector.find_cycle() is None
    print("   waits-for graph is cycle-free again")
    print()


def demo_hierarchy():
    print("3. Multi-granularity locking (database → files → blocks)")
    tree = GranuleTree(root="database")
    blocks = tree.add_levels([4, 25])  # 4 files x 25 blocks
    hlm = HierarchicalLockManager(tree)

    record_updater = "updater"
    report_writer = "reporter"

    target_block = blocks[0]
    assert hlm.try_lock(record_updater, target_block, LockMode.X) is None
    print("   updater X-locked one block (IX on its file and the database)")

    same_file = tree.parent(target_block)
    blocked_by = hlm.try_lock(report_writer, same_file, LockMode.S)
    print("   reporter tried to S-lock that whole file: blocked by "
          "{!r} (IX vs S)".format(blocked_by))

    other_file = tree.children("database")[1]
    assert hlm.try_lock(report_writer, other_file, LockMode.S) is None
    print("   reporter S-locked a different file instead — block- and "
          "file-level locks coexist")

    queued = hlm.lock_queued(report_writer, same_file, LockMode.S)
    hlm.unlock_all(record_updater)
    assert hlm.is_fully_granted(queued)
    print("   once the updater finished, the queued file lock was granted")
    assert all(r.status is RequestStatus.GRANTED for r in queued)
    print()


def main():
    demo_preclaim()
    demo_deadlock()
    demo_hierarchy()
    print("These are the mechanisms whose *costs* the simulation study")
    print("quantifies: every lock acquired above would charge lcputime +")
    print("liotime against the cluster in the model.")


if __name__ == "__main__":
    main()
