"""Pick a lock granularity for a described workload.

Demonstrates the intended tuning loop:

1. describe the workload as :class:`SimulationParameters`;
2. get a fast analytic bracket from :func:`optimal_ltot_estimate`;
3. refine with short simulations around the bracket;
4. confirm the winner with replications and confidence intervals.

Usage::

    python examples/granularity_tuning.py [--sequential|--random-access]
"""

import argparse

from repro import SimulationParameters, simulate, simulate_replications
from repro.analytic import optimal_ltot_estimate


def describe(params):
    access = "sequential" if params.placement == "best" else "random"
    print("Workload: {} entities, mean transaction ~{:.0f} entities, "
          "{} access, {} processors, {} concurrent users".format(
              params.dbsize, params.mean_transaction_size, access,
              params.npros, params.ntrans))


def tune(params):
    describe(params)

    # Step 1: analytic bracket (instant).
    estimate = optimal_ltot_estimate(params)
    print("Analytic estimate of the optimum: ltot ≈ {}".format(estimate))

    # Step 2: short simulations on a log grid around the estimate.
    grid = sorted({1, max(1, estimate // 10), estimate,
                   min(params.dbsize, estimate * 10), params.dbsize})
    print("Refining over {} with short runs:".format(grid))
    scores = {}
    for ltot in grid:
        result = simulate(params.replace(ltot=ltot, tmax=400.0))
        scores[ltot] = result.throughput
        print("  ltot={:>5d}: throughput {:.4f}, denial rate {:.0%}, "
              "lock overhead {:.0f}".format(
                  ltot, result.throughput, result.denial_rate,
                  result.lock_overhead))
    winner = max(scores, key=scores.get)

    # Step 3: confirm with replications.
    confirmed = simulate_replications(
        params.replace(ltot=winner, tmax=400.0), replications=5
    )
    print("Chosen granularity: ltot = {} "
          "(throughput {:.4f} ± {:.4f}, 95% CI over 5 replications)".format(
              winner, confirmed.mean("throughput"),
              confirmed.half_width("throughput")))
    print()
    return winner


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--random-access", action="store_true",
        help="tune for randomly-accessing transactions instead of "
        "sequential ones",
    )
    args = parser.parse_args()

    if args.random_access:
        # Small transactions touching random entities: the paper's §4
        # case where fine granularity (entity locks) wins.
        params = SimulationParameters(
            placement="random", maxtransize=50, npros=10, seed=5
        )
    else:
        # Sequential scans (best placement): coarse-ish is enough.
        params = SimulationParameters(placement="best", npros=10, seed=5)

    winner = tune(params)
    if args.random_access:
        print("Random access to small parts of the database favours fine")
        print("granularity — the tuned ltot should be near dbsize "
              "(got {}).".format(winner))
    else:
        print("Sequential access favours coarse granularity — the tuned")
        print("ltot should be far below 200 (got {}).".format(winner))


if __name__ == "__main__":
    main()
