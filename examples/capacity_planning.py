"""Capacity planning: how many processors for a target throughput?

Uses the model the other way around: fix the workload and the locking
design, then sweep the cluster size (the paper's §3.1 axis) to find
the smallest shared-nothing configuration that meets a throughput SLO,
reporting the diminishing returns and the granularity interaction.

Usage::

    python examples/capacity_planning.py [--target 0.4]
"""

import argparse

from repro import SimulationParameters, simulate

NPROS_CANDIDATES = (1, 2, 5, 10, 20, 30, 40)


def plan(target, params):
    print("Target throughput: {:.2f} txn/unit".format(target))
    print("  {:>6s} {:>11s} {:>10s} {:>9s} {:>10s}".format(
        "npros", "throughput", "response", "io util", "per-proc"))
    chosen = None
    previous = None
    for npros in NPROS_CANDIDATES:
        result = simulate(params.replace(npros=npros))
        per_proc = result.throughput / npros
        print("  {:>6d} {:>11.4f} {:>10.1f} {:>8.0%} {:>10.4f}".format(
            npros, result.throughput, result.response_time,
            result.io_utilization, per_proc))
        if chosen is None and result.throughput >= target:
            chosen = npros
        if previous is not None and result.throughput < previous * 1.05:
            print("  (diminishing returns past npros={})".format(npros))
            break
        previous = result.throughput
    return chosen


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target", type=float, default=0.4,
                        help="throughput SLO in transactions per time unit")
    args = parser.parse_args()

    base = SimulationParameters(ltot=50, tmax=500.0, seed=11)

    print("With a well-chosen granularity (ltot=50):")
    good = plan(args.target, base)
    print()
    print("With record-level locking (ltot=5000):")
    fine = plan(args.target, base.replace(ltot=5000))
    print()

    if good is not None:
        print("SLO met with {} processors at ltot=50.".format(good))
    else:
        print("SLO not reachable at ltot=50 within {} processors.".format(
            NPROS_CANDIDATES[-1]))
    if fine is not None:
        print("SLO met with {} processors at ltot=5000.".format(fine))
    else:
        print("SLO not reachable at ltot=5000 within {} processors — "
              "lock overhead absorbs the added hardware.".format(
                  NPROS_CANDIDATES[-1]))
    print()
    print("The gap between the two plans is the hardware cost of a bad")
    print("granularity decision — the paper's 'penalty for not")
    print("maintaining the optimum number of locks', which grows with")
    print("the number of processors.")


if __name__ == "__main__":
    main()
