"""Quickstart: run the simulator once, then a small granularity sweep.

Usage::

    python examples/quickstart.py
"""

from repro import SimulationParameters, simulate, simulate_replications


def main():
    # -- one run at the paper's Table 1 defaults -----------------------
    params = SimulationParameters(tmax=1000.0, npros=10, ltot=100)
    result = simulate(params)

    print("One run at Table 1 defaults (npros=10, ltot=100):")
    print("  completed transactions : {}".format(result.totcom))
    print("  throughput             : {:.4f} txn/unit".format(result.throughput))
    print("  mean response time     : {:.1f} units".format(result.response_time))
    print("  I/O utilisation        : {:.1%}".format(result.io_utilization))
    print("  CPU utilisation        : {:.1%}".format(result.cpu_utilization))
    print("  lock overhead          : {:.1f} units ({} requests, "
          "{:.0%} denied)".format(
              result.lock_overhead, result.lock_requests, result.denial_rate))

    # -- a granularity sweep with confidence intervals ------------------
    print()
    print("Granularity sweep (3 replications each):")
    print("  {:>6s}  {:>10s}  {:>12s}".format("ltot", "throughput", "95% CI"))
    for ltot in (1, 10, 100, 1000, 5000):
        replicated = simulate_replications(
            params.replace(ltot=ltot, tmax=500.0), replications=3
        )
        mean = replicated.mean("throughput")
        half = replicated.half_width("throughput")
        print("  {:>6d}  {:>10.4f}  {:>12s}".format(
            ltot, mean, "±{:.4f}".format(half)))

    print()
    print("The convex shape — poor at 1 lock (serial), poor at 5000 locks")
    print("(lock overhead), best in between — is the paper's Figure 2.")


if __name__ == "__main__":
    main()
