"""A debit/credit banking workload on a shared-nothing cluster.

The paper's introduction motivates concurrency control with the funds
transfer (lost update) problem, and its references benchmark NonStop
SQL on Debit-Credit.  This example models such an OLTP system:

* a large accounts table horizontally partitioned over the cluster;
* a flood of tiny debit/credit transactions (a few entities each);
* a minority of branch-level reporting scans (large, sequential);
* the operational question: file-level, block-level or record-level
  locking?

Usage::

    python examples/banking_workload.py
"""

from repro import SimulationParameters, simulate

#: Candidate lock granularities for a 5000-entity accounts table.
CANDIDATES = {
    "database lock": 1,
    "file-level (10 files)": 10,
    "block-level (200 blocks)": 200,
    "record-level": 5000,
}


def run_scenario(title, params):
    print(title)
    print("  {:26s} {:>10s} {:>10s} {:>9s} {:>9s}".format(
        "granularity", "throughput", "response", "denied", "lock ovh"))
    results = {}
    for name, ltot in CANDIDATES.items():
        result = simulate(params.replace(ltot=ltot))
        results[name] = result
        print("  {:26s} {:>10.4f} {:>10.1f} {:>8.0%} {:>9.0f}".format(
            name, result.throughput, result.response_time,
            result.denial_rate, result.lock_overhead))
    best = max(results, key=lambda n: results[n].throughput)
    print("  -> best: {}".format(best))
    print()
    return best


def main():
    cluster = dict(npros=20, tmax=600.0, seed=42)

    # Pure OLTP: debit/credit touches a handful of random records.
    oltp = SimulationParameters(
        maxtransize=8, placement="random", ntrans=40, **cluster
    )
    oltp_best = run_scenario(
        "Scenario 1 — pure debit/credit (tiny random transactions):", oltp
    )

    # Mixed: 80% debit/credit plus 20% branch reports scanning ~5% of
    # the table sequentially (best placement approximates range scans).
    mixed = SimulationParameters(
        workload="mixed",
        mix_small_fraction=0.8,
        mix_small_maxtransize=8,
        mix_large_maxtransize=500,
        placement="best",
        ntrans=40,
        maxtransize=500,
        **cluster,
    )
    mixed_best = run_scenario(
        "Scenario 2 — 80% debit/credit + 20% branch reports:", mixed
    )

    # Heavy load: ten times the terminals at end-of-day peak.
    peak = mixed.replace(ntrans=200)
    peak_best = run_scenario(
        "Scenario 3 — end-of-day peak (200 concurrent terminals):", peak
    )

    print("Operational summary")
    print("  tiny random updates      -> {}".format(oltp_best))
    print("  mixed with report scans  -> {}".format(mixed_best))
    print("  heavy peak load          -> {}".format(peak_best))
    print()
    print("This mirrors the paper's conclusions: random access to small")
    print("parts of the database rewards fine granularity; adding large")
    print("sequential transactions and load pushes the optimum sharply")
    print("toward coarse (file-level) locking.")


if __name__ == "__main__":
    main()
