"""Unit tests for transaction admission policies."""

import pytest

from repro.core.parameters import SimulationParameters
from repro.core.transaction import Transaction
from repro.engine.txn_scheduler import (
    AdaptiveAdmission,
    FCFSAdmission,
    SmallestFirstAdmission,
    make_admission_policy,
)


def txns(*sizes):
    return [Transaction(i, nu=size, lock_count=1) for i, size in enumerate(sizes)]


class TestFCFS:
    def test_admits_head_when_unlimited(self):
        policy = FCFSAdmission()
        assert policy.select(txns(5, 1, 9), in_flight=100) == 0

    def test_empty_pending_returns_none(self):
        assert FCFSAdmission().select([], in_flight=0) is None

    def test_mpl_limit_holds_admission(self):
        policy = FCFSAdmission(mpl_limit=2)
        pending = txns(5)
        assert policy.select(pending, in_flight=2) is None
        assert policy.select(pending, in_flight=1) == 0

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            FCFSAdmission(mpl_limit=-1)

    def test_feedback_hooks_are_noops(self):
        policy = FCFSAdmission()
        policy.on_grant()
        policy.on_deny()


class TestSmallestFirst:
    def test_picks_smallest(self):
        policy = SmallestFirstAdmission()
        assert policy.select(txns(5, 1, 9), in_flight=0) == 1

    def test_ties_resolve_to_earliest(self):
        policy = SmallestFirstAdmission()
        assert policy.select(txns(3, 3, 3), in_flight=0) == 0

    def test_respects_mpl(self):
        policy = SmallestFirstAdmission(mpl_limit=1)
        assert policy.select(txns(5, 1), in_flight=1) is None


class TestAdaptive:
    def test_initial_limit_enforced(self):
        policy = AdaptiveAdmission(initial_mpl=4)
        assert policy.select(txns(1), in_flight=4) is None
        assert policy.select(txns(1), in_flight=3) == 0

    def test_high_denial_rate_halves_limit(self):
        policy = AdaptiveAdmission(initial_mpl=8, window=10, low=0.1, high=0.4)
        for _ in range(5):
            policy.on_grant()
        for _ in range(5):
            policy.on_deny()
        assert policy.mpl_limit == 4

    def test_low_denial_rate_grows_limit(self):
        policy = AdaptiveAdmission(initial_mpl=8, window=10, low=0.2, high=0.5)
        for _ in range(10):
            policy.on_grant()
        assert policy.mpl_limit == 9

    def test_mid_rate_leaves_limit(self):
        policy = AdaptiveAdmission(initial_mpl=8, window=10, low=0.1, high=0.6)
        for _ in range(7):
            policy.on_grant()
        for _ in range(3):
            policy.on_deny()
        assert policy.mpl_limit == 8

    def test_limit_never_below_one(self):
        policy = AdaptiveAdmission(initial_mpl=1, window=2, low=0.1, high=0.4)
        policy.on_deny()
        policy.on_deny()
        assert policy.mpl_limit == 1

    def test_limit_capped_at_max(self):
        policy = AdaptiveAdmission(initial_mpl=4, max_mpl=4, window=2, low=0.4, high=0.9)
        policy.on_grant()
        policy.on_grant()
        assert policy.mpl_limit == 4

    def test_window_resets_after_adaptation(self):
        policy = AdaptiveAdmission(initial_mpl=8, window=4, low=0.1, high=0.4)
        for _ in range(4):
            policy.on_deny()
        assert policy.mpl_limit == 4
        assert policy._grants == 0 and policy._denials == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveAdmission(initial_mpl=0)
        with pytest.raises(ValueError):
            AdaptiveAdmission(low=0.5, high=0.5)


class TestFactory:
    def test_fcfs(self):
        policy = make_admission_policy(SimulationParameters(txn_policy="fcfs"))
        assert isinstance(policy, FCFSAdmission)
        assert policy.mpl_limit == 0

    def test_smallest_with_limit(self):
        policy = make_admission_policy(
            SimulationParameters(txn_policy="smallest", mpl_limit=3)
        )
        assert isinstance(policy, SmallestFirstAdmission)
        assert policy.mpl_limit == 3

    def test_adaptive_default_initial_scales_with_npros(self):
        policy = make_admission_policy(
            SimulationParameters(txn_policy="adaptive", npros=10, ntrans=200)
        )
        assert isinstance(policy, AdaptiveAdmission)
        assert policy.mpl_limit == 20

    def test_adaptive_initial_capped_by_population(self):
        policy = make_admission_policy(
            SimulationParameters(txn_policy="adaptive", npros=10, ntrans=5)
        )
        assert policy.mpl_limit == 5

    def test_adaptive_explicit_limit_wins(self):
        policy = make_admission_policy(
            SimulationParameters(txn_policy="adaptive", mpl_limit=7)
        )
        assert policy.mpl_limit == 7
