"""Unit tests for the cluster layer (sites, primary, partitions)."""

import pytest

from repro.des.engine import Environment
from repro.engine.cluster import Cluster
from repro.net import Network


def _cluster(nnodes=3):
    env = Environment()
    network = Network(env, nnodes)
    return env, network, Cluster(env, nnodes, network)


class _Txn:
    def __init__(self, tid):
        self.tid = tid


class TestClusterTopology:
    def test_home_is_deterministic_round_robin(self):
        _env, _net, cluster = _cluster(3)
        assert [cluster.home(_Txn(tid)) for tid in (1, 2, 3, 4)] == [0, 1, 2, 0]

    def test_validates_nnodes(self):
        env = Environment()
        with pytest.raises(ValueError):
            Cluster(env, 0, Network(env, 1))

    def test_component_and_majority(self):
        _env, net, cluster = _cluster(3)
        assert cluster.component(0) == frozenset((0, 1, 2))
        assert cluster.in_majority(2)
        net.partition([(0, 1), (2,)])
        assert cluster.component(2) == frozenset((2,))
        assert cluster.in_majority(0)
        assert not cluster.in_majority(2)

    def test_elect_updates_primary_and_counter(self):
        _env, _net, cluster = _cluster(3)
        assert cluster.primary == 0
        cluster.elect(1)
        assert cluster.primary == 1
        assert cluster.elections == 1


class TestPartitionAccounting:
    def test_partition_time_accumulates_across_windows(self):
        env, net, cluster = _cluster(3)
        env.schedule_callback(lambda: net.partition([(0, 1), (2,)]), 10.0)
        env.schedule_callback(net.heal, 15.0)
        env.schedule_callback(lambda: net.partition([(0,), (1, 2)]), 20.0)
        env.run(until=30.0)
        # 5 closed + 10 still open at t=30.
        assert cluster.partition_time(30.0) == pytest.approx(15.0)
        assert cluster.partitioned

    def test_isolated_site_time_counts_minority_sites(self):
        env, net, cluster = _cluster(3)
        env.schedule_callback(lambda: net.partition([(0, 1), (2,)]), 10.0)
        env.schedule_callback(net.heal, 15.0)
        env.run(until=20.0)
        # Site 2 alone spent 5 time units outside the majority.
        assert cluster.isolated_site_time(20.0) == pytest.approx(5.0)

    def test_no_majority_isolates_every_site(self):
        env, net, cluster = _cluster(4)
        net.partition([(0, 1), (2, 3)])  # even split: no strict majority
        env.run(until=10.0)
        assert cluster.isolated_site_time(10.0) == pytest.approx(40.0)

    def test_repartition_without_heal_does_not_double_count(self):
        env, net, cluster = _cluster(3)
        env.schedule_callback(lambda: net.partition([(0, 1), (2,)]), 10.0)
        env.schedule_callback(lambda: net.partition([(0, 2), (1,)]), 20.0)
        env.schedule_callback(net.heal, 25.0)
        env.run(until=30.0)
        assert cluster.partition_time(30.0) == pytest.approx(15.0)
        # Site 2 isolated for [10, 20), site 1 for [20, 25).
        assert cluster.isolated_site_time(30.0) == pytest.approx(15.0)

    def test_availability_is_exactly_one_without_partitions(self):
        env, _net, cluster = _cluster(3)
        env.run(until=100.0)
        assert cluster.availability(0.0, 100.0) == 1.0

    def test_availability_reflects_isolated_capacity(self):
        env, net, cluster = _cluster(3)
        env.schedule_callback(lambda: net.partition([(0, 1), (2,)]), 0.0)
        env.run(until=30.0)
        # One of three sites isolated the whole horizon: 1 - 30/(3*30).
        assert cluster.availability(0.0, 30.0) == pytest.approx(1.0 - 1.0 / 3.0)
