"""Unit tests for the multiprocessor machine."""

import pytest

from repro.engine.machine import BusySnapshot, Machine


class TestMachine:
    def test_validates_npros(self, env):
        with pytest.raises(ValueError):
            Machine(env, 0)

    def test_len_and_indexing(self, env):
        machine = Machine(env, 4)
        assert len(machine) == 4
        assert machine[2].index == 2

    def test_lock_overhead_splits_evenly(self, env):
        machine = Machine(env, 4)

        def requester(env):
            yield machine.lock_overhead(cpu_total=4.0, io_total=8.0)
            return env.now

        process = env.process(requester(env))
        # Each node gets cpu 1.0 and io 2.0 concurrently: done at 2.0.
        assert env.run(until=process) == 2.0
        for node in machine.processors:
            assert node.cpu_busy("lock") == pytest.approx(1.0)
            assert node.io_busy("lock") == pytest.approx(2.0)

    def test_lock_overhead_zero_total(self, env):
        machine = Machine(env, 2)

        def requester(env):
            yield machine.lock_overhead(0.0, 0.0)
            return env.now

        process = env.process(requester(env))
        assert env.run(until=process) == 0.0

    def test_single_processor_machine(self, env):
        machine = Machine(env, 1)

        def requester(env):
            yield machine.lock_overhead(1.0, 1.0)
            return env.now

        process = env.process(requester(env))
        assert env.run(until=process) == 1.0

    def test_busy_snapshot_totals(self, env):
        machine = Machine(env, 2)
        machine[0].io(3.0)
        machine[1].io(5.0)
        machine[0].compute(1.0)
        env.run()
        snapshot = machine.busy_snapshot()
        assert snapshot.totios == pytest.approx(8.0)
        assert snapshot.totcpus == pytest.approx(1.0)
        assert snapshot.lockios == 0.0
        assert snapshot.lockcpus == 0.0

    def test_txn_busy_totals(self, env):
        machine = Machine(env, 2)
        machine[0].io(3.0)
        machine[1].compute(2.0)
        env.run()
        cpu, io = machine.txn_busy_totals()
        assert cpu == pytest.approx(2.0)
        assert io == pytest.approx(3.0)


class TestBusySnapshot:
    def test_minus(self):
        after = BusySnapshot(10.0, 20.0, 2.0, 4.0)
        before = BusySnapshot(4.0, 8.0, 1.0, 2.0)
        window = after.minus(before)
        assert window.totcpus == 6.0
        assert window.totios == 12.0
        assert window.lockcpus == 1.0
        assert window.lockios == 2.0
