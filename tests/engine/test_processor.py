"""Unit tests for the processor node."""

import pytest

from repro.engine.processor import LOCK_TAG, TXN_TAG, Processor


class TestProcessor:
    def test_has_private_cpu_and_disk(self, env):
        node = Processor(env, 3)
        assert node.cpu is not node.disk
        assert "3" in node.cpu.name
        assert "3" in node.disk.name

    def test_io_then_compute_sequential(self, env):
        node = Processor(env, 0)

        def subtxn(env):
            yield node.io(4.0)
            io_done_at = env.now
            yield node.compute(1.0)
            return (io_done_at, env.now)

        process = env.process(subtxn(env))
        assert env.run(until=process) == (4.0, 5.0)

    def test_lock_work_uses_both_devices_concurrently(self, env):
        node = Processor(env, 0)

        def requester(env):
            yield node.lock_work(cpu_demand=1.0, io_demand=4.0)
            return env.now

        process = env.process(requester(env))
        # Concurrent: max(1, 4) = 4, not 5.
        assert env.run(until=process) == 4.0

    def test_lock_work_zero_demand_completes_instantly(self, env):
        node = Processor(env, 0)

        def requester(env):
            yield node.lock_work(0.0, 0.0)
            return env.now

        process = env.process(requester(env))
        assert env.run(until=process) == 0.0

    def test_lock_work_single_device(self, env):
        node = Processor(env, 0)

        def requester(env):
            yield node.lock_work(cpu_demand=2.0, io_demand=0.0)
            return env.now

        process = env.process(requester(env))
        assert env.run(until=process) == 2.0

    def test_lock_work_preempts_transaction_work(self, env):
        node = Processor(env, 0)
        txn_done = node.io(10.0)

        def lock_request(env):
            yield env.timeout(2)
            yield node.lock_work(0.0, 3.0)
            return env.now

        lock_proc = env.process(lock_request(env))
        env.run(until=lock_proc)
        assert env.now == 5.0  # lock work ran immediately on arrival
        env.run(until=txn_done)
        assert env.now == 13.0  # transaction resumed afterwards

    def test_busy_split_by_tag(self, env):
        node = Processor(env, 0)
        node.io(5.0)
        node.compute(2.0)

        def locker(env):
            yield env.timeout(1)
            yield node.lock_work(1.0, 1.0)

        env.process(locker(env))
        env.run()
        assert node.io_busy(TXN_TAG) == pytest.approx(5.0)
        assert node.io_busy(LOCK_TAG) == pytest.approx(1.0)
        assert node.cpu_busy(TXN_TAG) == pytest.approx(2.0)
        assert node.cpu_busy(LOCK_TAG) == pytest.approx(1.0)
        assert node.cpu_busy() == pytest.approx(3.0)
