"""Fault hooks on servers, processors and the machine.

These are the engine-layer primitives the
:class:`~repro.faults.injector.FaultInjector` drives: crash/recover on
nodes (killing in-flight jobs), service-time scaling on devices, and
downtime/degraded-time accounting on the machine.
"""

import pytest

from repro.des.server import Server
from repro.engine.machine import Machine
from repro.engine.processor import Processor, ProcessorDown


class TestServerFaultHooks:
    def test_set_scale_inflates_future_jobs_only(self, env):
        server = Server(env)
        first = server.submit(2.0)
        server.set_scale(3.0)
        second = server.submit(2.0)

        def waiter(env):
            yield first
            first_at = env.now
            yield second
            return first_at, env.now

        process = env.process(waiter(env))
        # First job keeps its 2.0 demand; second costs 2.0 * 3 = 6.0.
        assert env.run(until=process) == (2.0, 8.0)

    def test_set_scale_validation(self, env):
        server = Server(env)
        with pytest.raises(ValueError):
            server.set_scale(0.0)

    def test_fail_all_fails_waiters_and_counts(self, env):
        server = Server(env)
        outcomes = []

        def worker(env, demand):
            try:
                yield server.submit(demand)
                outcomes.append("done")
            except ProcessorDown:
                outcomes.append("down")

        env.process(worker(env, 5.0))
        env.process(worker(env, 5.0))
        env.run(until=1.0)
        killed = server.fail_all(ProcessorDown(0))
        env.run(until=20.0)
        assert killed == 2
        assert outcomes == ["down", "down"]

    def test_fail_all_credits_partial_service(self, env):
        server = Server(env)
        done = server.submit(10.0)
        done.defuse()
        env.run(until=4.0)
        server.fail_all(ProcessorDown(0))
        assert server.busy_time() == pytest.approx(4.0)

    def test_fail_all_on_idle_server_is_a_noop(self, env):
        server = Server(env)
        assert server.fail_all(ProcessorDown(0)) == 0


class TestProcessorFaultHooks:
    def test_crash_marks_down_and_kills_jobs(self, env):
        node = Processor(env, 0)
        node.io(5.0).defuse()
        node.compute(5.0).defuse()
        env.run(until=1.0)
        assert node.crash() == 2
        assert node.up is False

    def test_crash_is_idempotent(self, env):
        node = Processor(env, 0)
        node.crash()
        assert node.crash() == 0

    def test_down_node_fails_new_submissions(self, env):
        node = Processor(env, 0)
        node.crash()
        caught = []

        def worker(env):
            try:
                yield node.io(1.0)
            except ProcessorDown as down:
                caught.append(down.index)

        env.process(worker(env))
        env.run()
        assert caught == [0]

    def test_recover_restores_service(self, env):
        node = Processor(env, 0)
        node.crash()
        node.recover()
        assert node.up is True

        def worker(env):
            yield node.io(2.0)
            return env.now

        process = env.process(worker(env))
        assert env.run(until=process) == 2.0

    def test_exception_names_the_node(self):
        assert "3" in str(ProcessorDown(3))
        assert ProcessorDown(3).index == 3


class TestMachineFaultAccounting:
    def test_crash_recover_cycle_accumulates_downtime(self, env):
        machine = Machine(env, 4)
        env.run(until=10.0)
        machine.crash(1)
        env.run(until=25.0)
        machine.recover(1)
        assert machine.downtime(env.now) == pytest.approx(15.0)
        assert machine.down_count == 0

    def test_open_interval_counts_toward_downtime(self, env):
        machine = Machine(env, 2)
        env.run(until=5.0)
        machine.crash(0)
        env.run(until=12.0)
        assert machine.down_count == 1
        assert machine.downtime(env.now) == pytest.approx(7.0)

    def test_downtime_sums_over_nodes(self, env):
        machine = Machine(env, 4)
        machine.crash(0)
        machine.crash(1)
        env.run(until=10.0)
        assert machine.downtime(env.now) == pytest.approx(20.0)

    def test_degraded_time_is_wall_clock_not_per_node(self, env):
        machine = Machine(env, 4)
        machine.crash(0)
        machine.crash(1)
        env.run(until=10.0)
        machine.recover(0)
        env.run(until=16.0)
        machine.recover(1)
        assert machine.degraded_time(env.now) == pytest.approx(16.0)

    def test_crash_on_down_node_is_a_noop(self, env):
        machine = Machine(env, 2)
        machine.crash(0)
        assert machine.crash(0) == 0
        assert machine.down_count == 1

    def test_lock_overhead_divides_over_up_nodes_only(self, env):
        machine = Machine(env, 4)
        machine.crash(0)
        machine.crash(1)

        def requester(env):
            yield machine.lock_overhead(cpu_total=4.0, io_total=0.0)
            return env.now

        process = env.process(requester(env))
        # 4.0 of CPU over the 2 surviving nodes: 2.0 each, done at 2.0.
        assert env.run(until=process) == 2.0

    def test_lock_overhead_free_when_all_down(self, env):
        machine = Machine(env, 2)
        machine.crash(0)
        machine.crash(1)

        def requester(env):
            yield machine.lock_overhead(4.0, 4.0)
            return env.now

        process = env.process(requester(env))
        assert env.run(until=process) == 0.0

    def test_lock_scale_inflates_overhead(self, env):
        machine = Machine(env, 2)
        machine.set_lock_scale(3.0)

        def requester(env):
            yield machine.lock_overhead(cpu_total=2.0, io_total=0.0)
            return env.now

        process = env.process(requester(env))
        # (2.0 * 3) / 2 nodes = 3.0 per node.
        assert env.run(until=process) == 3.0

    def test_lock_scale_validation(self, env):
        machine = Machine(env, 2)
        with pytest.raises(ValueError):
            machine.set_lock_scale(0.0)
