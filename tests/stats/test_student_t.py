"""The stdlib Student-t quantile must match scipy to high precision.

Reference values below are scipy 1.x ``stats.t.ppf`` outputs, pinned
as constants so this test also validates the fallback on the no-scipy
CI leg (where scipy itself cannot be consulted).
"""

import pytest

from repro.stats.student_t import _t_ppf_stdlib, t_ppf

#: (q, df) -> scipy stats.t.ppf(q, df), pinned.
REFERENCE = {
    (0.975, 1): 12.706204736432095,
    (0.975, 2): 4.302652729911275,
    (0.975, 3): 3.182446305284263,
    (0.975, 9): 2.262157162798205,
    (0.975, 29): 2.045229642132703,
    (0.95, 4): 2.1318467863266495,
    (0.95, 19): 1.7291328115213678,
    (0.995, 9): 3.2498355440153697,
    (0.05, 9): -1.8331129326536335,
    (0.5, 7): 0.0,
}


@pytest.mark.parametrize("q,df", sorted(REFERENCE))
def test_stdlib_matches_pinned_scipy_values(q, df):
    assert _t_ppf_stdlib(q, df) == pytest.approx(
        REFERENCE[(q, df)], rel=1e-9, abs=1e-12
    )


@pytest.mark.parametrize("q,df", sorted(REFERENCE))
def test_public_entry_point_agrees(q, df):
    # Whichever backend t_ppf picked (scipy if installed, stdlib
    # otherwise), it must land on the same quantile.
    assert t_ppf(q, df) == pytest.approx(
        REFERENCE[(q, df)], rel=1e-9, abs=1e-12
    )


def test_symmetry():
    for df in (1, 2, 3, 8, 40):
        assert _t_ppf_stdlib(0.975, df) == pytest.approx(
            -_t_ppf_stdlib(0.025, df), rel=1e-12
        )


def test_large_df_approaches_normal():
    from statistics import NormalDist

    z = NormalDist().inv_cdf(0.975)
    assert _t_ppf_stdlib(0.975, 10_000) == pytest.approx(z, abs=1e-3)


def test_domain_errors():
    with pytest.raises(ValueError):
        t_ppf(0.0, 5)
    with pytest.raises(ValueError):
        t_ppf(1.0, 5)
    with pytest.raises(ValueError):
        t_ppf(0.5, 0)
