"""Unit and property tests for the batch means method."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    batch_means_ci,
    lag1_autocorrelation,
    recommended_batches,
)


class TestBatchMeans:
    def test_constant_sequence_zero_width(self):
        result = batch_means_ci([5.0] * 100, batches=10)
        assert result.mean == 5.0
        assert result.half_width == 0.0
        assert result.interval == (5.0, 5.0)

    def test_batches_and_sizes(self):
        result = batch_means_ci(list(range(100)), batches=10)
        assert result.batches == 10
        assert result.batch_size == 10
        assert len(result.batch_means) == 10

    def test_remainder_dropped(self):
        # 103 samples in 10 batches -> 10 per batch, 3 dropped.
        result = batch_means_ci(list(range(103)), batches=10)
        assert result.batch_size == 10
        assert result.mean == pytest.approx(sum(range(100)) / 100)

    def test_iid_coverage_close_to_nominal(self):
        # For iid samples, the 95% interval should cover the true mean
        # roughly 95% of the time.
        rng = random.Random(3)
        covered = 0
        trials = 300
        for _ in range(trials):
            samples = [rng.gauss(10.0, 2.0) for _ in range(200)]
            result = batch_means_ci(samples, batches=20)
            low, high = result.interval
            if low <= 10.0 <= high:
                covered += 1
        assert covered / trials == pytest.approx(0.95, abs=0.05)

    def test_autocorrelated_sequence_wider_than_naive(self):
        # AR(1) sequence: the naive iid interval underestimates; batch
        # means must widen it.
        rng = random.Random(5)
        x = 0.0
        samples = []
        for _ in range(2000):
            x = 0.9 * x + rng.gauss(0, 1)
            samples.append(x)
        batched = batch_means_ci(samples, batches=20)
        n = len(samples)
        mean = sum(samples) / n
        sd = math.sqrt(sum((s - mean) ** 2 for s in samples) / (n - 1))
        naive_half = 1.96 * sd / math.sqrt(n)
        assert batched.half_width > naive_half

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_means_ci([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            batch_means_ci([1.0] * 10, batches=1)
        with pytest.raises(ValueError):
            batch_means_ci([1.0] * 10, batches=11)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=8,
            max_size=300,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_interval_brackets_mean_of_used_samples(self, samples):
        result = batch_means_ci(samples)
        used = result.batches * result.batch_size
        grand = sum(samples[:used]) / used
        assert result.mean == pytest.approx(grand)
        low, high = result.interval
        assert low <= result.mean <= high


class TestRecommendedBatches:
    def test_small_counts(self):
        assert recommended_batches(4) == 2
        assert recommended_batches(19) >= 2

    def test_mid_counts(self):
        assert recommended_batches(100) == 10
        assert recommended_batches(200) == 20

    def test_capped_at_30(self):
        assert recommended_batches(10_000) == 30


class TestAutocorrelation:
    def test_constant_is_zero(self):
        assert lag1_autocorrelation([3.0] * 10) == 0.0

    def test_alternating_is_negative(self):
        assert lag1_autocorrelation([1.0, -1.0] * 20) < -0.5

    def test_trend_is_positive(self):
        assert lag1_autocorrelation(list(range(50))) > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            lag1_autocorrelation([1.0, 2.0])


class TestModelIntegration:
    def test_response_samples_feed_batch_means(self, fast_params):
        from repro.core import LockingGranularityModel

        model = LockingGranularityModel(fast_params.replace(tmax=300.0))
        result = model.run()
        samples = model.metrics.response_samples
        assert len(samples) == result.totcom
        analysis = batch_means_ci(samples)
        low, high = analysis.interval
        assert low <= result.response_time <= high or math.isclose(
            analysis.mean, result.response_time, rel_tol=0.05
        )
