"""Shared fixtures for the test suite."""

import pytest

from repro.core.parameters import SimulationParameters
from repro.des import Environment


@pytest.fixture(autouse=True)
def _no_default_result_cache(monkeypatch):
    """Keep unit tests hermetic: never touch the shared on-disk cache.

    Tests that exercise caching pass an explicit
    :class:`~repro.experiments.cache.ResultCache` rooted in a tmp dir.
    """
    monkeypatch.setenv("REPRO_CACHE", "0")


@pytest.fixture
def env():
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def fast_params():
    """Parameters for quick end-to-end runs (seconds-scale suite)."""
    return SimulationParameters(
        dbsize=500,
        ltot=20,
        ntrans=5,
        maxtransize=50,
        npros=4,
        tmax=200.0,
        seed=7,
    )


@pytest.fixture
def table1_params():
    """The paper's Table 1 defaults with a short horizon."""
    return SimulationParameters(tmax=300.0, seed=11)
