"""Run the doctests embedded in module and function docstrings.

Keeps the documented examples (package docstrings, README-style
snippets in code) honest: if an API changes, these fail.
"""

import doctest

import pytest

import repro
import repro.core.transaction
import repro.des
import repro.des.rng

MODULES_WITH_DOCTESTS = [
    repro,
    repro.des,
    repro.des.rng,
    repro.core.transaction,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, "{} has no doctests".format(module.__name__)
    assert results.failed == 0
