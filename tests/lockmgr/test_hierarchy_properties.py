"""Property-based tests of multi-granularity locking (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lockmgr import GranuleTree, HierarchicalLockManager, LockMode

OWNERS = ["T{}".format(i) for i in range(4)]


def build_tree():
    tree = GranuleTree(root="db")
    leaves = tree.add_levels([3, 4])  # 3 files x 4 blocks
    return tree, leaves


@st.composite
def lock_scripts(draw):
    """Random sequences of try-lock / unlock-all actions."""
    tree, leaves = build_tree()
    nodes = [tree.root] + tree.children(tree.root) + leaves
    n = draw(st.integers(min_value=1, max_value=40))
    script = []
    for _ in range(n):
        if draw(st.booleans()):
            script.append(
                (
                    "lock",
                    draw(st.sampled_from(OWNERS)),
                    draw(st.integers(min_value=0, max_value=len(nodes) - 1)),
                    draw(st.sampled_from([LockMode.S, LockMode.X])),
                )
            )
        else:
            script.append(("unlock", draw(st.sampled_from(OWNERS))))
    return script


class TestHierarchyProperties:
    @given(lock_scripts())
    @settings(max_examples=80, deadline=None)
    def test_invariants_after_every_action(self, script):
        tree, leaves = build_tree()
        nodes = [tree.root] + tree.children(tree.root) + leaves
        hlm = HierarchicalLockManager(tree)
        granted = {}
        for action in script:
            if action[0] == "lock":
                _, owner, node_index, mode = action
                node = nodes[node_index]
                blocker = hlm.try_lock(owner, node, mode)
                if blocker is None:
                    granted.setdefault(owner, []).append((node, mode))
            else:
                hlm.unlock_all(action[1])
                granted.pop(action[1], None)
            hlm.manager.table.check_invariants()
            self._check_intention_protocol(tree, hlm, granted)

    @staticmethod
    def _check_intention_protocol(tree, hlm, granted):
        """Every holder of a non-root lock holds *some* lock on every
        ancestor (Gray's protocol)."""
        table = hlm.manager.table
        for owner, locks in granted.items():
            for node, _mode in locks:
                for ancestor in tree.path_to_root(node):
                    assert table.mode_of(ancestor, owner) is not None, (
                        owner,
                        node,
                        ancestor,
                    )

    @given(lock_scripts())
    @settings(max_examples=60, deadline=None)
    def test_no_writer_under_reader_conflict(self, script):
        """If someone holds S on a subtree root, nobody else may hold
        X on any node inside that subtree."""
        tree, leaves = build_tree()
        nodes = [tree.root] + tree.children(tree.root) + leaves
        hlm = HierarchicalLockManager(tree)
        for action in script:
            if action[0] == "lock":
                _, owner, node_index, mode = action
                hlm.try_lock(owner, nodes[node_index], mode)
            else:
                hlm.unlock_all(action[1])
        table = hlm.manager.table
        for node in nodes:
            for holder, mode in table.holders(node).items():
                if mode is not LockMode.S:
                    continue
                for descendant in _descendants(tree, node):
                    for other, other_mode in table.holders(descendant).items():
                        if other != holder:
                            assert other_mode is not LockMode.X, (
                                node,
                                descendant,
                            )

    @given(lock_scripts())
    @settings(max_examples=40, deadline=None)
    def test_unlock_everyone_empties_table(self, script):
        tree, leaves = build_tree()
        nodes = [tree.root] + tree.children(tree.root) + leaves
        hlm = HierarchicalLockManager(tree)
        for action in script:
            if action[0] == "lock":
                _, owner, node_index, mode = action
                hlm.try_lock(owner, nodes[node_index], mode)
            else:
                hlm.unlock_all(action[1])
        for owner in OWNERS:
            hlm.unlock_all(owner)
        assert len(hlm.manager.table) == 0


def _descendants(tree, node):
    out = []
    stack = list(tree.children(node))
    while stack:
        current = stack.pop()
        out.append(current)
        stack.extend(tree.children(current))
    return out
