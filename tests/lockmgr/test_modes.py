"""Unit tests for lock modes and the compatibility matrix."""

import pytest

from repro.lockmgr import COMPATIBILITY, LockMode, compatible, supremum


class TestCompatibility:
    def test_matrix_is_complete(self):
        for held in LockMode:
            for requested in LockMode:
                assert isinstance(COMPATIBILITY[held][requested], bool)

    def test_matrix_is_symmetric(self):
        for a in LockMode:
            for b in LockMode:
                assert compatible(a, b) == compatible(b, a)

    def test_x_conflicts_with_everything(self):
        for mode in LockMode:
            assert not compatible(LockMode.X, mode)

    def test_is_compatible_with_all_but_x(self):
        for mode in LockMode:
            expected = mode is not LockMode.X
            assert compatible(LockMode.IS, mode) == expected

    def test_s_compatible_with_s_and_is_only(self):
        compatible_with_s = {m for m in LockMode if compatible(LockMode.S, m)}
        assert compatible_with_s == {LockMode.S, LockMode.IS}

    def test_six_compatible_with_is_only(self):
        compatible_with_six = {m for m in LockMode if compatible(LockMode.SIX, m)}
        assert compatible_with_six == {LockMode.IS}

    def test_ix_compatible_with_intentions_only(self):
        compatible_with_ix = {m for m in LockMode if compatible(LockMode.IX, m)}
        assert compatible_with_ix == {LockMode.IS, LockMode.IX}


class TestSupremum:
    def test_supremum_is_commutative(self):
        for a in LockMode:
            for b in LockMode:
                assert supremum(a, b) == supremum(b, a)

    def test_supremum_is_idempotent(self):
        for mode in LockMode:
            assert supremum(mode, mode) == mode

    def test_x_is_top(self):
        for mode in LockMode:
            assert supremum(mode, LockMode.X) == LockMode.X

    def test_s_plus_ix_is_six(self):
        assert supremum(LockMode.S, LockMode.IX) == LockMode.SIX

    def test_supremum_dominates_both(self):
        # Anything compatible with sup(a, b) must be compatible with
        # both a and b (the supremum is at least as strong).
        for a in LockMode:
            for b in LockMode:
                top = supremum(a, b)
                for other in LockMode:
                    if compatible(top, other):
                        assert compatible(a, other)
                        assert compatible(b, other)


class TestModeProperties:
    def test_intention_flags(self):
        assert LockMode.IS.is_intention
        assert LockMode.IX.is_intention
        assert LockMode.SIX.is_intention
        assert not LockMode.S.is_intention
        assert not LockMode.X.is_intention

    def test_str_is_short_name(self):
        assert str(LockMode.SIX) == "SIX"

    @pytest.mark.parametrize("mode", list(LockMode))
    def test_modes_round_trip_by_value(self, mode):
        assert LockMode(mode.value) is mode
