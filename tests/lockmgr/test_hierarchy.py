"""Unit tests for multi-granularity (hierarchical) locking."""

import pytest

from repro.lockmgr import GranuleTree, HierarchicalLockManager, LockMode


@pytest.fixture
def tree():
    """database → 2 files → 3 blocks each."""
    tree = GranuleTree(root="db")
    leaves = tree.add_levels([2, 3])
    return tree, leaves


class TestGranuleTree:
    def test_root_exists(self):
        tree = GranuleTree("db")
        assert "db" in tree
        assert tree.parent("db") is None

    def test_add_and_navigate(self):
        tree = GranuleTree("db")
        tree.add("f1", "db")
        tree.add("b1", "f1")
        assert tree.parent("b1") == "f1"
        assert tree.children("db") == ["f1"]
        assert tree.path_to_root("b1") == ["db", "f1"]

    def test_duplicate_node_rejected(self):
        tree = GranuleTree("db")
        tree.add("f1", "db")
        with pytest.raises(ValueError):
            tree.add("f1", "db")

    def test_unknown_parent_rejected(self):
        tree = GranuleTree("db")
        with pytest.raises(KeyError):
            tree.add("x", "nope")

    def test_add_levels_builds_uniform_tree(self, tree):
        built, leaves = tree
        assert len(leaves) == 6
        files = built.children("db")
        assert len(files) == 2
        for file_node in files:
            assert len(built.children(file_node)) == 3


class TestHierarchicalLocking:
    def test_leaf_locks_under_different_files_coexist(self, tree):
        built, leaves = tree
        hlm = HierarchicalLockManager(built)
        assert hlm.try_lock("T1", leaves[0], LockMode.X) is None
        assert hlm.try_lock("T2", leaves[3], LockMode.X) is None

    def test_leaf_locks_under_same_file_coexist(self, tree):
        built, leaves = tree
        hlm = HierarchicalLockManager(built)
        assert hlm.try_lock("T1", leaves[0], LockMode.X) is None
        assert hlm.try_lock("T2", leaves[1], LockMode.X) is None

    def test_same_leaf_conflicts(self, tree):
        built, leaves = tree
        hlm = HierarchicalLockManager(built)
        assert hlm.try_lock("T1", leaves[0], LockMode.X) is None
        assert hlm.try_lock("T2", leaves[0], LockMode.S) == "T1"

    def test_file_s_lock_blocks_leaf_writer_below(self, tree):
        built, leaves = tree
        hlm = HierarchicalLockManager(built)
        file0 = built.parent(leaves[0])
        assert hlm.try_lock("T1", file0, LockMode.S) is None
        assert hlm.try_lock("T2", leaves[0], LockMode.X) == "T1"
        # A reader below the S-locked file is fine (IS vs S).
        assert hlm.try_lock("T3", leaves[1], LockMode.S) is None

    def test_whole_database_x_blocks_everything(self, tree):
        built, leaves = tree
        hlm = HierarchicalLockManager(built)
        assert hlm.try_lock("T1", "db", LockMode.X) is None
        assert hlm.try_lock("T2", leaves[5], LockMode.S) == "T1"

    def test_leaf_writer_blocks_whole_database_s(self, tree):
        built, leaves = tree
        hlm = HierarchicalLockManager(built)
        assert hlm.try_lock("T1", leaves[0], LockMode.X) is None
        assert hlm.try_lock("T2", "db", LockMode.S) == "T1"

    def test_unlock_all_releases_intentions(self, tree):
        built, leaves = tree
        hlm = HierarchicalLockManager(built)
        hlm.try_lock("T1", leaves[0], LockMode.X)
        hlm.unlock_all("T1")
        assert hlm.try_lock("T2", "db", LockMode.X) is None

    def test_unknown_node_raises(self, tree):
        built, _ = tree
        hlm = HierarchicalLockManager(built)
        with pytest.raises(KeyError):
            hlm.try_lock("T1", "ghost", LockMode.X)

    def test_queued_variant_waits_and_wakes(self, tree):
        built, leaves = tree
        hlm = HierarchicalLockManager(built)
        hlm.try_lock("T1", leaves[0], LockMode.X)
        woken = []
        requests = hlm.lock_queued(
            "T2", leaves[0], LockMode.X, on_grant=lambda r: woken.append(r.owner)
        )
        assert not hlm.is_fully_granted(requests)
        hlm.unlock_all("T1")
        assert woken == ["T2"]
        assert hlm.is_fully_granted(requests)
