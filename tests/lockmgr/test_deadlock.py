"""Unit tests for deadlock detection."""

from repro.lockmgr import DeadlockDetector, LockManager, LockMode


def build_cycle(manager, owners, granules):
    """Each owner holds granule[i] and waits for granule[i+1]."""
    for owner, granule in zip(owners, granules):
        manager.acquire(owner, granule, LockMode.X)
    n = len(owners)
    for i, owner in enumerate(owners):
        manager.acquire(owner, granules[(i + 1) % n], LockMode.X)


class TestDetection:
    def test_no_cycle_on_empty_manager(self):
        manager = LockManager()
        detector = DeadlockDetector(manager)
        assert detector.find_cycle() is None
        assert detector.resolve_once() is None

    def test_simple_two_way_deadlock(self):
        manager = LockManager()
        build_cycle(manager, ["A", "B"], ["g1", "g2"])
        detector = DeadlockDetector(manager)
        cycle = detector.find_cycle()
        assert cycle is not None
        assert set(cycle) == {"A", "B"}

    def test_three_way_deadlock(self):
        manager = LockManager()
        build_cycle(manager, ["A", "B", "C"], ["g1", "g2", "g3"])
        detector = DeadlockDetector(manager)
        cycle = detector.find_cycle()
        assert set(cycle) == {"A", "B", "C"}

    def test_waiting_without_cycle_is_not_deadlock(self):
        manager = LockManager()
        manager.acquire("A", "g", LockMode.X)
        manager.acquire("B", "g", LockMode.X)
        manager.acquire("C", "g", LockMode.X)
        detector = DeadlockDetector(manager)
        assert detector.find_cycle() is None

    def test_victim_is_largest_key(self):
        manager = LockManager()
        build_cycle(manager, ["A", "B"], ["g1", "g2"])
        detector = DeadlockDetector(manager)
        assert detector.choose_victim(["A", "B"]) == "B"

    def test_custom_victim_key(self):
        manager = LockManager()
        build_cycle(manager, ["A", "B"], ["g1", "g2"])
        costs = {"A": 10, "B": 1}
        detector = DeadlockDetector(manager, victim_key=lambda o: costs[o])
        assert detector.resolve_once() == "A"

    def test_resolution_breaks_cycle(self):
        manager = LockManager()
        build_cycle(manager, ["A", "B"], ["g1", "g2"])
        detector = DeadlockDetector(manager)
        victim = detector.resolve_once()
        assert victim == "B"
        # Simulate abort of the victim.
        state = manager.table.peek("g1")
        for request in list(state.waiters):
            if request.owner == victim:
                manager.cancel(request)
        manager.release_all(victim)
        assert detector.find_cycle() is None

    def test_find_all_cycles_on_two_independent_deadlocks(self):
        manager = LockManager()
        build_cycle(manager, ["A", "B"], ["g1", "g2"])
        build_cycle(manager, ["C", "D"], ["g3", "g4"])
        detector = DeadlockDetector(manager)
        cycles = detector.find_all_cycles()
        sets = [frozenset(cycle) for cycle in cycles]
        assert frozenset({"A", "B"}) in sets
        assert frozenset({"C", "D"}) in sets

    def test_graph_nodes_are_owners(self):
        manager = LockManager()
        build_cycle(manager, ["A", "B"], ["g1", "g2"])
        graph = DeadlockDetector(manager).graph()
        assert set(graph.nodes) == {"A", "B"}

    def test_detector_has_no_networkx_dependency(self):
        """Cycle detection is pure stdlib: importing the module must
        not pull in networkx (it may be absent from the runtime)."""
        import sys

        module = sys.modules["repro.lockmgr.deadlock"]
        source = open(module.__file__).read()
        assert "import networkx" not in source
