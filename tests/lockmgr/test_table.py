"""Unit tests for the lock table."""

import pytest

from repro.lockmgr import LockMode, LockTable


class TestLockTable:
    def test_states_created_lazily(self):
        table = LockTable()
        assert len(table) == 0
        assert "g" not in table
        table.state("g")
        assert "g" in table

    def test_grant_and_mode_of(self):
        table = LockTable()
        table.grant("g", "T1", LockMode.S)
        assert table.mode_of("g", "T1") is LockMode.S
        assert table.mode_of("g", "T2") is None
        assert table.mode_of("other", "T1") is None

    def test_upgrade_merges_to_supremum(self):
        table = LockTable()
        table.grant("g", "T1", LockMode.S)
        table.grant("g", "T1", LockMode.IX)
        assert table.mode_of("g", "T1") is LockMode.SIX

    def test_revoke_removes_holder(self):
        table = LockTable()
        table.grant("g", "T1", LockMode.X)
        table.revoke("g", "T1")
        assert table.mode_of("g", "T1") is None

    def test_revoke_discards_empty_state(self):
        table = LockTable()
        table.grant("g", "T1", LockMode.X)
        table.revoke("g", "T1")
        assert len(table) == 0

    def test_revoke_unknown_is_noop(self):
        table = LockTable()
        table.revoke("nope", "T1")
        assert len(table) == 0

    def test_holders_snapshot_is_a_copy(self):
        table = LockTable()
        table.grant("g", "T1", LockMode.S)
        snapshot = table.holders("g")
        snapshot["T2"] = LockMode.X
        assert "T2" not in table.holders("g")

    def test_locked_granules_filtering(self):
        table = LockTable()
        table.grant("a", "T1", LockMode.S)
        table.grant("b", "T1", LockMode.S)
        table.grant("b", "T2", LockMode.S)
        assert sorted(table.locked_granules()) == ["a", "b"]
        assert sorted(table.locked_granules("T2")) == ["b"]

    def test_memory_scales_with_locked_not_total(self):
        # The paper's motivation: entity-level tables are huge.  Ours
        # only materialises entries for granules actually locked.
        table = LockTable()
        for granule in range(10):
            table.grant(granule, "T1", LockMode.X)
        assert len(table) == 10
        for granule in range(10):
            table.revoke(granule, "T1")
        assert len(table) == 0

    def test_grantable_ignores_own_lock(self):
        table = LockTable()
        table.grant("g", "T1", LockMode.S)
        state = table.state("g")
        assert state.grantable("T1", LockMode.X)
        assert not state.grantable("T2", LockMode.X)

    def test_check_invariants_passes_on_compatible_holders(self):
        table = LockTable()
        table.grant("g", "T1", LockMode.S)
        table.grant("g", "T2", LockMode.S)
        table.check_invariants()

    def test_check_invariants_detects_incompatible_holders(self):
        table = LockTable()
        # Bypass the manager and force an illegal state directly.
        table.grant("g", "T1", LockMode.X)
        table.state("g").holders["T2"] = LockMode.X
        with pytest.raises(AssertionError):
            table.check_invariants()

    def test_prune_keeps_states_with_waiters(self):
        from repro.lockmgr.manager import LockRequest

        table = LockTable()
        state = table.state("g")
        state.waiters.append(LockRequest("T1", "g", LockMode.X))
        table.prune("g")
        assert "g" in table
