"""Property-based tests of the lock manager (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lockmgr import DeadlockDetector, LockManager, LockMode, RequestStatus

OWNERS = ["T{}".format(i) for i in range(5)]
GRANULES = list(range(6))

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("acquire"),
            st.sampled_from(OWNERS),
            st.sampled_from(GRANULES),
            st.sampled_from([LockMode.S, LockMode.X]),
        ),
        st.tuples(st.just("release"), st.sampled_from(OWNERS)),
    ),
    min_size=1,
    max_size=80,
)


class TestManagerProperties:
    @given(operations)
    @settings(max_examples=80, deadline=None)
    def test_table_invariants_always_hold(self, ops):
        """No matter the interleaving, no two incompatible holders
        coexist and no empty state object lingers."""
        manager = LockManager()
        for op in ops:
            if op[0] == "acquire":
                _, owner, granule, mode = op
                manager.acquire(owner, granule, mode)
            else:
                manager.release_all(op[1])
            manager.table.check_invariants()

    @given(operations)
    @settings(max_examples=80, deadline=None)
    def test_releasing_everyone_empties_the_table(self, ops):
        manager = LockManager()
        waiting = []
        for op in ops:
            if op[0] == "acquire":
                _, owner, granule, mode = op
                request = manager.acquire(owner, granule, mode)
                if request.status is RequestStatus.WAITING:
                    waiting.append(request)
            else:
                manager.release_all(op[1])
        for request in waiting:
            manager.cancel(request)
        for owner in OWNERS:
            manager.release_all(owner)
        assert len(manager.table) == 0

    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_granted_requests_hold_their_granule(self, ops):
        manager = LockManager()
        for op in ops:
            if op[0] == "acquire":
                _, owner, granule, mode = op
                request = manager.acquire(owner, granule, mode)
                if request.status is RequestStatus.GRANTED:
                    held = manager.table.mode_of(granule, owner)
                    assert held is not None
            else:
                manager.release_all(op[1])

    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_deadlock_resolution_terminates(self, ops):
        """Repeatedly aborting detected victims always reaches a
        cycle-free state (no infinite deadlock chains)."""
        manager = LockManager()
        requests = {}
        for op in ops:
            if op[0] == "acquire":
                _, owner, granule, mode = op
                request = manager.acquire(owner, granule, mode)
                if request.status is RequestStatus.WAITING:
                    requests.setdefault(owner, []).append(request)
            else:
                manager.release_all(op[1])
        detector = DeadlockDetector(manager)
        for _ in range(len(OWNERS) + 1):
            victim = detector.resolve_once()
            if victim is None:
                break
            for request in requests.pop(victim, []):
                manager.cancel(request)
            manager.release_all(victim)
        assert detector.find_cycle() is None


class TestPreclaimProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(OWNERS),
                st.sets(st.sampled_from(GRANULES), min_size=1, max_size=4),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_preclaim_is_all_or_nothing(self, attempts):
        manager = LockManager()
        active = set()
        for owner, granules in attempts:
            if owner in active:
                manager.release_all(owner)
                active.discard(owner)
            before = manager.lock_count(owner)
            assert before == 0
            blocker = manager.try_acquire_all(
                owner, [(g, LockMode.X) for g in granules]
            )
            if blocker is None:
                active.add(owner)
                assert manager.held_by(owner) == granules
            else:
                assert manager.lock_count(owner) == 0
                assert blocker in active
            manager.table.check_invariants()
