"""Unit tests for the lock manager's two protocols."""


from repro.lockmgr import LockManager, LockMode, RequestStatus
from repro.lockmgr.manager import exclusive_requests


class TestPreclaim:
    def test_grants_on_free_table(self):
        manager = LockManager()
        assert manager.try_acquire_all("T1", exclusive_requests([1, 2, 3])) is None
        assert manager.held_by("T1") == {1, 2, 3}

    def test_conflict_returns_first_blocker_and_acquires_nothing(self):
        manager = LockManager()
        manager.try_acquire_all("T1", exclusive_requests([2]))
        blocker = manager.try_acquire_all("T2", exclusive_requests([1, 2, 3]))
        assert blocker == "T1"
        assert manager.lock_count("T2") == 0
        # Granule 1 must not have been acquired despite preceding the
        # conflicting granule in the request order.
        assert manager.table.mode_of(1, "T2") is None

    def test_disjoint_transactions_coexist(self):
        manager = LockManager()
        assert manager.try_acquire_all("T1", exclusive_requests([1, 2])) is None
        assert manager.try_acquire_all("T2", exclusive_requests([3, 4])) is None
        assert manager.lock_count("T1") == manager.lock_count("T2") == 2

    def test_shared_requests_coexist_on_same_granule(self):
        manager = LockManager()
        assert manager.try_acquire_all("T1", [(1, LockMode.S)]) is None
        assert manager.try_acquire_all("T2", [(1, LockMode.S)]) is None
        blocker = manager.try_acquire_all("T3", [(1, LockMode.X)])
        assert blocker in ("T1", "T2")

    def test_release_all_clears_everything(self):
        manager = LockManager()
        manager.try_acquire_all("T1", exclusive_requests(range(10)))
        manager.release_all("T1")
        assert manager.lock_count("T1") == 0
        assert len(manager.table) == 0

    def test_retry_after_release_succeeds(self):
        manager = LockManager()
        manager.try_acquire_all("T1", exclusive_requests([1]))
        assert manager.try_acquire_all("T2", exclusive_requests([1])) == "T1"
        manager.release_all("T1")
        assert manager.try_acquire_all("T2", exclusive_requests([1])) is None

    def test_empty_request_always_granted(self):
        manager = LockManager()
        assert manager.try_acquire_all("T1", []) is None

    def test_own_locks_never_conflict(self):
        manager = LockManager()
        manager.try_acquire_all("T1", exclusive_requests([1]))
        assert manager.try_acquire_all("T1", exclusive_requests([1, 2])) is None


class TestIncremental:
    def test_immediate_grant_on_free_granule(self):
        manager = LockManager()
        request = manager.acquire("T1", "g", LockMode.X)
        assert request.status is RequestStatus.GRANTED

    def test_conflicting_request_waits(self):
        manager = LockManager()
        manager.acquire("T1", "g", LockMode.X)
        request = manager.acquire("T2", "g", LockMode.X)
        assert request.status is RequestStatus.WAITING

    def test_release_grants_fifo(self):
        manager = LockManager()
        manager.acquire("T1", "g", LockMode.X)
        r2 = manager.acquire("T2", "g", LockMode.X)
        r3 = manager.acquire("T3", "g", LockMode.X)
        granted = manager.release_all("T1")
        assert granted == [r2]
        assert r2.status is RequestStatus.GRANTED
        assert r3.status is RequestStatus.WAITING

    def test_release_grants_multiple_compatible_waiters(self):
        manager = LockManager()
        manager.acquire("T1", "g", LockMode.X)
        r2 = manager.acquire("T2", "g", LockMode.S)
        r3 = manager.acquire("T3", "g", LockMode.S)
        granted = manager.release_all("T1")
        assert set(granted) == {r2, r3}

    def test_on_grant_callback_invoked(self):
        manager = LockManager()
        manager.acquire("T1", "g", LockMode.X)
        seen = []
        manager.acquire("T2", "g", LockMode.X, on_grant=lambda r: seen.append(r.owner))
        assert seen == []
        manager.release_all("T1")
        assert seen == ["T2"]

    def test_fifo_fairness_blocks_compatible_overtakers(self):
        # S behind a waiting X must wait, or the writer starves.
        manager = LockManager()
        manager.acquire("T1", "g", LockMode.S)
        writer = manager.acquire("T2", "g", LockMode.X)
        reader = manager.acquire("T3", "g", LockMode.S)
        assert writer.status is RequestStatus.WAITING
        assert reader.status is RequestStatus.WAITING
        manager.release_all("T1")
        assert writer.status is RequestStatus.GRANTED
        assert reader.status is RequestStatus.WAITING

    def test_upgrade_while_sole_holder(self):
        manager = LockManager()
        manager.acquire("T1", "g", LockMode.S)
        request = manager.acquire("T1", "g", LockMode.X)
        assert request.status is RequestStatus.GRANTED
        assert manager.table.mode_of("g", "T1") is LockMode.X

    def test_upgrade_blocked_by_other_reader(self):
        manager = LockManager()
        manager.acquire("T1", "g", LockMode.S)
        manager.acquire("T2", "g", LockMode.S)
        request = manager.acquire("T1", "g", LockMode.X)
        assert request.status is RequestStatus.WAITING

    def test_cancel_removes_waiter_and_promotes(self):
        manager = LockManager()
        manager.acquire("T1", "g", LockMode.X)
        r2 = manager.acquire("T2", "g", LockMode.X)
        r3 = manager.acquire("T3", "g", LockMode.S)
        manager.cancel(r2)
        assert r2.status is RequestStatus.CANCELLED
        assert r3.status is RequestStatus.WAITING  # T1 still holds X
        manager.release_all("T1")
        assert r3.status is RequestStatus.GRANTED

    def test_cancel_granted_request_is_noop(self):
        manager = LockManager()
        request = manager.acquire("T1", "g", LockMode.X)
        manager.cancel(request)
        assert request.status is RequestStatus.GRANTED

    def test_waits_for_edges(self):
        manager = LockManager()
        manager.acquire("A", "g1", LockMode.X)
        manager.acquire("B", "g2", LockMode.X)
        manager.acquire("A", "g2", LockMode.X)
        manager.acquire("B", "g1", LockMode.X)
        edges = set(manager.waits_for_edges())
        assert ("A", "B") in edges
        assert ("B", "A") in edges

    def test_table_invariants_hold_through_random_workload(self):
        import random

        rng = random.Random(5)
        manager = LockManager()
        owners = ["T{}".format(i) for i in range(6)]
        for _ in range(300):
            owner = rng.choice(owners)
            if rng.random() < 0.3:
                manager.release_all(owner)
            else:
                granule = rng.randrange(8)
                mode = rng.choice([LockMode.S, LockMode.X])
                manager.acquire(owner, granule, mode)
            manager.table.check_invariants()


class TestHelpers:
    def test_exclusive_requests_builder(self):
        pairs = exclusive_requests([1, 2])
        assert pairs == [(1, LockMode.X), (2, LockMode.X)]

    def test_request_repr(self):
        manager = LockManager()
        request = manager.acquire("T1", "g", LockMode.X)
        text = repr(request)
        assert "T1" in text and "granted" in text

    def test_release_unheld_granule_is_noop(self):
        manager = LockManager()
        assert manager.release("T1", "g") == []
