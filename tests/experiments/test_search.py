"""Tests for the adaptive granularity search."""

import pytest

from repro.core.parameters import SimulationParameters
from repro.experiments.search import SearchOutcome, _log_spaced, find_optimal_ltot


@pytest.fixture
def params():
    return SimulationParameters(
        dbsize=500, ntrans=5, maxtransize=50, npros=4, tmax=150.0, seed=3
    )


class TestLogSpacing:
    def test_endpoints_included(self):
        points = _log_spaced(1, 500, 5)
        assert points[0] == 1
        assert points[-1] == 500

    def test_monotone_unique(self):
        points = _log_spaced(1, 5000, 7)
        assert points == sorted(set(points))

    def test_degenerate_bracket(self):
        assert _log_spaced(7, 7, 5) == [7]

    def test_tight_bracket_deduplicates(self):
        points = _log_spaced(4, 6, 5)
        assert points == sorted(set(points))
        assert all(4 <= p <= 6 for p in points)


class TestSearch:
    def test_finds_interior_optimum(self, params):
        outcome = find_optimal_ltot(params, replications=1, rounds=2)
        # Convex curve: the optimum is strictly inside the bracket and
        # far below entity-level locking.
        assert 1 <= outcome.best_ltot <= 200
        assert outcome.best_value > 0

    def test_beats_or_matches_grid_extremes(self, params):
        outcome = find_optimal_ltot(params, replications=1, rounds=2)
        evaluated = outcome.evaluations
        assert outcome.best_value >= evaluated[1]
        assert outcome.best_value >= evaluated[params.dbsize]

    def test_fewer_evaluations_than_exhaustive(self, params):
        outcome = find_optimal_ltot(params, replications=1, rounds=3)
        assert len(outcome.evaluations) <= 15

    def test_minimize_mode(self, params):
        outcome = find_optimal_ltot(
            params, objective="response_time", maximize=False,
            replications=1, rounds=2,
        )
        worst = max(outcome.evaluations.values())
        assert outcome.best_value < worst

    def test_custom_bracket_respected(self, params):
        outcome = find_optimal_ltot(
            params, lo=10, hi=100, replications=1, rounds=1
        )
        assert all(10 <= ltot <= 100 for ltot in outcome.evaluations)

    def test_invalid_bracket_rejected(self, params):
        with pytest.raises(ValueError):
            find_optimal_ltot(params, lo=0)
        with pytest.raises(ValueError):
            find_optimal_ltot(params, lo=100, hi=10)
        with pytest.raises(ValueError):
            find_optimal_ltot(params, hi=params.dbsize + 1)

    def test_outcome_repr(self, params):
        outcome = SearchOutcome(10, 0.5, {10: 0.5})
        assert "ltot=10" in repr(outcome)

    def test_deterministic(self, params):
        a = find_optimal_ltot(params, replications=1, rounds=2)
        b = find_optimal_ltot(params, replications=1, rounds=2)
        assert a.best_ltot == b.best_ltot
        assert a.evaluations == b.evaluations
