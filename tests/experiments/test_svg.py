"""Unit tests for the SVG chart writer."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.parameters import SimulationParameters
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import run_experiment
from repro.experiments.svg import SvgChart, chart_from_result, save_result_charts


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestSvgChart:
    def test_renders_valid_xml(self):
        chart = SvgChart("demo", y_label="throughput")
        chart.add_series("a", [(1, 0.1), (10, 0.2), (100, 0.15)])
        root = parse(chart.render())
        assert root.tag.endswith("svg")

    def test_title_and_labels_present(self):
        chart = SvgChart("My Title", x_label="locks", y_label="tps")
        chart.add_series("a", [(1, 1.0), (10, 2.0)])
        text = chart.render()
        assert "My Title" in text
        assert "locks" in text
        assert "tps" in text

    def test_one_path_per_series(self):
        chart = SvgChart("demo")
        chart.add_series("a", [(1, 1.0), (10, 2.0)])
        chart.add_series("b", [(1, 2.0), (10, 1.0)])
        root = parse(chart.render())
        paths = [e for e in root.iter() if e.tag.endswith("path")]
        assert len(paths) == 2

    def test_legend_contains_series_labels(self):
        chart = SvgChart("demo")
        chart.add_series("npros=30", [(1, 1.0), (10, 2.0)])
        assert "npros=30" in chart.render()

    def test_log_ticks_are_decades(self):
        chart = SvgChart("demo", log_x=True)
        chart.add_series("a", [(1, 1.0), (5000, 2.0)])
        text = chart.render()
        for decade in ("1", "10", "100", "1000"):
            assert ">{}</text>".format(decade) in text

    def test_nan_and_nonpositive_x_dropped(self):
        chart = SvgChart("demo", log_x=True)
        chart.add_series("a", [(0, 1.0), (1, float("nan")), (10, 2.0), (100, 3.0)])
        root = parse(chart.render())
        circles = [
            e for e in root.iter()
            if e.tag.endswith("circle") and float(e.get("cx", 0)) > 0
        ]
        # 2 data markers + 1 legend marker.
        assert len([c for c in circles]) == 3

    def test_empty_chart_renders_placeholder(self):
        chart = SvgChart("demo")
        assert "no data" in chart.render()

    def test_all_points_within_canvas(self):
        chart = SvgChart("demo")
        chart.add_series("a", [(1, -5.0), (10, 50.0), (5000, 10.0)])
        root = parse(chart.render())
        for circle in (e for e in root.iter() if e.tag.endswith("circle")):
            assert 0 <= float(circle.get("cx")) <= 640
            assert 0 <= float(circle.get("cy")) <= 420

    def test_escapes_markup_in_labels(self):
        chart = SvgChart("a <b> & c")
        chart.add_series("x<y", [(1, 1.0), (2, 2.0)])
        root = parse(chart.render())  # would raise on bad escaping
        assert root is not None

    def test_save_writes_file(self, tmp_path):
        chart = SvgChart("demo")
        chart.add_series("a", [(1, 1.0), (10, 2.0)])
        path = chart.save(tmp_path / "chart.svg")
        assert (tmp_path / "chart.svg").exists()
        assert str(path).endswith("chart.svg")

    def test_dashed_series_has_dasharray(self):
        chart = SvgChart("demo")
        chart.add_series("sim", [(1, 1.0), (10, 2.0)])
        chart.add_series("model", [(1, 1.1), (10, 1.9)], dash="6,3")
        root = parse(chart.render())
        paths = [e for e in root.iter() if e.tag.endswith("path")]
        dashed = [p for p in paths if p.get("stroke-dasharray")]
        assert len(dashed) == 1
        assert dashed[0].get("stroke-dasharray") == "6,3"

    def test_dashed_series_uses_open_markers(self):
        chart = SvgChart("demo")
        chart.add_series("model", [(1, 1.0), (10, 2.0)], dash="6,3")
        root = parse(chart.render())
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        # 2 data markers + 1 legend swatch, all open (white fill).
        assert len(circles) == 3
        for circle in circles:
            assert circle.get("fill") == "white"
            assert circle.get("stroke")

    def test_pinned_color_overrides_palette(self):
        chart = SvgChart("demo")
        chart.add_series("sim", [(1, 1.0), (10, 2.0)], color="#123456")
        chart.add_series(
            "model", [(1, 1.1), (10, 1.9)], dash="6,3", color="#123456"
        )
        root = parse(chart.render())
        paths = [e for e in root.iter() if e.tag.endswith("path")]
        assert {p.get("stroke") for p in paths} == {"#123456"}

    def test_solid_series_keep_filled_markers(self):
        chart = SvgChart("demo")
        chart.add_series("sim", [(1, 1.0), (10, 2.0)], color="#123456")
        root = parse(chart.render())
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        assert all(c.get("fill") == "#123456" for c in circles)


class TestResultCharts:
    @pytest.fixture(scope="class")
    def result(self):
        spec = ExperimentSpec(
            key="tiny",
            title="tiny sweep",
            base=SimulationParameters(
                dbsize=200, ntrans=3, maxtransize=20, npros=2, tmax=60.0
            ),
            sweeps={"npros": (1, 2), "ltot": (1, 20)},
            series_fields=("npros",),
            y_fields=("throughput", "response_time"),
        )
        return run_experiment(spec)

    def test_chart_from_result(self, result):
        chart = chart_from_result(result)
        text = chart.render()
        assert "npros=1" in text and "npros=2" in text
        assert "throughput" in text

    def test_save_result_charts_one_per_y_field(self, result, tmp_path):
        paths = save_result_charts(result, tmp_path)
        assert len(paths) == 2
        names = {p.split("/")[-1] for p in paths}
        assert names == {"tiny_throughput.svg", "tiny_response_time.svg"}
        for path in paths:
            parse(open(path).read())
