"""Integration tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "fig2"])
        assert args.exhibit == "fig2"
        assert args.replications == 1
        assert not args.quick

    def test_run_command_options(self):
        args = build_parser().parse_args(
            ["run", "7", "--quick", "--tmax", "50", "--replications", "2"]
        )
        assert args.exhibit == "7"
        assert args.quick
        assert args.tmax == 50.0
        assert args.replications == 2

    def test_simulate_command_overrides(self):
        args = build_parser().parse_args(
            ["simulate", "--ltot", "7", "--npros", "3"]
        )
        assert args.ltot == 7
        assert args.npros == 3
        assert args.dbsize is None

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_cache_flags(self):
        args = build_parser().parse_args(
            ["run", "fig2", "--no-cache", "--refresh",
             "--cache-dir", "/tmp/c", "--jobs", "3"]
        )
        assert args.no_cache
        assert args.refresh
        assert args.cache_dir == "/tmp/c"
        assert args.jobs == 3

    def test_run_cache_flags_default_off(self):
        args = build_parser().parse_args(["run", "fig2"])
        assert not args.no_cache
        assert not args.refresh
        assert args.cache_dir is None

    def test_run_crash_safety_flags(self):
        args = build_parser().parse_args(
            ["run", "fig2", "--journal", "/tmp/j", "--resume",
             "--watchdog", "30", "--watchdog-retries", "1"]
        )
        assert args.journal == "/tmp/j"
        assert args.resume
        assert args.watchdog == 30.0
        assert args.watchdog_retries == 1

    def test_run_crash_safety_defaults_off(self):
        args = build_parser().parse_args(["run", "fig2"])
        assert args.journal is None
        assert not args.resume
        assert args.watchdog is None
        assert args.watchdog_retries == 2

    def test_faults_command_parses(self):
        args = build_parser().parse_args(
            ["faults", "--mttf", "50", "--mttr", "5",
             "--ltot-grid", "10,100", "--backoff", "jittered",
             "--replications", "2", "--npros", "2"]
        )
        assert args.command == "faults"
        assert args.mttf == 50.0
        assert args.mttr == 5.0
        assert args.ltot_grid == "10,100"
        assert args.backoff == "jittered"
        assert args.replications == 2
        assert args.npros == 2

    def test_faults_rejects_unknown_backoff(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--backoff", "fibonacci"])

    def test_run_metrics_flags(self):
        args = build_parser().parse_args(
            ["run", "fig2", "--metrics", "--metrics-port", "9464",
             "--metrics-snapshot", "/tmp/m.json"]
        )
        assert args.metrics
        assert args.metrics_port == 9464
        assert args.metrics_snapshot == "/tmp/m.json"

    def test_top_command_parses(self):
        args = build_parser().parse_args(
            ["top", "sweep.journal", "--once", "--interval", "0.5"]
        )
        assert args.command == "top"
        assert args.journal == "sweep.journal"
        assert args.once
        assert args.interval == 0.5

    def test_report_json_flag_is_optional_path(self):
        bare = build_parser().parse_args(["report", "t.jsonl", "--json"])
        assert bare.json == "-"
        pathed = build_parser().parse_args(
            ["report", "t.jsonl", "--json", "out.json"]
        )
        assert pathed.json == "out.json"
        off = build_parser().parse_args(["report", "t.jsonl"])
        assert off.json is None


class TestExecution:
    def test_list_prints_exhibits(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "table1" in out and "ablation_conflict" in out

    def test_simulate_prints_outputs(self, capsys):
        code = main(
            [
                "simulate",
                "--dbsize", "200", "--ltot", "10", "--ntrans", "3",
                "--maxtransize", "20", "--npros", "2", "--tmax", "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "totcom" in out

    def test_run_quick_table1(self, capsys):
        code = main(["run", "table1", "--tmax", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_run_quick_saves_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        code = main(
            [
                "run", "fig7", "--quick", "--tmax", "40",
                "--save", str(csv_path), "--json", str(json_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        assert json_path.exists()
        out = capsys.readouterr().out
        assert "liotime=0.2" in out
        assert "expected shape" in out.lower()

    def test_run_with_plot(self, capsys):
        code = main(["run", "table1", "--tmax", "60", "--plot"])
        assert code == 0
        assert "log x" in capsys.readouterr().out

    def test_run_unknown_exhibit_raises(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_run_warm_cache_skips_simulation(self, capsys, tmp_path):
        argv = ["run", "table1", "--quick", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 simulated" in out
        assert "100% hit rate" in out

    def test_run_no_cache_writes_nothing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert main(["run", "table1", "--quick", "--no-cache"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "c").exists()

    def test_run_with_seed_override(self, capsys):
        code = main(["run", "table1", "--tmax", "60", "--seed", "123"])
        assert code == 0

    def test_run_writes_svg_charts(self, capsys, tmp_path):
        svg_dir = tmp_path / "charts"
        code = main(
            ["run", "table1", "--tmax", "40", "--svg", str(svg_dir)]
        )
        assert code == 0
        written = list(svg_dir.glob("*.svg"))
        assert len(written) == 2  # throughput + response_time

    def test_simulate_with_trace(self, capsys):
        code = main(
            [
                "simulate", "--dbsize", "200", "--ltot", "10",
                "--ntrans", "2", "--maxtransize", "10", "--npros", "2",
                "--tmax", "30", "--trace", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "arrive" in out
        assert "events total" in out

    def test_tune_reports_optimum(self, capsys):
        code = main(
            [
                "tune", "--dbsize", "300", "--ntrans", "3",
                "--maxtransize", "30", "--npros", "2", "--tmax", "60",
                "--replications", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Optimal granularity" in out

    def test_compare_flags_changes(self, capsys, tmp_path):
        from repro.experiments.storage import save_rows_csv

        baseline = [
            {"ltot": 1, "npros": 2, "throughput": 0.10},
            {"ltot": 10, "npros": 2, "throughput": 0.20},
        ]
        candidate = [
            {"ltot": 1, "npros": 2, "throughput": 0.10},
            {"ltot": 10, "npros": 2, "throughput": 0.30},
        ]
        base_path = tmp_path / "base.csv"
        cand_path = tmp_path / "cand.csv"
        save_rows_csv(baseline, base_path)
        save_rows_csv(candidate, cand_path)
        code = main(["compare", str(base_path), str(cand_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "improved" in out
        assert "1 of 2" in out

    def test_sensitivity_reports_elasticities(self, capsys):
        code = main(
            [
                "sensitivity", "--dbsize", "300", "--ntrans", "3",
                "--maxtransize", "30", "--npros", "2", "--tmax", "60",
                "--replications", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Elasticity" in out
        assert "iotime" in out

    def test_compare_disjoint_files_fail(self, capsys, tmp_path):
        from repro.experiments.storage import save_rows_csv

        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        save_rows_csv([{"ltot": 1, "throughput": 0.1}], a)
        save_rows_csv([{"ltot": 99, "throughput": 0.1}], b)
        assert main(["compare", str(a), str(b)]) == 1

    def test_trace_then_report_round_trip(self, capsys, tmp_path):
        from repro.obs import load_manifest, load_trace

        out = tmp_path / "telemetry.jsonl"
        assert main([
            "trace", "--out", str(out), "--sample-interval", "10",
            "--dbsize", "200", "--ltot", "10", "--ntrans", "3",
            "--maxtransize", "20", "--npros", "2", "--tmax", "80",
            "--print", "3",
        ]) == 0
        trace_out = capsys.readouterr().out
        assert "Telemetry written to" in trace_out
        assert "arrive" in trace_out  # --print 3 shows the first events

        loaded = load_trace(str(out))
        assert loaded.footer is not None
        assert len(loaded.records) == loaded.footer["events"]
        assert len(loaded.samples) == 8  # tmax=80 / interval 10
        manifest = load_manifest(str(out) + ".manifest")
        assert manifest is not None
        assert manifest["cache_hit"] is False

        svg = tmp_path / "timeline.svg"
        assert main([
            "report", str(out), "--top", "3", "--svg", str(svg),
        ]) == 0
        report_out = capsys.readouterr().out
        assert "Telemetry report" in report_out
        assert "events by kind" in report_out
        assert "Utilisation timeline" in report_out
        assert svg.read_text().startswith("<svg")

    def test_faults_sweep_prints_table_and_saves(self, capsys, tmp_path):
        csv_path = tmp_path / "faults.csv"
        code = main(
            [
                "faults", "--mttf", "30", "--mttr", "10",
                "--ltot-grid", "10,20", "--replications", "1",
                "--dbsize", "500", "--ntrans", "5", "--maxtransize", "50",
                "--npros", "4", "--tmax", "150", "--seed", "7",
                "--save", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "failure_aborts" in out
        assert csv_path.exists()

    def test_faults_sweep_is_reproducible(self, capsys, tmp_path):
        argv = [
            "faults", "--mttf", "30", "--ltot-grid", "10",
            "--replications", "1", "--dbsize", "300", "--ntrans", "3",
            "--maxtransize", "30", "--npros", "2", "--tmax", "100",
            "--seed", "5",
        ]
        assert main(argv + ["--save", str(tmp_path / "a.csv")]) == 0
        assert main(argv + ["--save", str(tmp_path / "b.csv")]) == 0
        capsys.readouterr()
        assert (tmp_path / "a.csv").read_text() == (
            tmp_path / "b.csv"
        ).read_text()

    def test_faults_without_sources_warns(self, capsys):
        code = main(
            [
                "faults", "--ltot-grid", "10", "--replications", "1",
                "--dbsize", "300", "--ntrans", "3", "--maxtransize", "30",
                "--npros", "2", "--tmax", "60",
            ]
        )
        assert code == 0
        assert "No fault source enabled" in capsys.readouterr().out

    def test_run_resume_on_clean_cache_completes(self, capsys, tmp_path):
        argv = [
            "run", "table1", "--quick", "--cache-dir", str(tmp_path),
            "--journal", str(tmp_path / "t.journal"), "--resume",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        # Second invocation resumes everything from journal + cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Resumed" in out
        assert "0 simulated" in out

    def test_report_rejects_garbage_file(self, tmp_path):
        from repro.obs import TraceSchemaError

        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(TraceSchemaError):
            main(["report", str(bad)])


class TestAnalyticVerbs:
    def test_predict_flags_parse(self):
        args = build_parser().parse_args(
            ["predict", "--ltot", "100", "--npros", "10",
             "--ltot-grid", "1,10,100", "--json", "/tmp/p.json"]
        )
        assert args.command == "predict"
        assert args.ltot == 100
        assert args.ltot_grid == "1,10,100"

    def test_crossval_flags_parse(self):
        args = build_parser().parse_args(
            ["crossval", "fig2", "--cc", "incremental",
             "--max-mean-error", "0.15", "--min-completions", "10",
             "--svg", "/tmp/c.svg"]
        )
        assert args.command == "crossval"
        assert args.exhibit == "fig2"
        assert args.protocol == "incremental"
        assert args.max_mean_error == 0.15

    def test_crossval_default_exhibit(self):
        args = build_parser().parse_args(["crossval"])
        assert args.exhibit == "ablation_analytic"

    def test_run_accelerator_flag(self):
        args = build_parser().parse_args(
            ["run", "fig2", "--accelerator", "analytic"]
        )
        assert args.accelerator == "analytic"
        assert build_parser().parse_args(["run", "fig2"]).accelerator is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig2", "--accelerator", "x"])

    def test_predict_prints_curve(self, capsys, tmp_path):
        json_path = tmp_path / "pred.json"
        code = main(
            ["predict", "--npros", "10", "--ltot-grid", "1,10,100,1000",
             "--json", str(json_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "semantics: blocking" in out
        assert json_path.exists()
        import json

        rows = json.load(open(json_path))["rows"]
        assert len(rows) == 4
        assert all(r["provenance"] == "analytic" for r in rows)

    def test_predict_single_cell(self, capsys):
        assert main(["predict", "--ltot", "50", "--npros", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 2

    def test_crossval_gate_and_artifacts(self, capsys, tmp_path):
        json_path = tmp_path / "cv.json"
        svg_path = tmp_path / "cv.svg"
        argv = [
            "crossval", "ablation_analytic", "--tmax", "150",
            "--npros-grid", "10", "--ltot-grid", "10,100",
            "--min-completions", "1", "--no-cache",
            "--json", str(json_path), "--svg", str(svg_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "mean |error|" in out
        assert json_path.exists()
        assert svg_path.exists()
        # An impossible bound trips the CI gate deterministically.
        assert main(argv + ["--max-mean-error", "0.0"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_run_accelerated_sweep_completes(self, capsys, tmp_path):
        # Small --quick curves are fully simulated by design (the plan
        # only prunes interior points of longer curves); the flag must
        # still run end to end and report the sweep normally.
        code = main(
            ["run", "ablation_analytic", "--quick", "--tmax", "60",
             "--cache-dir", str(tmp_path / "cache"),
             "--accelerator", "analytic"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out


class TestObservabilityVerbs:
    def test_run_with_metrics_writes_snapshot_and_top_renders(
        self, capsys, tmp_path
    ):
        journal = str(tmp_path / "s.journal")
        code = main(
            ["run", "table1", "--tmax", "120", "--no-cache",
             "--journal", journal, "--metrics"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Metrics snapshots ->" in out
        assert "Metrics:" in out  # end-of-sweep counter summary

        assert main(["top", journal, "--once"]) == 0
        frame = capsys.readouterr().out
        assert "FINISHED" in frame
        assert "commits" in frame

    def test_top_on_missing_journal_fails_cleanly(self, capsys, tmp_path):
        code = main(["top", str(tmp_path / "nope.journal"), "--once"])
        assert code == 1
        assert "is the sweep running?" in capsys.readouterr().out

    def test_report_json_to_stdout_and_file(self, capsys, tmp_path):
        import json as json_module

        telemetry = str(tmp_path / "t.jsonl")
        assert main(
            ["trace", "--out", telemetry, "--tmax", "100",
             "--dbsize", "200", "--maxtransize", "30", "--ltot", "10"]
        ) == 0
        capsys.readouterr()

        assert main(["report", telemetry, "--json"]) == 0
        document = json_module.loads(capsys.readouterr().out)
        assert set(document) == {"header", "summary", "diagnosis", "timeline"}
        assert document["summary"]["completions"] > 0

        out_path = str(tmp_path / "report.json")
        assert main(["report", telemetry, "--json", out_path]) == 0
        with open(out_path) as handle:
            assert json_module.load(handle)["diagnosis"][
                "wait_episodes"
            ] >= 0

    def test_text_report_includes_contention_diagnosis(
        self, capsys, tmp_path
    ):
        telemetry = str(tmp_path / "t.jsonl")
        assert main(
            ["trace", "--out", telemetry, "--tmax", "120",
             "--dbsize", "200", "--maxtransize", "40", "--ltot", "10",
             "--cc", "incremental", "--conflict-engine", "explicit"]
        ) == 0
        capsys.readouterr()
        assert main(["report", telemetry]) == 0
        out = capsys.readouterr().out
        assert "Contention diagnosis:" in out
        assert "hottest granules by time spent waiting:" in out
