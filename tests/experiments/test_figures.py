"""Unit tests for the exhibit registry (no simulation runs here)."""

import pytest

from repro.experiments.config import LTOT_GRID, NPROS_GRID
from repro.experiments.figures import EXHIBITS, get_exhibit


class TestRegistry:
    def test_every_paper_exhibit_present(self):
        for key in ["table1"] + ["fig{}".format(i) for i in range(2, 13)]:
            assert key in EXHIBITS

    def test_ablations_present(self):
        for key in (
            "ablation_conflict",
            "ablation_protocol",
            "ablation_scheduling",
            "ablation_discipline",
        ):
            assert key in EXHIBITS

    def test_get_exhibit_accepts_number(self):
        assert get_exhibit(2).key == "fig2"
        assert get_exhibit("7").key == "fig7"

    def test_get_exhibit_accepts_name(self):
        assert get_exhibit("fig9").key == "fig9"
        assert get_exhibit("table1").key == "table1"

    def test_unknown_exhibit_raises(self):
        with pytest.raises(KeyError):
            get_exhibit("fig99")

    def test_every_spec_has_expected_shape_text(self):
        for key, builder in EXHIBITS.items():
            spec = builder()
            assert spec.expected_shape, "missing acceptance text: {}".format(key)

    def test_every_spec_validates_all_configurations(self):
        for builder in EXHIBITS.values():
            for config in builder().configurations():
                config.validate()


class TestSpecShapes:
    def test_fig2_grid(self):
        spec = get_exhibit(2)
        assert spec.sweeps["npros"] == NPROS_GRID
        assert spec.sweeps["ltot"] == LTOT_GRID
        assert spec.y_fields == ("throughput", "response_time")
        assert len(spec.configurations()) == 72

    def test_fig4_and_fig5_differ_in_size(self):
        assert get_exhibit(4).base.maxtransize == 500
        assert get_exhibit(5).base.maxtransize == 50

    def test_fig6_sweeps_transaction_size(self):
        spec = get_exhibit(6)
        assert spec.base.npros == 10
        assert spec.sweeps["maxtransize"] == (50, 100, 500, 2500, 5000)

    def test_fig7_sweeps_lock_io_time(self):
        spec = get_exhibit(7)
        assert spec.sweeps["liotime"] == (0.2, 0.1, 0.0)

    def test_fig8_uses_random_partitioning(self):
        assert get_exhibit(8).base.partitioning == "random"

    def test_fig9_fig10_sweep_placement_and_npros(self):
        for number in (9, 10):
            spec = get_exhibit(number)
            assert spec.sweeps["placement"] == ("best", "random", "worst")
            assert spec.sweeps["npros"] == (1, 30)

    def test_fig11_mixed_workload(self):
        spec = get_exhibit(11)
        assert spec.base.workload == "mixed"
        assert spec.base.npros == 30

    def test_fig12_heavy_load(self):
        spec = get_exhibit(12)
        assert spec.base.ntrans == 200
        assert spec.base.npros == 20

    def test_table1_is_single_run(self):
        assert len(get_exhibit("table1").configurations()) == 1

    def test_ablation_protocol_uses_explicit_engine(self):
        spec = get_exhibit("ablation_protocol")
        assert spec.base.conflict_engine == "explicit"
        for config in spec.configurations():
            config.validate()

    def test_ablation_classes_two_class_mix(self):
        spec = get_exhibit("ablation_classes")
        assert spec.base.workload == "classes"
        assert spec.base.workload_mix.names == ("oltp", "batch")
        assert spec.sweeps["ltot"] == LTOT_GRID
        assert "throughput__oltp" in spec.y_fields
        assert "throughput__batch" in spec.y_fields
        for config in spec.configurations():
            config.validate()
