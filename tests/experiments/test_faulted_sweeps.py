"""Faulted sweeps: cache hygiene, inline journalling, and resume.

A run under an enabled :class:`FaultPlan` (or a non-default backoff)
is not the pure function of its parameters that the result cache
addresses, so the runner must never read from nor write to the cache
for such sweeps.  Durability comes from the journal instead: faulted
cells record their result fields inline, and resuming replays them
bit-identically — but only under the same plan digest.
"""

import json

import pytest

from repro.core.parameters import SimulationParameters
from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import run_experiment
from repro.faults import CrashSpec, FaultPlan, PartitionSpec

CRASHY = FaultPlan(crashes=(CrashSpec(mttf=30.0, mttr=10.0),))

CUT = FaultPlan(
    partitions=(PartitionSpec(mtbf=30.0, duration=10.0),),
)


def _spec(**base_changes):
    base = dict(
        dbsize=400, ltot=20, ntrans=4, maxtransize=24, npros=4,
        tmax=120.0, seed=5,
    )
    base.update(base_changes)
    return ExperimentSpec(
        key="faulted",
        title="faulted sweep",
        base=SimulationParameters(**base),
        sweeps={"ltot": (10, 40)},
    )


def _entries(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestCacheHygiene:
    def test_faulted_sweep_never_touches_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = run_experiment(
            _spec(), replications=2, cache=cache, fault_plan=CRASHY
        )
        assert result.stats.runs == 4
        assert result.stats.cache_hits == 0
        assert not list((tmp_path / "cache").rglob("*.json"))

    def test_custom_backoff_also_bypasses_the_cache(self, tmp_path):
        from repro.faults import ExponentialBackoff

        cache = ResultCache(tmp_path / "cache")
        run_experiment(
            _spec(), replications=1, cache=cache,
            backoff=ExponentialBackoff(),
        )
        assert not list((tmp_path / "cache").rglob("*.json"))

    def test_empty_plan_is_the_unfaulted_path(self, tmp_path):
        """A disabled plan must behave exactly like no plan: cached."""
        cache = ResultCache(tmp_path / "cache")
        run_experiment(
            _spec(), replications=1, cache=cache, fault_plan=FaultPlan()
        )
        assert list((tmp_path / "cache").rglob("*.json"))

    def test_accelerator_refused_for_faulted_sweeps(self):
        with pytest.raises(ValueError, match="unfaulted"):
            run_experiment(
                _spec(), cache=False, fault_plan=CRASHY,
                accelerator="analytic",
            )


class TestJournalledResume:
    def test_results_are_journalled_inline(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_experiment(
            _spec(), replications=2, cache=False, fault_plan=CRASHY,
            journal=str(journal),
        )
        done = [e for e in _entries(journal) if "done" in e]
        assert len(done) == 4
        assert all("result" in e and "throughput" in e["result"] for e in done)

    def test_resume_is_bit_identical(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        full = run_experiment(
            _spec(), replications=2, cache=False, fault_plan=CRASHY,
            journal=str(journal),
        )
        # Keep the header plus half the completed cells.
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[:3]))
        resumed = run_experiment(
            _spec(), replications=2, cache=False, fault_plan=CRASHY,
            journal=str(journal), resume=True,
        )
        assert resumed.rows() == full.rows()
        assert resumed.stats.resumed == 2
        assert resumed.stats.runs == 2

    def test_resume_refuses_a_different_plan(self, tmp_path):
        """The plan digest is folded into the sweep id: a journal
        written under one schedule never seeds another."""
        journal = tmp_path / "sweep.jsonl"
        run_experiment(
            _spec(), replications=1, cache=False, fault_plan=CRASHY,
            journal=str(journal),
        )
        resumed = run_experiment(
            _spec(), replications=1, cache=False, fault_plan=CUT,
            journal=str(journal), resume=True,
        )
        assert resumed.stats.resumed == 0
        assert resumed.stats.runs == 2

    def test_pooled_matches_inline(self, tmp_path):
        inline = run_experiment(
            _spec(), replications=2, cache=False, fault_plan=CUT
        )
        pooled = run_experiment(
            _spec(), replications=2, cache=False, fault_plan=CUT, jobs=2
        )
        assert pooled.rows() == inline.rows()
