"""Edge-case tests for report formatting internals."""

import math

from repro.experiments.report import _format_value


class TestFormatValue:
    def test_none(self):
        assert _format_value(None) == "-"

    def test_nan(self):
        assert _format_value(float("nan")) == "nan"

    def test_zero(self):
        assert _format_value(0.0) == "0"

    def test_large_values_no_decimals(self):
        assert _format_value(12345.6) == "12346"

    def test_unit_range_three_decimals(self):
        assert _format_value(1.23456) == "1.235"

    def test_small_values_four_decimals(self):
        assert _format_value(0.123456) == "0.1235"

    def test_negative_values(self):
        assert _format_value(-0.5) == "-0.5000"

    def test_integers_pass_through(self):
        assert _format_value(42) == "42"

    def test_strings_pass_through(self):
        assert _format_value("best") == "best"

    def test_infinity_handled(self):
        text = _format_value(math.inf)
        assert "inf" in text
