"""Integration tests for the experiment runner."""

import pytest

from repro.core.parameters import SimulationParameters
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import ExperimentResult, run_experiment


@pytest.fixture
def tiny_spec():
    return ExperimentSpec(
        key="tiny",
        title="tiny sweep",
        base=SimulationParameters(
            dbsize=200, ntrans=3, maxtransize=20, npros=2, tmax=80.0, seed=1
        ),
        sweeps={"npros": (1, 2), "ltot": (1, 20)},
        series_fields=("npros",),
        y_fields=("throughput",),
    )


class TestRunExperiment:
    def test_runs_every_configuration(self, tiny_spec):
        result = run_experiment(tiny_spec)
        assert len(result) == 4
        assert all(outcome is not None for outcome in result.outcomes)

    def test_outcomes_keep_sweep_order(self, tiny_spec):
        result = run_experiment(tiny_spec)
        keys = [(o.params.npros, o.params.ltot) for o in result.outcomes]
        assert keys == [(1, 1), (1, 20), (2, 1), (2, 20)]

    def test_replications_aggregate(self, tiny_spec):
        result = run_experiment(tiny_spec, replications=2)
        assert all(len(outcome) == 2 for outcome in result.outcomes)

    def test_progress_callback(self, tiny_spec):
        seen = []
        run_experiment(tiny_spec, progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_parallel_matches_serial(self, tiny_spec):
        serial = run_experiment(tiny_spec)
        parallel = run_experiment(tiny_spec, jobs=2)
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert a.mean("throughput") == b.mean("throughput")
            assert a.mean("totcom") == b.mean("totcom")


class TestExperimentResult:
    def test_rows_merge_params_and_outputs(self, tiny_spec):
        result = run_experiment(tiny_spec)
        rows = result.rows()
        assert len(rows) == 4
        assert {"ltot", "npros", "throughput"} <= set(rows[0])

    def test_series_grouping(self, tiny_spec):
        result = run_experiment(tiny_spec)
        curves = result.series("throughput")
        assert set(curves) == {"npros=1", "npros=2"}
        for points in curves.values():
            assert [x for x, _ in points] == [1, 20]

    def test_series_sorted_by_x(self, tiny_spec):
        result = run_experiment(tiny_spec)
        for points in result.series().values():
            xs = [x for x, _ in points]
            assert xs == sorted(xs)

    def test_optimum_picks_max(self, tiny_spec):
        result = run_experiment(tiny_spec)
        x, y = result.optimum("npros=2", "throughput")
        curve = dict(result.series("throughput")["npros=2"])
        assert y == max(curve.values())
        assert curve[x] == y

    def test_optimum_minimize(self, tiny_spec):
        result = run_experiment(tiny_spec)
        _, y = result.optimum("npros=2", "throughput", maximize=False)
        curve = dict(result.series("throughput")["npros=2"])
        assert y == min(curve.values())

    def test_empty_result_wrapping(self, tiny_spec):
        result = ExperimentResult(tiny_spec, [])
        assert len(result) == 0
        assert result.series() == {}
