"""Integration tests for the experiment runner."""

import json

import pytest

import repro.experiments.runner as runner_module
from repro.core.parameters import SimulationParameters
from repro.des.errors import SimulationStalled
from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSpec
from repro.experiments.journal import SweepJournal
from repro.experiments.runner import (
    ExperimentResult,
    SweepStalled,
    SweepStats,
    _retry_backoff,
    _run_single_timed,
    run_experiment,
)


def _failing_worker(params, timeout=None):
    """Module-level replacement worker (process pools must pickle it)."""
    if params.ltot == 20:
        raise RuntimeError("injected failure ltot=20")
    return _run_single_timed(params)


def _always_stalling_worker(params, timeout=None):
    """Module-level stalling worker (process pools must pickle it)."""
    raise SimulationStalled("injected stall")


class _StallOnceWorker:
    """Inline-only worker: stalls on its first call, then recovers."""

    def __init__(self):
        self.calls = 0

    def __call__(self, params, timeout=None):
        self.calls += 1
        if self.calls == 1:
            raise SimulationStalled("injected stall")
        return _run_single_timed(params)


@pytest.fixture
def tiny_spec():
    return ExperimentSpec(
        key="tiny",
        title="tiny sweep",
        base=SimulationParameters(
            dbsize=200, ntrans=3, maxtransize=20, npros=2, tmax=80.0, seed=1
        ),
        sweeps={"npros": (1, 2), "ltot": (1, 20)},
        series_fields=("npros",),
        y_fields=("throughput",),
    )


class TestRunExperiment:
    def test_runs_every_configuration(self, tiny_spec):
        result = run_experiment(tiny_spec)
        assert len(result) == 4
        assert all(outcome is not None for outcome in result.outcomes)

    def test_outcomes_keep_sweep_order(self, tiny_spec):
        result = run_experiment(tiny_spec)
        keys = [(o.params.npros, o.params.ltot) for o in result.outcomes]
        assert keys == [(1, 1), (1, 20), (2, 1), (2, 20)]

    def test_replications_aggregate(self, tiny_spec):
        result = run_experiment(tiny_spec, replications=2)
        assert all(len(outcome) == 2 for outcome in result.outcomes)

    def test_progress_callback(self, tiny_spec):
        seen = []
        run_experiment(tiny_spec, progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_cell_progress_fires_per_replication(self, tiny_spec):
        seen = []
        run_experiment(
            tiny_spec,
            replications=2,
            cache=False,
            cell_progress=lambda done, total, info: seen.append(
                (done, total, info)
            ),
        )
        assert [(done, total) for done, total, _ in seen] == [
            (i + 1, 8) for i in range(8)
        ]
        infos = [info for _, _, info in seen]
        assert all(info["source"] == "run" for info in infos)
        assert all(info["seconds"] > 0 for info in infos)
        assert {(info["config"], info["replication"]) for info in infos} == {
            (i, r) for i in range(4) for r in range(2)
        }
        assert infos[0]["label"]

    def test_cell_progress_reports_cache_hits(self, tiny_spec, tmp_path):
        from repro.experiments.cache import ResultCache

        cache = ResultCache(root=tmp_path / "cache")
        run_experiment(tiny_spec, cache=cache)
        seen = []
        run_experiment(
            tiny_spec,
            cache=cache,
            cell_progress=lambda done, total, info: seen.append(info),
        )
        assert len(seen) == 4
        assert all(info["source"] == "cache" for info in seen)
        assert all(info["seconds"] is None for info in seen)

    def test_manifests_written_next_to_cache_entries(self, tiny_spec, tmp_path):
        from repro.experiments.cache import ResultCache

        cache = ResultCache(root=tmp_path / "cache")
        run_experiment(tiny_spec, cache=cache)
        for params in tiny_spec.configurations():
            manifest = cache.get_manifest(params)
            assert manifest is not None, params
            assert manifest["cache_hit"] is False
            assert manifest["seed"] == params.seed
            assert manifest["wall_seconds"] > 0

    def test_manifests_opt_out(self, tiny_spec, tmp_path):
        from repro.experiments.cache import ResultCache

        cache = ResultCache(root=tmp_path / "cache")
        run_experiment(tiny_spec, cache=cache, manifests=False)
        assert all(
            cache.get_manifest(params) is None
            for params in tiny_spec.configurations()
        )

    def test_parallel_matches_serial(self, tiny_spec):
        serial = run_experiment(tiny_spec)
        parallel = run_experiment(tiny_spec, jobs=2)
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert a.mean("throughput") == b.mean("throughput")
            assert a.mean("totcom") == b.mean("totcom")

    def test_pool_is_bit_identical_to_inline(self, tiny_spec):
        """jobs=N must reproduce the inline run exactly, field by field,
        replication by replication (the pool parallelises replication
        runs, but aggregation stays in seed order)."""
        inline = run_experiment(tiny_spec, replications=2, cache=False)
        pooled = run_experiment(tiny_spec, replications=2, jobs=2, cache=False)
        for a, b in zip(inline.outcomes, pooled.outcomes):
            assert len(a) == len(b) == 2
            for ra, rb in zip(a.results, b.results):
                assert ra.params == rb.params
                assert ra.as_dict() == rb.as_dict()

    def test_replications_zero_rejected(self, tiny_spec):
        with pytest.raises(ValueError):
            run_experiment(tiny_spec, replications=0)

    def test_worker_exception_surfaces_inline(self, tiny_spec, monkeypatch):
        monkeypatch.setattr(
            runner_module, "_run_single_timed", _failing_worker
        )
        with pytest.raises(RuntimeError, match="injected failure"):
            run_experiment(tiny_spec, cache=False)

    def test_worker_exception_cancels_pool(self, tiny_spec, monkeypatch):
        """A failing worker must abort the sweep with the original
        exception instead of returning outcomes with None holes."""
        monkeypatch.setattr(
            runner_module, "_run_single_timed", _failing_worker
        )
        with pytest.raises(RuntimeError, match="injected failure"):
            run_experiment(tiny_spec, jobs=2, cache=False)


class TestJournalledSweeps:
    def test_journal_path_accepted_and_finished(self, tiny_spec, tmp_path):
        journal_path = tmp_path / "journals" / "tiny.journal"
        cache = ResultCache(tmp_path / "cache")
        run_experiment(tiny_spec, cache=cache, journal=str(journal_path))
        assert journal_path.exists()
        lines = [
            json.loads(line)
            for line in journal_path.read_text().splitlines()
        ]
        assert lines[0]["cells"] == 4
        assert lines[0]["label"] == "tiny"
        assert sum(1 for entry in lines if "done" in entry) == 4
        assert lines[-1] == {"finished": True}

    def test_resume_counts_journalled_cache_hits(self, tiny_spec, tmp_path):
        journal_path = tmp_path / "tiny.journal"
        cache = ResultCache(tmp_path / "cache")
        first = run_experiment(tiny_spec, cache=cache, journal=journal_path)
        resumed = run_experiment(
            tiny_spec, cache=cache, journal=journal_path, resume=True
        )
        assert resumed.stats.resumed == 4
        assert resumed.stats.cache_hits == 4
        assert resumed.stats.runs == 0
        for a, b in zip(first.outcomes, resumed.outcomes):
            assert a.as_dict() == b.as_dict()

    def test_partial_journal_resumes_the_rest(self, tiny_spec, tmp_path):
        journal_path = tmp_path / "tiny.journal"
        cache = ResultCache(tmp_path / "cache")
        run_experiment(tiny_spec, cache=cache, journal=journal_path)
        # Simulate a crash after two cells: keep header + two entries.
        lines = journal_path.read_text().splitlines()
        journal_path.write_text("\n".join(lines[:3]) + "\n")
        resumed = run_experiment(
            tiny_spec, cache=cache, journal=journal_path, resume=True
        )
        assert resumed.stats.resumed == 2
        assert resumed.stats.cache_hits == 4  # the rest still hit the cache
        assert SweepJournal(journal_path).finished(
            json.loads(journal_path.read_text().splitlines()[0])["sweep"]
        )

    def test_without_resume_journal_is_rewritten(self, tiny_spec, tmp_path):
        journal_path = tmp_path / "tiny.journal"
        cache = ResultCache(tmp_path / "cache")
        run_experiment(tiny_spec, cache=cache, journal=journal_path)
        again = run_experiment(tiny_spec, cache=cache, journal=journal_path)
        assert again.stats.resumed == 0
        assert again.stats.cache_hits == 4

    def test_journal_instance_accepted(self, tiny_spec, tmp_path):
        journal = SweepJournal(tmp_path / "tiny.journal")
        result = run_experiment(tiny_spec, cache=False, journal=journal)
        assert result.stats.runs == 4
        assert journal._handle is None  # closed on the way out


class TestWatchdog:
    def test_generous_watchdog_changes_nothing(self, tiny_spec):
        plain = run_experiment(tiny_spec, cache=False)
        guarded = run_experiment(tiny_spec, cache=False, watchdog=300.0)
        assert guarded.stats.watchdog_restarts == 0
        for a, b in zip(plain.outcomes, guarded.outcomes):
            for ra, rb in zip(a.results, b.results):
                assert ra.as_dict() == rb.as_dict()

    def test_inline_stall_retries_then_succeeds(self, tiny_spec, monkeypatch):
        monkeypatch.setattr(
            runner_module, "_run_single_timed", _StallOnceWorker()
        )
        result = run_experiment(
            tiny_spec, cache=False, watchdog=1.0, watchdog_retries=2
        )
        assert result.stats.watchdog_restarts == 1
        assert all(outcome is not None for outcome in result.outcomes)

    def test_inline_stall_exhausts_retries(self, tiny_spec, monkeypatch):
        monkeypatch.setattr(
            runner_module, "_run_single_timed", _always_stalling_worker
        )
        with pytest.raises(SweepStalled, match="watchdog"):
            run_experiment(
                tiny_spec, cache=False, watchdog=1.0, watchdog_retries=0
            )

    def test_pooled_stall_exhausts_retries(self, tiny_spec, monkeypatch):
        monkeypatch.setattr(
            runner_module, "_run_single_timed", _always_stalling_worker
        )
        with pytest.raises(SweepStalled, match="watchdog"):
            run_experiment(
                tiny_spec, cache=False, jobs=2,
                watchdog=1.0, watchdog_retries=0,
            )

    def test_retry_backoff_is_capped_exponential(self):
        assert _retry_backoff(1) == 0.5
        assert _retry_backoff(2) == 1.0
        assert _retry_backoff(3) == 2.0
        assert _retry_backoff(4) == 4.0
        assert _retry_backoff(5) == 5.0
        assert _retry_backoff(50) == 5.0


class TestSweepStats:
    def test_uncached_run_counts_every_cell(self, tiny_spec):
        result = run_experiment(tiny_spec, replications=2, cache=False)
        stats = result.stats
        assert stats.configs == 4
        assert stats.replications == 2
        assert stats.cells == 8
        assert stats.runs == 8
        assert stats.cache_hits == 0
        assert stats.cache_misses == 8
        assert stats.hit_rate == 0.0
        assert stats.elapsed_seconds > 0

    def test_per_config_accounting(self, tiny_spec):
        result = run_experiment(tiny_spec, replications=2, cache=False)
        per_config = result.stats.per_config
        assert [c.index for c in per_config] == [0, 1, 2, 3]
        assert all(c.runs == 2 for c in per_config)
        assert all(c.seconds > 0 for c in per_config)
        assert per_config[0].label == "ltot=1, npros=1"

    def test_summary_is_one_line(self, tiny_spec):
        result = run_experiment(tiny_spec, cache=False)
        summary = result.stats.summary()
        assert "\n" not in summary
        assert "4 configs" in summary

    def test_hit_rate_empty_stats(self):
        assert SweepStats().hit_rate == 0.0

    def test_handmade_result_has_no_stats(self, tiny_spec):
        result = ExperimentResult(tiny_spec, [])
        assert result.stats is None


class TestExperimentResult:
    def test_rows_merge_params_and_outputs(self, tiny_spec):
        result = run_experiment(tiny_spec)
        rows = result.rows()
        assert len(rows) == 4
        assert {"ltot", "npros", "throughput"} <= set(rows[0])

    def test_series_grouping(self, tiny_spec):
        result = run_experiment(tiny_spec)
        curves = result.series("throughput")
        assert set(curves) == {"npros=1", "npros=2"}
        for points in curves.values():
            assert [x for x, _ in points] == [1, 20]

    def test_series_sorted_by_x(self, tiny_spec):
        result = run_experiment(tiny_spec)
        for points in result.series().values():
            xs = [x for x, _ in points]
            assert xs == sorted(xs)

    def test_optimum_picks_max(self, tiny_spec):
        result = run_experiment(tiny_spec)
        x, y = result.optimum("npros=2", "throughput")
        curve = dict(result.series("throughput")["npros=2"])
        assert y == max(curve.values())
        assert curve[x] == y

    def test_optimum_minimize(self, tiny_spec):
        result = run_experiment(tiny_spec)
        _, y = result.optimum("npros=2", "throughput", maximize=False)
        curve = dict(result.series("throughput")["npros=2"])
        assert y == min(curve.values())

    def test_empty_result_wrapping(self, tiny_spec):
        result = ExperimentResult(tiny_spec, [])
        assert len(result) == 0
        assert result.series() == {}
