"""Unit tests for the crash-safe sweep journal."""

import json

import pytest

from repro.experiments.journal import SweepJournal, sweep_id

KEYS = ["k1", "k2", "k3"]


@pytest.fixture
def journal(tmp_path):
    return SweepJournal(tmp_path / "sweep.journal")


class TestSweepId:
    def test_stable(self):
        assert sweep_id(KEYS) == sweep_id(list(KEYS))

    def test_sensitive_to_membership_and_order(self):
        assert sweep_id(KEYS) != sweep_id(KEYS[:2])
        assert sweep_id(KEYS) != sweep_id(list(reversed(KEYS)))

    def test_short_hex(self):
        sid = sweep_id(KEYS)
        assert len(sid) == 16
        int(sid, 16)  # raises if not hex


class TestLifecycle:
    def test_record_and_load_round_trip(self, journal):
        sid = sweep_id(KEYS)
        journal.begin(sid, len(KEYS), label="tiny")
        journal.record("k1")
        journal.record("k2")
        journal.close()
        assert journal.load(sid) == {"k1", "k2"}
        assert journal.finished(sid) is False

    def test_finish_marks_clean_end(self, journal):
        sid = sweep_id(KEYS)
        journal.begin(sid, len(KEYS))
        for key in KEYS:
            journal.record(key)
        journal.finish()
        journal.close()
        assert journal.finished(sid) is True
        assert journal.load(sid) == set(KEYS)

    def test_context_manager_closes(self, tmp_path):
        sid = sweep_id(KEYS)
        with SweepJournal(tmp_path / "cm.journal") as journal:
            journal.begin(sid, len(KEYS))
            journal.record("k1")
        assert journal._handle is None
        assert journal.load(sid) == {"k1"}

    def test_creates_parent_directories(self, tmp_path):
        journal = SweepJournal(tmp_path / "deep" / "nested" / "s.journal")
        journal.begin(sweep_id(KEYS), len(KEYS))
        journal.close()
        assert (tmp_path / "deep" / "nested" / "s.journal").exists()

    def test_header_records_shape(self, journal):
        sid = sweep_id(KEYS)
        journal.begin(sid, len(KEYS), label="fig2")
        journal.close()
        with open(journal.path) as handle:
            header = json.loads(handle.readline())
        assert header == {"sweep": sid, "cells": 3, "label": "fig2"}


class TestTolerantLoading:
    def test_missing_file_is_empty(self, journal):
        assert journal.load("whatever") == set()
        assert journal.finished("whatever") is False

    def test_torn_final_line_is_skipped(self, journal):
        sid = sweep_id(KEYS)
        journal.begin(sid, len(KEYS))
        journal.record("k1")
        journal.close()
        with open(journal.path, "a") as handle:
            handle.write('{"done": "k2')  # the crash artefact
        assert journal.load(sid) == {"k1"}

    def test_other_sweep_journal_is_discarded(self, journal):
        journal.begin("aaaa", 3)
        journal.record("k1")
        journal.close()
        assert journal.load("bbbb") == set()
        assert journal.finished("bbbb") is False

    def test_garbage_header_is_empty(self, journal, tmp_path):
        with open(journal.path, "w") as handle:
            handle.write("not json at all\n")
        assert journal.load("aaaa") == set()

    def test_empty_file_is_empty(self, journal):
        open(journal.path, "w").close()
        assert journal.load("aaaa") == set()
        assert journal.finished("aaaa") is False


class TestResumeSemantics:
    def test_keep_appends_to_matching_sweep(self, journal):
        sid = sweep_id(KEYS)
        journal.begin(sid, len(KEYS))
        journal.record("k1")
        journal.close()
        journal.begin(sid, len(KEYS), keep=True)
        journal.record("k2")
        journal.close()
        assert journal.load(sid) == {"k1", "k2"}

    def test_keep_rewrites_on_sweep_mismatch(self, journal):
        journal.begin("aaaa", 3)
        journal.record("k1")
        journal.close()
        other = sweep_id(KEYS)
        journal.begin(other, len(KEYS), keep=True)
        journal.record("k2")
        journal.close()
        assert journal.load(other) == {"k2"}
        assert journal.load("aaaa") == set()

    def test_fresh_begin_truncates(self, journal):
        sid = sweep_id(KEYS)
        journal.begin(sid, len(KEYS))
        journal.record("k1")
        journal.close()
        journal.begin(sid, len(KEYS))  # keep defaults to False
        journal.close()
        assert journal.load(sid) == set()

    def test_record_before_begin_is_a_noop(self, journal):
        journal.record("k1")  # no handle yet: must not raise
        journal.finish()
        journal.close()
