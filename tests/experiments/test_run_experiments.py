"""The batched global work queue (:func:`run_experiments`)."""

import pytest

from repro.core.parameters import SimulationParameters
from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import (
    _job_cost,
    run_experiment,
    run_experiments,
)


def _spec(key, **base_changes):
    base = dict(
        dbsize=200, ntrans=3, maxtransize=20, npros=2, tmax=80.0, seed=1
    )
    base.update(base_changes)
    return ExperimentSpec(
        key=key,
        title=key,
        base=SimulationParameters(**base),
        sweeps={"npros": (1, 2), "ltot": (1, 20)},
        series_fields=("npros",),
        y_fields=("throughput",),
    )


class TestBatchedQueue:
    def test_matches_individual_runs_bit_identically(self):
        spec_a = _spec("a")
        spec_b = _spec("b", tmax=60.0)
        solo = [
            run_experiment(spec_a, cache=False),
            run_experiment(spec_b, cache=False),
        ]
        batched = run_experiments([spec_a, spec_b], cache=False)
        for one, many in zip(solo, batched):
            for oa, ob in zip(one.outcomes, many.outcomes):
                for ra, rb in zip(oa.results, ob.results):
                    assert ra.params == rb.params
                    assert ra.as_dict() == rb.as_dict()

    def test_shared_cells_simulated_once(self):
        """Two specs over the same grid: every cell runs exactly once,
        the second requester sees source "shared", and both specs still
        satisfy cache_misses == runs."""
        spec_a = _spec("a")
        spec_b = _spec("b")  # identical grid -> identical cell keys
        infos = []
        results = run_experiments(
            [spec_a, spec_b],
            cache=False,
            cell_progress=lambda done, total, info: infos.append(info),
        )
        sources = [info["source"] for info in infos]
        assert sources.count("run") == 4
        assert sources.count("shared") == 4
        assert {info["spec"] for info in infos} == {"a", "b"}
        for result in results:
            assert result.stats.runs == 4
            assert result.stats.cache_misses == 4
            assert all(o is not None for o in result.outcomes)
        # Identical grids must deliver identical outcomes.
        for oa, ob in zip(results[0].outcomes, results[1].outcomes):
            assert oa.as_dict() == ob.as_dict()

    def test_shared_cells_write_cache_once(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        results = run_experiments([_spec("a"), _spec("b")], cache=cache)
        assert results[0].stats.runs == results[1].stats.runs == 4
        # A rerun answers every cell of both specs from the cache.
        again = run_experiments([_spec("a"), _spec("b")], cache=cache)
        for result in again:
            assert result.stats.cache_hits == 4
            assert result.stats.runs == 0

    def test_global_progress_counts_span_the_batch(self):
        ticks = []
        run_experiments(
            [_spec("a"), _spec("b", tmax=60.0)],
            cache=False,
            progress=lambda done, total: ticks.append((done, total)),
        )
        assert ticks == [(i + 1, 8) for i in range(8)]

    def test_stats_gain_queue_fields(self):
        result = run_experiments([_spec("a")], cache=False)[0]
        stats = result.stats
        assert stats.workers == 1  # inline execution
        assert 0.0 < stats.occupancy <= 1.05
        assert stats.queue_wait_seconds == 0.0  # no pool, no waiting

    def test_pooled_stats_measure_queue_wait(self):
        result = run_experiments([_spec("a")], cache=False, jobs=2)[0]
        stats = result.stats
        assert stats.workers >= 1
        assert stats.occupancy > 0.0
        assert stats.queue_wait_seconds >= 0.0

    def test_journals_must_align_with_specs(self, tmp_path):
        with pytest.raises(ValueError, match="journals must align"):
            run_experiments(
                [_spec("a"), _spec("b")],
                journals=[str(tmp_path / "only-one.journal")],
            )

    def test_per_spec_journals_resume_independently(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        journals = [
            str(tmp_path / "a.journal"),
            str(tmp_path / "b.journal"),
        ]
        run_experiments([_spec("a"), _spec("b")], cache=cache, journals=journals)
        resumed = run_experiments(
            [_spec("a"), _spec("b")],
            cache=cache,
            journals=journals,
            resume=True,
        )
        for result in resumed:
            assert result.stats.resumed == 4
            assert result.stats.runs == 0


class TestQueueOrdering:
    def test_job_cost_ranks_by_expected_work(self):
        small = SimulationParameters(
            dbsize=200, ntrans=2, maxtransize=20, npros=1, tmax=50.0, seed=1
        )
        big = small.replace(npros=4, tmax=400.0)
        assert _job_cost(big) > _job_cost(small)

    def test_longest_cell_starts_first(self, monkeypatch):
        """Inline execution order follows descending job cost."""
        import repro.experiments.runner as runner_module

        started = []
        real = runner_module._run_single_timed

        def spying(params, timeout=None):
            started.append((params.tmax, params.npros))
            return real(params, timeout)

        monkeypatch.setattr(runner_module, "_run_single_timed", spying)
        spec = _spec("order")
        run_experiments([spec], cache=False)
        costs = [tmax * npros * 3 for tmax, npros in started]
        assert costs == sorted(costs, reverse=True)
