"""Unit tests for experiment specifications."""

from repro.core.parameters import SimulationParameters
from repro.experiments.config import LTOT_GRID, NPROS_GRID, ExperimentSpec


def make_spec(**kwargs):
    defaults = dict(
        key="toy",
        title="toy spec",
        base=SimulationParameters(tmax=100.0),
        sweeps={"npros": (1, 2), "ltot": (1, 10, 100)},
        series_fields=("npros",),
        y_fields=("throughput",),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


class TestConfigurations:
    def test_cartesian_product_size(self):
        spec = make_spec()
        assert len(spec.configurations()) == 6

    def test_product_order_is_declaration_order(self):
        spec = make_spec()
        configs = spec.configurations()
        assert [(c.npros, c.ltot) for c in configs] == [
            (1, 1), (1, 10), (1, 100), (2, 1), (2, 10), (2, 100),
        ]

    def test_no_sweeps_returns_base(self):
        spec = make_spec(sweeps={})
        configs = spec.configurations()
        assert configs == [spec.base]

    def test_base_fields_preserved(self):
        spec = make_spec()
        for config in spec.configurations():
            assert config.tmax == 100.0

    def test_grids_match_paper(self):
        assert LTOT_GRID[0] == 1
        assert LTOT_GRID[-1] == 5000
        assert NPROS_GRID == (1, 2, 5, 10, 20, 30)


class TestSeries:
    def test_series_key_and_label(self):
        spec = make_spec()
        config = spec.base.replace(npros=2)
        assert spec.series_key(config) == (2,)
        assert spec.series_label(config) == "npros=2"

    def test_multi_field_series_label(self):
        spec = make_spec(series_fields=("placement", "npros"))
        config = spec.base.replace(placement="worst", npros=2)
        assert spec.series_label(config) == "placement=worst, npros=2"

    def test_empty_series_label(self):
        spec = make_spec(series_fields=())
        assert spec.series_label(spec.base) == "all"


class TestScaled:
    def test_scaled_tmax(self):
        scaled = make_spec().scaled(tmax=10.0)
        assert scaled.base.tmax == 10.0
        assert all(c.tmax == 10.0 for c in scaled.configurations())

    def test_scaled_ltot_grid(self):
        scaled = make_spec().scaled(ltot_grid=(1, 5000))
        assert scaled.sweeps["ltot"] == (1, 5000)
        assert len(scaled.configurations()) == 4

    def test_scaled_base_changes(self):
        scaled = make_spec().scaled(seed=42)
        assert scaled.base.seed == 42

    def test_scaled_replace_sweeps(self):
        scaled = make_spec().scaled(replace_sweeps={"npros": (5,)})
        assert len(scaled.configurations()) == 3

    def test_scaled_preserves_original(self):
        spec = make_spec()
        spec.scaled(tmax=1.0)
        assert spec.base.tmax == 100.0
