"""Tests for the engine cross-validation utility."""

import pytest

from repro.core.parameters import SimulationParameters
from repro.experiments.crossval import (
    CrossValidation,
    DivergencePoint,
    cross_validate_engines,
)


@pytest.fixture(scope="module")
def validation():
    params = SimulationParameters(
        dbsize=500, ntrans=6, maxtransize=50, npros=4, tmax=200.0, seed=3
    )
    return cross_validate_engines(
        params, ltot_grid=(1, 20, 500), replications=1
    )


class TestDivergencePoint:
    def test_relative_gap(self):
        point = DivergencePoint(10, probabilistic=0.2, explicit=0.25)
        assert point.relative_gap == pytest.approx(0.25)

    def test_zero_baseline(self):
        assert DivergencePoint(1, 0.0, 0.0).relative_gap == 0.0
        assert DivergencePoint(1, 0.0, 0.1).relative_gap == float("inf")


class TestCrossValidation:
    def test_covers_grid(self, validation):
        assert len(validation) == 3
        assert [p.ltot for p in validation.points] == [1, 20, 500]

    def test_engines_agree_within_band(self, validation):
        # The headline claim of EXPERIMENTS.md's ablation table.
        assert validation.agree_within(0.5)
        assert validation.max_absolute_gap < 0.5

    def test_both_engines_produce_work(self, validation):
        for point in validation.points:
            assert point.probabilistic > 0
            assert point.explicit > 0

    def test_format_is_tabular(self, validation):
        text = validation.format()
        assert "ltot" in text
        assert len(text.splitlines()) == 4

    def test_agree_within_rejects_tight_tolerance(self):
        points = [DivergencePoint(1, 0.1, 0.2)]
        assert not CrossValidation(points, "throughput").agree_within(0.5)

    def test_max_gap_ignores_infinite_points(self):
        points = [
            DivergencePoint(1, 0.0, 0.1),
            DivergencePoint(2, 0.1, 0.11),
        ]
        cv = CrossValidation(points, "throughput")
        assert cv.max_absolute_gap == pytest.approx(0.1)
