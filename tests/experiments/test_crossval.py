"""Tests for the engine and analytic cross-validation utilities."""

import math
import xml.etree.ElementTree as ET

import pytest

from repro.core.parameters import SimulationParameters
from repro.experiments.config import ExperimentSpec
from repro.experiments.crossval import (
    AnalyticCell,
    AnalyticCrossValidation,
    CrossValidation,
    DivergencePoint,
    cross_validate_analytic,
    cross_validate_engines,
    save_crossval_chart,
)


@pytest.fixture(scope="module")
def validation():
    params = SimulationParameters(
        dbsize=500, ntrans=6, maxtransize=50, npros=4, tmax=200.0, seed=3
    )
    return cross_validate_engines(
        params, ltot_grid=(1, 20, 500), replications=1
    )


class TestDivergencePoint:
    def test_relative_gap(self):
        point = DivergencePoint(10, probabilistic=0.2, explicit=0.25)
        assert point.relative_gap == pytest.approx(0.25)

    def test_zero_baseline(self):
        assert DivergencePoint(1, 0.0, 0.0).relative_gap == 0.0
        assert DivergencePoint(1, 0.0, 0.1).relative_gap == float("inf")


class TestCrossValidation:
    def test_covers_grid(self, validation):
        assert len(validation) == 3
        assert [p.ltot for p in validation.points] == [1, 20, 500]

    def test_engines_agree_within_band(self, validation):
        # The headline claim of EXPERIMENTS.md's ablation table.
        assert validation.agree_within(0.5)
        assert validation.max_absolute_gap < 0.5

    def test_both_engines_produce_work(self, validation):
        for point in validation.points:
            assert point.probabilistic > 0
            assert point.explicit > 0

    def test_format_is_tabular(self, validation):
        text = validation.format()
        assert "ltot" in text
        assert len(text.splitlines()) == 4

    def test_agree_within_rejects_tight_tolerance(self):
        points = [DivergencePoint(1, 0.1, 0.2)]
        assert not CrossValidation(points, "throughput").agree_within(0.5)

    def test_max_gap_ignores_infinite_points(self):
        points = [
            DivergencePoint(1, 0.0, 0.1),
            DivergencePoint(2, 0.1, 0.11),
        ]
        cv = CrossValidation(points, "throughput")
        assert cv.max_absolute_gap == pytest.approx(0.1)


def _cell(error=0.1, low_sample=False, simulated=1.0, uncertainty=0.0):
    return AnalyticCell(
        label="npros=10",
        x=100,
        simulated=simulated,
        predicted=simulated * (1.0 + error),
        completions=5.0 if low_sample else 100.0,
        uncertainty=uncertainty,
        low_sample=low_sample,
    )


class TestAnalyticCell:
    def test_relative_error(self):
        assert _cell(error=0.25).relative_error == pytest.approx(0.25)
        assert _cell(error=-0.1).relative_error == pytest.approx(-0.1)

    def test_zero_simulated_guard(self):
        zero = AnalyticCell("a", 1, 0.0, 0.0, 100.0, 0.0, False)
        assert zero.relative_error == 0.0
        nonzero = AnalyticCell("a", 1, 0.0, 0.1, 100.0, 0.0, False)
        assert nonzero.relative_error == math.inf
        assert not nonzero.valid

    def test_low_sample_cells_invalid(self):
        assert not _cell(low_sample=True).valid
        assert _cell().valid


class TestAnalyticCrossValidation:
    @pytest.fixture
    def crossval(self):
        return AnalyticCrossValidation(
            [
                _cell(error=0.1),
                _cell(error=-0.2),
                _cell(error=0.9, low_sample=True),
            ],
            field="throughput",
            spec_key="demo",
        )

    def test_mean_excludes_low_sample(self, crossval):
        assert crossval.mean_relative_error == pytest.approx(0.15)
        assert crossval.max_relative_error == pytest.approx(0.2)
        assert len(crossval.valid_cells) == 2

    def test_passes_threshold(self, crossval):
        assert crossval.passes(0.151)
        assert not crossval.passes(0.10)

    def test_empty_never_passes(self):
        empty = AnalyticCrossValidation([])
        assert math.isnan(empty.mean_relative_error)
        assert not empty.passes(1.0)

    def test_worst_sorted_by_magnitude(self, crossval):
        worst = crossval.worst(2)
        assert abs(worst[0].relative_error) >= abs(worst[1].relative_error)

    def test_format_flags_low_sample(self, crossval):
        text = crossval.format()
        assert "low-sample (excluded)" in text
        assert "mean |error|" in text
        assert "worst cells:" in text

    def test_as_dict_round_trips_to_json(self, crossval):
        import json

        payload = crossval.as_dict()
        assert payload["spec"] == "demo"
        assert payload["valid_cells"] == 2
        assert payload["low_sample_cells"] == 1
        json.dumps(payload)  # must be JSON-serialisable

    def test_as_dict_nullifies_infinite_errors(self):
        cell = AnalyticCell("a", 1, 0.0, 0.1, 100.0, 0.0, False)
        payload = AnalyticCrossValidation([cell]).as_dict()
        assert payload["cells"][0]["relative_error"] is None


class TestCrossValidateAnalytic:
    @pytest.fixture(scope="class")
    def outcome(self):
        spec = ExperimentSpec(
            key="cv-tiny",
            title="crossval tiny",
            base=SimulationParameters(
                dbsize=500, ntrans=6, maxtransize=50, npros=4,
                tmax=200.0, seed=3,
            ),
            sweeps={"npros": (2, 4), "ltot": (10, 100)},
            series_fields=("npros",),
            y_fields=("throughput",),
        )
        return cross_validate_analytic(spec, cache=False)

    def test_one_cell_per_configuration(self, outcome):
        crossval, result = outcome
        assert len(crossval) == 4
        assert len(result.outcomes) == 4

    def test_cells_labelled_by_series(self, outcome):
        crossval, _result = outcome
        assert {c.label for c in crossval.cells} == {"npros=2", "npros=4"}

    def test_errors_are_finite_on_healthy_cells(self, outcome):
        crossval, _result = outcome
        for cell in crossval.valid_cells:
            assert math.isfinite(cell.relative_error)
            assert cell.completions >= 25

    def test_chart_overlays_model_on_sim(self, outcome, tmp_path):
        crossval, _result = outcome
        path = save_crossval_chart(crossval, tmp_path / "cv.svg")
        text = open(path).read()
        ET.fromstring(text)  # valid XML
        assert "npros=2 (sim)" in text
        assert "npros=2 (model)" in text
        assert "stroke-dasharray" in text
