"""Tests for the content-addressed result cache."""

import json
import math
import os

import pytest

from repro.core.model import MODEL_VERSION
from repro.core.parameters import SimulationParameters
from repro.core.results import RESULT_FIELDS
from repro.experiments.cache import (
    CACHE_SCHEMA,
    ResultCache,
    cache_enabled,
    cache_key,
    default_cache_dir,
)
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import run_experiment


@pytest.fixture
def params():
    return SimulationParameters(
        dbsize=200, ltot=10, ntrans=3, maxtransize=20, npros=2,
        tmax=60.0, seed=5,
    )


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _simulate(params):
    from repro.core.model import LockingGranularityModel

    return LockingGranularityModel(params).run()


class TestCacheKey:
    def test_stable_across_calls(self, params):
        assert cache_key(params) == cache_key(params)

    def test_seed_changes_key(self, params):
        assert cache_key(params) != cache_key(params.replace(seed=6))

    def test_any_parameter_changes_key(self, params):
        assert cache_key(params) != cache_key(params.replace(ltot=11))

    def test_model_version_changes_key(self, params):
        assert cache_key(params, model_version=MODEL_VERSION) != cache_key(
            params, model_version=MODEL_VERSION + 1
        )

    def test_key_is_hex_sha256(self, params):
        key = cache_key(params)
        assert len(key) == 64
        int(key, 16)  # raises if not hex


class TestResultCache:
    def test_miss_on_empty_cache(self, cache, params):
        assert cache.get(params) is None

    def test_round_trip_is_exact(self, cache, params):
        result = _simulate(params)
        cache.put(params, result)
        restored = cache.get(params)
        assert restored is not None
        assert restored.params == params
        for name in RESULT_FIELDS:
            original = getattr(result, name)
            value = getattr(restored, name)
            if isinstance(original, float) and math.isnan(original):
                assert math.isnan(value)
            else:
                assert value == original, name

    def test_different_seed_misses(self, cache, params):
        cache.put(params, _simulate(params))
        assert cache.get(params.replace(seed=99)) is None

    def test_model_version_invalidates(self, cache, params):
        cache.put(params, _simulate(params))
        stale = ResultCache(cache.root, model_version=MODEL_VERSION + 1)
        assert stale.get(params) is None

    def test_corrupted_file_is_a_miss(self, cache, params):
        cache.put(params, _simulate(params))
        path = cache.path_for(params)
        with open(path, "w") as handle:
            handle.write("{ not json")
        assert cache.get(params) is None
        # And a re-put repairs the entry.
        cache.put(params, _simulate(params))
        assert cache.get(params) is not None

    def test_tampered_params_is_a_miss(self, cache, params):
        cache.put(params, _simulate(params))
        path = cache.path_for(params)
        with open(path) as handle:
            document = json.load(handle)
        document["params"]["ltot"] = 999
        with open(path, "w") as handle:
            json.dump(document, handle)
        assert cache.get(params) is None

    def test_schema_mismatch_is_a_miss(self, cache, params):
        cache.put(params, _simulate(params))
        path = cache.path_for(params)
        with open(path) as handle:
            document = json.load(handle)
        document["schema"] = CACHE_SCHEMA + 1
        with open(path, "w") as handle:
            json.dump(document, handle)
        assert cache.get(params) is None

    def test_delete_and_clear(self, cache, params):
        cache.put(params, _simulate(params))
        cache.put(params.replace(seed=6), _simulate(params.replace(seed=6)))
        assert len(cache) == 2
        assert cache.delete(params) is True
        assert cache.delete(params) is False
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_put_survives_unwritable_root(self, params):
        cache = ResultCache(os.path.join(os.sep, "proc", "no-such-dir"))
        assert cache.put(params, _simulate(params)) is None
        assert cache.get(params) is None


class TestQuarantine:
    def test_undecodable_entry_is_quarantined(self, cache, params, caplog):
        cache.put(params, _simulate(params))
        path = cache.path_for(params)
        with open(path, "w") as handle:
            handle.write("{ torn write")
        with caplog.at_level("WARNING", logger="repro.experiments.cache"):
            assert cache.get(params) is None
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert any("quarantined" in rec.message for rec in caplog.records)

    def test_recompute_after_quarantine_round_trips(self, cache, params):
        cache.put(params, _simulate(params))
        path = cache.path_for(params)
        with open(path, "w") as handle:
            handle.write("{ torn write")
        assert cache.get(params) is None
        cache.put(params, _simulate(params))
        assert cache.get(params) is not None
        assert os.path.exists(path + ".corrupt")  # kept for inspection

    def test_structurally_broken_entry_is_quarantined(self, cache, params):
        cache.put(params, _simulate(params))
        path = cache.path_for(params)
        with open(path) as handle:
            document = json.load(handle)
        del document["result"]["totcom"]  # a required, non-compat field
        with open(path, "w") as handle:
            json.dump(document, handle)
        assert cache.get(params) is None
        assert os.path.exists(path + ".corrupt")

    def test_schema_mismatch_is_not_quarantined(self, cache, params):
        """Version skew is a plain miss, not corruption: the entry may
        belong to another checkout sharing the cache directory."""
        cache.put(params, _simulate(params))
        path = cache.path_for(params)
        with open(path) as handle:
            document = json.load(handle)
        document["schema"] = CACHE_SCHEMA + 1
        with open(path, "w") as handle:
            json.dump(document, handle)
        assert cache.get(params) is None
        assert os.path.exists(path)
        assert not os.path.exists(path + ".corrupt")

    def test_missing_entry_is_not_quarantined(self, cache, params):
        assert cache.get(params) is None
        assert not os.path.exists(cache.path_for(params) + ".corrupt")


class TestCompatDefaults:
    def test_entry_predating_fault_fields_still_loads(self, cache, params):
        """Entries written before the fault-metric fields existed must
        stay readable with the no-fault defaults filled in."""
        cache.put(params, _simulate(params))
        path = cache.path_for(params)
        with open(path) as handle:
            document = json.load(handle)
        for name in ("failure_aborts", "availability", "degraded_throughput"):
            del document["result"][name]
        with open(path, "w") as handle:
            json.dump(document, handle)
        restored = cache.get(params)
        assert restored is not None
        assert restored.failure_aborts == 0
        assert restored.availability == 1.0
        assert restored.degraded_throughput == 0.0
        assert not os.path.exists(path + ".corrupt")


class TestEnvironmentKnobs:
    def test_cache_enabled_honours_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_enabled() is True
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert cache_enabled() is False

    def test_default_dir_honours_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() == os.path.join("results", ".cache")
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/elsewhere")
        assert default_cache_dir() == "/tmp/elsewhere"


@pytest.fixture
def tiny_spec():
    return ExperimentSpec(
        key="tiny",
        title="tiny sweep",
        base=SimulationParameters(
            dbsize=200, ntrans=3, maxtransize=20, npros=2, tmax=80.0, seed=1
        ),
        sweeps={"npros": (1, 2), "ltot": (1, 20)},
        series_fields=("npros",),
        y_fields=("throughput",),
    )


class TestRunExperimentCaching:
    def test_cold_then_warm(self, tiny_spec, cache):
        cold = run_experiment(tiny_spec, replications=2, cache=cache)
        assert cold.stats.cache_hits == 0
        assert cold.stats.cache_misses == 8
        assert cold.stats.runs == 8

        warm = run_experiment(tiny_spec, replications=2, cache=cache)
        assert warm.stats.cache_hits == 8
        assert warm.stats.cache_misses == 0
        assert warm.stats.runs == 0
        for a, b in zip(cold.outcomes, warm.outcomes):
            assert a.as_dict() == b.as_dict()

    def test_partial_warm(self, tiny_spec, cache):
        run_experiment(tiny_spec, replications=1, cache=cache)
        # Two replications share the seed of the first via seed+0.
        again = run_experiment(tiny_spec, replications=2, cache=cache)
        assert again.stats.cache_hits == 4
        assert again.stats.runs == 4

    def test_refresh_resimulates_and_overwrites(self, tiny_spec, cache):
        run_experiment(tiny_spec, cache=cache)
        refreshed = run_experiment(tiny_spec, cache=cache, refresh=True)
        assert refreshed.stats.cache_hits == 0
        assert refreshed.stats.runs == 4
        # The refreshed entries are readable again afterwards.
        warm = run_experiment(tiny_spec, cache=cache)
        assert warm.stats.cache_hits == 4

    def test_cache_false_disables(self, tiny_spec, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default"))
        monkeypatch.setenv("REPRO_CACHE", "1")
        run_experiment(tiny_spec, cache=False)
        assert not (tmp_path / "default").exists()

    def test_default_cache_resolves_from_env(self, tiny_spec, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default"))
        monkeypatch.setenv("REPRO_CACHE", "1")
        first = run_experiment(tiny_spec)
        assert (tmp_path / "default").exists()
        second = run_experiment(tiny_spec)
        assert second.stats.cache_hits == 4
        for a, b in zip(first.outcomes, second.outcomes):
            assert a.as_dict() == b.as_dict()

    def test_progress_fires_per_config_on_warm_cache(self, tiny_spec, cache):
        run_experiment(tiny_spec, cache=cache)
        seen = []
        run_experiment(
            tiny_spec, cache=cache,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_warm_cache_pool_matches_inline(self, tiny_spec, cache):
        inline = run_experiment(tiny_spec, replications=2, cache=cache)
        pooled = run_experiment(tiny_spec, replications=2, jobs=2, cache=cache)
        assert pooled.stats.cache_hits == 8
        for a, b in zip(inline.outcomes, pooled.outcomes):
            assert a.as_dict() == b.as_dict()


class TestPerClassRoundTrip:
    """Multi-class breakdowns survive the cache; single-class entries
    keep the historical document format byte-for-byte."""

    MULTI = SimulationParameters(
        dbsize=500, ltot=20, ntrans=5, maxtransize=50, npros=4,
        tmax=200.0, seed=7,
        workload="classes", txn_classes="oltp:0.8:20,batch:0.2:200",
    )

    def test_multi_class_get_restores_breakdown(self, cache):
        result = _simulate(self.MULTI)
        assert result.per_class
        cache.put(self.MULTI, result)
        hit = cache.get(self.MULTI)
        assert hit.per_class == result.per_class
        assert hit.as_dict() == result.as_dict()

    def test_single_class_documents_have_no_per_class_key(
        self, cache, params
    ):
        result = _simulate(params)
        path = cache.put(params, result)
        with open(path) as handle:
            document = json.load(handle)
        assert "per_class" not in document["result"]
        assert cache.get(params).per_class == ()

    def test_journal_record_round_trips_per_class(self):
        from repro.experiments.cache import result_from_document

        result = _simulate(self.MULTI)
        record = {name: getattr(result, name) for name in RESULT_FIELDS}
        record["per_class"] = [dict(entry) for entry in result.per_class]
        # JSON round-trip degrades tuples to lists, like a journal read.
        record = json.loads(json.dumps(record))
        rebuilt = result_from_document(self.MULTI, record)
        assert rebuilt.per_class == result.per_class
        assert rebuilt.as_dict() == result.as_dict()
