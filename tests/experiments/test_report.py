"""Unit tests for report formatting."""

import pytest

from repro.core.parameters import SimulationParameters
from repro.experiments.config import ExperimentSpec
from repro.experiments.report import (
    ascii_plot,
    format_series_table,
    summarize_optima,
)
from repro.experiments.runner import run_experiment


@pytest.fixture(scope="module")
def result():
    spec = ExperimentSpec(
        key="tiny",
        title="tiny sweep",
        base=SimulationParameters(
            dbsize=200, ntrans=3, maxtransize=20, npros=2, tmax=80.0, seed=1
        ),
        sweeps={"npros": (1, 2), "ltot": (1, 20, 200)},
        series_fields=("npros",),
        y_fields=("throughput", "response_time"),
    )
    return run_experiment(spec)


class TestSeriesTable:
    def test_contains_header_and_all_x_values(self, result):
        table = format_series_table(result)
        assert "npros=1" in table and "npros=2" in table
        for x in ("1", "20", "200"):
            assert x in table

    def test_custom_y_field(self, result):
        table = format_series_table(result, "response_time")
        assert "response_time" in table

    def test_custom_title(self, result):
        table = format_series_table(result, title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_row_count(self, result):
        table = format_series_table(result)
        # title + rule + header + header rule + 3 x-rows
        assert len(table.splitlines()) == 7


class TestAsciiPlot:
    def test_plot_contains_markers_and_legend(self, result):
        plot = ascii_plot(result)
        assert "o npros=1" in plot
        assert "x npros=2" in plot
        assert "log x" in plot

    def test_plot_handles_empty(self, result):
        from repro.experiments.runner import ExperimentResult

        empty = ExperimentResult(result.spec, [])
        assert ascii_plot(empty) == "(no data)"


class TestOptima:
    def test_one_line_per_series(self, result):
        text = summarize_optima(result)
        lines = text.splitlines()
        assert len(lines) == 2
        assert all("max at ltot=" in line for line in lines)

    def test_minimize_mode(self, result):
        text = summarize_optima(result, "response_time", maximize=False)
        assert "min at ltot=" in text


class TestAcceleratorNote:
    def test_empty_for_plain_sweeps(self):
        from repro.experiments.report import accelerator_note
        from repro.experiments.runner import SweepStats

        assert accelerator_note(SweepStats(configs=4, runs=4)) == ""

    def test_reports_pruned_cells_and_estimate(self):
        from repro.experiments.report import accelerator_note
        from repro.experiments.runner import ConfigStats, SweepStats

        stats = SweepStats(
            configs=10,
            replications=1,
            runs=6,
            cache_misses=6,
            analytic_cells=4,
            accelerator="analytic",
            per_config=[
                ConfigStats(index=i, label="c{}".format(i), runs=1,
                            seconds=0.5)
                for i in range(6)
            ],
        )
        note = accelerator_note(stats)
        assert "analytic" in note
        assert "4 of 10" in note
        assert "2.0s" in note
        assert stats.pruned_fraction == pytest.approx(0.4)
        assert "4 analytic (40% pruned)" in stats.summary()


class TestPerClassRendering:
    """Per-class columns surface in tables/CSVs only when present."""

    @pytest.fixture(scope="class")
    def class_result(self):
        spec = ExperimentSpec(
            key="tiny-classes",
            title="tiny multi-class sweep",
            base=SimulationParameters(
                dbsize=500, ntrans=5, maxtransize=50, npros=2,
                tmax=80.0, seed=1,
                workload="classes",
                txn_classes="oltp:0.8:20,batch:0.2:200",
            ),
            sweeps={"ltot": (10, 100)},
            series_fields=(),
            y_fields=("throughput", "throughput__oltp",
                      "throughput__batch"),
        )
        return run_experiment(spec, cache=False)

    def test_series_table_renders_suffixed_fields(self, class_result):
        table = format_series_table(class_result, "throughput__oltp")
        assert "throughput__oltp" in table
        assert "10" in table and "100" in table

    def test_summarize_optima_on_class_field(self, class_result):
        lines = summarize_optima(class_result, "throughput__batch")
        assert "throughput__batch" in lines

    def test_rows_carry_class_columns(self, class_result):
        rows = class_result.rows()
        assert all("throughput__oltp" in row for row in rows)

    def test_csv_round_trip_with_class_columns(self, class_result,
                                               tmp_path):
        from repro.experiments.storage import load_rows_csv, save_rows_csv

        path = save_rows_csv(class_result.rows(), tmp_path / "classes.csv")
        rows = load_rows_csv(path)
        assert rows[0]["txn_classes"] == "oltp:0.8:20,batch:0.2:200"
        assert isinstance(rows[0]["throughput__batch"], float)

    def test_legacy_single_class_rows_unchanged(self, result, tmp_path):
        from repro.experiments.storage import load_rows_csv, save_rows_csv

        rows = result.rows()
        assert not [key for row in rows for key in row if "__" in key]
        assert all("txn_classes" not in row for row in rows)
        loaded = load_rows_csv(
            save_rows_csv(rows, tmp_path / "legacy.csv")
        )
        assert sorted(loaded[0]) == sorted(rows[0])
