"""Tests for the parameter sensitivity analysis."""

import pytest

from repro.core.parameters import SimulationParameters
from repro.experiments.sensitivity import (
    Sensitivity,
    analyze_sensitivity,
    format_sensitivities,
)


@pytest.fixture(scope="module")
def results():
    params = SimulationParameters(
        dbsize=500, ltot=20, ntrans=6, maxtransize=50, npros=4,
        tmax=200.0, seed=3,
    )
    return analyze_sensitivity(params, replications=1)


class TestAnalysis:
    def test_covers_requested_parameters(self, results):
        for name in ("iotime", "npros", "ltot", "liotime"):
            assert name in results

    def test_io_time_hurts_throughput(self, results):
        # The system is I/O bound: more per-entity I/O time means
        # proportionally less throughput (elasticity near -1).
        assert results["iotime"].elasticity < -0.5

    def test_processors_help_throughput(self, results):
        assert results["npros"].elasticity > 0.3

    def test_transaction_size_hurts_throughput(self, results):
        assert results["maxtransize"].elasticity < -0.5

    def test_cpu_time_barely_matters(self, results):
        # CPU is far from the bottleneck in Table 1 settings.
        assert abs(results["cputime"].elasticity) < abs(
            results["iotime"].elasticity
        )

    def test_lock_cpu_cost_is_minor_at_good_granularity(self, results):
        assert abs(results["lcputime"].elasticity) < 0.3

    def test_record_shape(self, results):
        item = results["iotime"]
        assert isinstance(item, Sensitivity)
        assert item.low_value < item.high_value
        assert item.baseline_output > 0

    def test_delta_validation(self):
        params = SimulationParameters(tmax=50.0)
        with pytest.raises(ValueError):
            analyze_sensitivity(params, delta=0.0)
        with pytest.raises(ValueError):
            analyze_sensitivity(params, delta=1.0)

    def test_custom_output_field(self):
        params = SimulationParameters(
            dbsize=300, ltot=10, ntrans=4, maxtransize=30, npros=2,
            tmax=100.0, seed=3,
        )
        results = analyze_sensitivity(
            params, parameters=("iotime",), output="response_time",
            replications=1,
        )
        # More I/O time per entity → longer responses.
        assert results["iotime"].elasticity > 0.3


class TestFormatting:
    def test_table_sorted_by_magnitude(self, results):
        text = format_sensitivities(results)
        lines = text.splitlines()
        assert "parameter" in lines[0]
        magnitudes = []
        for line in lines[1:]:
            magnitudes.append(abs(float(line.split()[-1])))
        assert magnitudes == sorted(magnitudes, reverse=True)
