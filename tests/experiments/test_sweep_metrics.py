"""Sweep-level metrics: worker snapshot merging, progress gauges,
snapshot files, and the manifest ``metrics`` block.

The contract under test: passing ``metrics=`` to the runner is purely
observational — numbers flow *out* (merged worker snapshots, progress
gauges, snapshot files, manifest summaries) while the simulated
results stay identical to an un-instrumented sweep.
"""

import json

import pytest

from repro.core.parameters import SimulationParameters
from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import run_experiment
from repro.obs.exporters import read_snapshot
from repro.obs.manifest import MANIFEST_SCHEMA, load_manifest, write_manifest
from repro.obs.metrics import MetricsRegistry, summarize_snapshot


@pytest.fixture
def tiny_spec():
    return ExperimentSpec(
        key="tiny-metrics",
        title="tiny metrics sweep",
        base=SimulationParameters(
            dbsize=200, ntrans=3, maxtransize=20, npros=2, tmax=80.0, seed=1
        ),
        sweeps={"ltot": (1, 20)},
        y_fields=("throughput",),
    )


def test_sweep_merges_worker_snapshots_and_tracks_progress(tiny_spec):
    registry = MetricsRegistry()
    result = run_experiment(tiny_spec, cache=False, metrics=registry)
    flat = summarize_snapshot(registry.snapshot())

    commits = flat["counters"]["repro_txn_commits_total"]
    assert commits == sum(
        run.totcom for outcome in result.outcomes for run in outcome.results
    )
    assert flat["counters"]["repro_sweep_cells_total{source=run}"] == 2
    assert flat["gauges"]["repro_sweep_cells_done"] == 2
    assert flat["gauges"]["repro_sweep_cells_pending"] == 0
    assert flat["gauges"]["repro_sweep_queue_depth"] == 0
    assert flat["gauges"]["repro_sweep_workers"] >= 1
    assert 0.0 < flat["gauges"]["repro_sweep_occupancy"] <= 1.0
    # Kernel counters rode along in the worker snapshots.
    assert flat["counters"]["repro_kernel_events_total"] > 0


def test_sweep_results_identical_with_and_without_metrics(tiny_spec):
    plain = run_experiment(tiny_spec, cache=False)
    instrumented = run_experiment(
        tiny_spec, cache=False, metrics=MetricsRegistry()
    )
    assert [
        [run.as_dict() for run in outcome.results]
        for outcome in plain.outcomes
    ] == [
        [run.as_dict() for run in outcome.results]
        for outcome in instrumented.outcomes
    ]


def test_pooled_sweep_also_collects(tiny_spec):
    registry = MetricsRegistry()
    run_experiment(tiny_spec, cache=False, jobs=2, metrics=registry)
    flat = summarize_snapshot(registry.snapshot())
    assert flat["counters"]["repro_txn_commits_total"] > 0
    assert flat["gauges"]["repro_sweep_cells_done"] == 2


def test_cache_hits_count_without_double_merging(tiny_spec, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    run_experiment(tiny_spec, cache=cache)
    registry = MetricsRegistry()
    run_experiment(tiny_spec, cache=cache, metrics=registry)
    flat = summarize_snapshot(registry.snapshot())
    assert flat["counters"]["repro_sweep_cache_hits_total"] == 2
    # Hits answer from disk: no simulation ran, so no commits merged.
    assert flat["counters"].get("repro_txn_commits_total", 0) == 0


def test_snapshot_file_written_next_to_journal(tiny_spec, tmp_path):
    journal = str(tmp_path / "sweep.journal")
    snapshot = journal + ".metrics.json"
    registry = MetricsRegistry()
    run_experiment(
        tiny_spec, cache=False, journal=journal,
        metrics=registry, metrics_snapshot=snapshot,
    )
    document = read_snapshot(snapshot)
    assert document is not None
    flat = summarize_snapshot(document["metrics"])
    assert flat["gauges"]["repro_sweep_cells_done"] == 2
    assert flat["gauges"]["repro_sweep_journal_lag_cells"] == 0
    assert flat["counters"]["repro_txn_commits_total"] > 0


def test_manifests_gain_a_metrics_block(tiny_spec, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    run_experiment(tiny_spec, cache=cache, metrics=MetricsRegistry())
    manifest = cache.get_manifest(
        tiny_spec.base.replace(ltot=1)
    )
    assert manifest is not None
    assert manifest["schema"] == MANIFEST_SCHEMA == 2
    block = manifest["metrics"]
    assert block["counters"]["repro_txn_commits_total"] > 0
    assert any(
        name.startswith("repro_txn_response_time")
        for name in block["histograms"]
    )


def test_uninstrumented_manifests_stay_schema_compatible(tiny_spec, tmp_path):
    # Without metrics the manifest must not carry an (empty) block...
    cache = ResultCache(str(tmp_path / "cache"))
    run_experiment(tiny_spec, cache=cache)
    manifest = cache.get_manifest(tiny_spec.base.replace(ltot=1))
    assert manifest is not None
    assert "metrics" not in manifest

    # ...and pre-metrics schema-1 manifests still load.
    old = dict(manifest, schema=1)
    path = str(tmp_path / "old.manifest")
    write_manifest(path, old)
    assert load_manifest(path)["schema"] == 1
    # Unknown future schemas are rejected, not misread.
    write_manifest(path, dict(manifest, schema=99))
    assert load_manifest(path) is None


def test_run_report_json_matches_snapshot_format(tiny_spec, tmp_path):
    """The snapshot document is stable JSON an external tool can diff."""
    journal = str(tmp_path / "s.journal")
    snapshot = journal + ".metrics.json"
    run_experiment(
        tiny_spec, cache=False, journal=journal,
        metrics=MetricsRegistry(), metrics_snapshot=snapshot,
    )
    with open(snapshot) as handle:
        document = json.load(handle)
    assert document["schema"] == 1
    assert set(document) >= {"schema", "generated_unixtime", "metrics"}
    # Round-trips through JSON without loss.
    assert json.loads(json.dumps(document)) == document
