"""End-to-end crash safety: SIGINT mid-sweep, then resume.

Launches a real child process running a journalled multi-replication
sweep, interrupts it with SIGINT once the journal shows progress, and
verifies that (a) the interrupted run exits 130 leaving a valid,
loadable journal, and (b) a ``resume`` run completes the sweep with
aggregates bit-identical to an uninterrupted run on a fresh cache.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.journal import SweepJournal

#: Sweep driver executed in the child process.  The horizon is chosen
#: so each of the 4 cells takes on the order of a second: long enough
#: to interrupt reliably, short enough for the suite.
DRIVER = """
import json
import sys

from repro.core.parameters import SimulationParameters
from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import run_experiment

cache_dir, journal_path, out_path, resume = sys.argv[1:5]
spec = ExperimentSpec(
    key="chaos",
    title="chaos sweep",
    base=SimulationParameters(tmax=8000.0, seed=3),
    sweeps={"ltot": (10, 100)},
)
try:
    result = run_experiment(
        spec,
        replications=2,
        cache=ResultCache(cache_dir),
        journal=journal_path,
        resume=resume == "1",
        watchdog=300.0,
        drain_signals=True,
    )
except KeyboardInterrupt:
    sys.exit(130)
with open(out_path, "w") as handle:
    json.dump(
        {"rows": result.rows(), "resumed": result.stats.resumed},
        handle,
        sort_keys=True,
    )
sys.exit(0)
"""


def _spawn(tmp_path, cache_dir, journal, out, resume):
    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    env["REPRO_CACHE"] = "1"
    return subprocess.Popen(
        [
            sys.executable, "-c", DRIVER,
            str(cache_dir), str(journal), str(out), resume,
        ],
        env=env,
        cwd=str(tmp_path),
    )


def _wait_for_progress(journal, timeout=60.0):
    """Block until the journal records at least one completed cell."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(journal) as handle:
                if sum('"done"' in line for line in handle) >= 1:
                    return
        except OSError:
            pass
        time.sleep(0.05)
    raise AssertionError("sweep never recorded progress")


@pytest.mark.slow
def test_sigint_leaves_valid_journal_and_resume_is_bit_identical(tmp_path):
    cache_dir = tmp_path / "cache"
    journal = tmp_path / "chaos.journal"
    out = tmp_path / "resumed.json"

    # Interrupt a running sweep once it has journalled progress.
    proc = _spawn(tmp_path, cache_dir, journal, out, resume="0")
    try:
        _wait_for_progress(journal)
        proc.send_signal(signal.SIGINT)
        returncode = proc.wait(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert returncode == 130
    assert not out.exists()

    # The journal must be a valid prefix: a parsable header, at least
    # one completed cell, and no clean-completion marker.
    header = json.loads(journal.read_text().splitlines()[0])
    done = SweepJournal(journal).load(header["sweep"])
    assert 1 <= len(done) < header["cells"] == 4
    assert not SweepJournal(journal).finished(header["sweep"])

    # Resume: must finish cleanly, crediting the journalled cells.
    proc = _spawn(tmp_path, cache_dir, journal, out, resume="1")
    assert proc.wait(timeout=300) == 0
    resumed = json.loads(out.read_text())
    assert resumed["resumed"] == len(done)
    assert SweepJournal(journal).finished(header["sweep"])

    # Control: the same sweep uninterrupted on a fresh cache.
    clean_out = tmp_path / "clean.json"
    proc = _spawn(
        tmp_path, tmp_path / "clean-cache", tmp_path / "clean.journal",
        clean_out, resume="0",
    )
    assert proc.wait(timeout=300) == 0
    clean = json.loads(clean_out.read_text())

    assert resumed["rows"] == clean["rows"]
