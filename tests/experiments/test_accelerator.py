"""Tests for the analytic sweep accelerator (planning + runner wiring)."""

import json
import math

import pytest

from repro.analytic.mva import predict_grid
from repro.core.parameters import SimulationParameters
from repro.experiments.accelerator import AcceleratorPlan, plan_sweep
from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import run_experiment


@pytest.fixture
def accel_spec():
    """One 8-point curve, cheap enough to simulate in the suite."""
    return ExperimentSpec(
        key="accel-tiny",
        title="accelerator tiny sweep",
        base=SimulationParameters(
            dbsize=500, ntrans=6, maxtransize=50, npros=4, tmax=150.0,
            seed=3,
        ),
        sweeps={"ltot": (2, 5, 10, 20, 50, 100, 200, 500)},
        y_fields=("throughput",),
    )


class TestPlanSweep:
    def test_partition_is_exhaustive_and_disjoint(self, accel_spec):
        configs = accel_spec.configurations()
        plan = plan_sweep(accel_spec, configs, predict_grid(configs))
        assert plan.simulate | plan.pruned == set(range(len(configs)))
        assert not plan.simulate & plan.pruned
        assert plan.total == len(configs)

    def test_prunes_something_on_a_long_curve(self, accel_spec):
        configs = accel_spec.configurations()
        plan = plan_sweep(accel_spec, configs, predict_grid(configs))
        assert plan.pruned
        assert plan.simulated_fraction < 1.0

    def test_endpoints_always_simulated(self, accel_spec):
        configs = accel_spec.configurations()
        plan = plan_sweep(accel_spec, configs, predict_grid(configs))
        ltots = [c.ltot for c in configs]
        assert ltots.index(min(ltots)) in plan.simulate
        assert ltots.index(max(ltots)) in plan.simulate

    def test_predicted_optimum_and_neighbours_simulated(self, accel_spec):
        configs = accel_spec.configurations()
        predictions = predict_grid(configs)
        plan = plan_sweep(accel_spec, configs, predictions)
        values = [p.throughput for p in predictions]
        best = values.index(max(values))
        for index in (best - 1, best, best + 1):
            if 0 <= index < len(configs):
                assert index in plan.simulate

    def test_deterministic(self, accel_spec):
        configs = accel_spec.configurations()
        predictions = predict_grid(configs)
        first = plan_sweep(accel_spec, configs, predictions)
        second = plan_sweep(accel_spec, configs, predictions)
        assert first.simulate == second.simulate
        assert first.pruned == second.pruned

    def test_short_curves_simulated_outright(self, accel_spec):
        short = accel_spec.scaled(ltot_grid=(10, 100, 500))
        configs = short.configurations()
        plan = plan_sweep(short, configs, predict_grid(configs))
        assert not plan.pruned
        assert plan.simulated_fraction == 1.0

    def test_uncertain_cells_are_simulated(self, accel_spec):
        # ltot=1 predictions sit on the serialization ceiling and carry
        # uncertainty 1.0, so they must be simulated even mid-curve.
        spec = accel_spec.scaled(ltot_grid=(1, 2, 5, 10, 20, 50, 100, 500))
        configs = spec.configurations()
        predictions = predict_grid(configs)
        plan = plan_sweep(spec, configs, predictions)
        for index, prediction in enumerate(predictions):
            if prediction.uncertainty >= 0.5:
                assert index in plan.simulate

    def test_misaligned_predictions_rejected(self, accel_spec):
        configs = accel_spec.configurations()
        with pytest.raises(ValueError):
            plan_sweep(accel_spec, configs, predict_grid(configs[:-1]))

    def test_prediction_for_pruned_index(self, accel_spec):
        configs = accel_spec.configurations()
        predictions = predict_grid(configs)
        plan = plan_sweep(accel_spec, configs, predictions)
        for index in plan.pruned:
            assert plan.prediction_for(index) is predictions[index]

    def test_fraction_of_empty_plan(self):
        assert AcceleratorPlan((), (), []).simulated_fraction == 0.0


class TestRunnerIntegration:
    def test_unknown_accelerator_rejected(self, accel_spec):
        with pytest.raises(ValueError):
            run_experiment(accel_spec, cache=False, accelerator="quantum")

    def test_accelerated_sweep_fills_every_cell(self, accel_spec):
        result = run_experiment(
            accel_spec, cache=False, accelerator="analytic"
        )
        assert len(result.outcomes) == len(accel_spec.configurations())
        for outcome in result.outcomes:
            assert outcome.mean("throughput") > 0

    def test_stats_count_analytic_cells(self, accel_spec):
        configs = accel_spec.configurations()
        plan = plan_sweep(accel_spec, configs, predict_grid(configs))
        result = run_experiment(
            accel_spec, cache=False, accelerator="analytic"
        )
        stats = result.stats
        assert stats.accelerator == "analytic"
        assert stats.analytic_cells == len(plan.pruned) > 0
        assert stats.runs == len(plan.simulate)
        assert stats.pruned_fraction == pytest.approx(
            len(plan.pruned) / len(configs)
        )
        assert "analytic" in stats.summary()

    def test_pruned_cells_carry_provenance(self, accel_spec):
        result = run_experiment(
            accel_spec, cache=False, accelerator="analytic"
        )
        rows = result.rows()
        analytic = [r for r in rows if r.get("provenance") == "analytic"]
        assert len(analytic) == result.stats.analytic_cells
        for row in analytic:
            assert math.isnan(row["deadlock_aborts"])

    def test_simulated_cells_match_unaccelerated_run(self, accel_spec):
        accelerated = run_experiment(
            accel_spec, cache=False, accelerator="analytic"
        )
        plain = run_experiment(accel_spec, cache=False)
        configs = accel_spec.configurations()
        plan = plan_sweep(
            accel_spec, configs, predict_grid(configs)
        )
        for index in plan.simulate:
            assert accelerated.outcomes[index].mean("throughput") == (
                plain.outcomes[index].mean("throughput")
            )

    def test_analytic_cells_never_enter_the_cache(self, accel_spec, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = run_experiment(
            accel_spec, cache=cache, accelerator="analytic"
        )
        assert result.stats.analytic_cells > 0
        assert len(cache) == result.stats.runs

    def test_cache_hits_not_confused_with_analytic(self, accel_spec, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_experiment(accel_spec, cache=cache, accelerator="analytic")
        again = run_experiment(
            accel_spec, cache=cache, accelerator="analytic"
        )
        assert again.stats.cache_hits == len(cache)
        assert again.stats.runs == 0
        assert again.stats.analytic_cells > 0

    def test_journal_records_analytic_provenance(self, accel_spec, tmp_path):
        journal_path = tmp_path / "accel.journal"
        result = run_experiment(
            accel_spec,
            cache=ResultCache(tmp_path / "cache"),
            journal=str(journal_path),
            accelerator="analytic",
        )
        entries = [
            json.loads(line)
            for line in journal_path.read_text().splitlines()
            if line.strip()
        ]
        analytic = [
            e for e in entries if e.get("provenance") == "analytic"
        ]
        assert len(analytic) == result.stats.analytic_cells
        for entry in analytic:
            assert "done" in entry

    def test_default_path_untouched(self, accel_spec):
        result = run_experiment(accel_spec, cache=False)
        assert result.stats.accelerator is None
        assert result.stats.analytic_cells == 0
        assert result.stats.pruned_fraction == 0.0
        assert "analytic" not in result.stats.summary()
        assert all(
            "provenance" not in row for row in result.rows()
        )
