"""Unit tests for result persistence."""

import pytest

from repro.experiments.storage import (
    load_rows_csv,
    load_rows_json,
    save_rows_csv,
    save_rows_json,
)


@pytest.fixture
def rows():
    return [
        {"ltot": 1, "throughput": 0.5, "placement": "best"},
        {"ltot": 100, "throughput": 0.75, "placement": "best"},
    ]


class TestCSV:
    def test_round_trip(self, tmp_path, rows):
        path = tmp_path / "rows.csv"
        save_rows_csv(rows, path)
        loaded = load_rows_csv(path)
        assert loaded == rows

    def test_numbers_parsed_back(self, tmp_path, rows):
        path = tmp_path / "rows.csv"
        save_rows_csv(rows, path)
        loaded = load_rows_csv(path)
        assert isinstance(loaded[0]["ltot"], int)
        assert isinstance(loaded[0]["throughput"], float)
        assert isinstance(loaded[0]["placement"], str)

    def test_union_of_keys(self, tmp_path):
        path = tmp_path / "rows.csv"
        save_rows_csv([{"a": 1}, {"b": 2}], path)
        loaded = load_rows_csv(path)
        assert loaded[0]["a"] == 1 and loaded[0]["b"] is None
        assert loaded[1]["b"] == 2 and loaded[1]["a"] is None

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_rows_csv([], tmp_path / "rows.csv")


class TestJSON:
    def test_round_trip_with_metadata(self, tmp_path, rows):
        path = tmp_path / "rows.json"
        save_rows_json(rows, path, metadata={"exhibit": "fig2"})
        document = load_rows_json(path)
        assert document["rows"] == rows
        assert document["metadata"] == {"exhibit": "fig2"}

    def test_no_metadata(self, tmp_path, rows):
        path = tmp_path / "rows.json"
        save_rows_json(rows, path)
        document = load_rows_json(path)
        assert "metadata" not in document

    def test_non_json_values_stringified(self, tmp_path):
        path = tmp_path / "rows.json"
        save_rows_json([{"value": complex(1, 2)}], path)
        document = load_rows_json(path)
        assert isinstance(document["rows"][0]["value"], str)
