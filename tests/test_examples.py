"""Smoke tests for the examples directory."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_EXAMPLES = {
    "quickstart.py",
    "granularity_tuning.py",
    "banking_workload.py",
    "lock_manager_demo.py",
    "capacity_planning.py",
    "output_analysis.py",
    "open_system.py",
}


def test_expected_examples_exist():
    present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert EXPECTED_EXAMPLES <= present


@pytest.mark.parametrize("name", sorted(EXPECTED_EXAMPLES))
def test_examples_compile(name):
    py_compile.compile(str(EXAMPLES_DIR / name), doraise=True)


@pytest.mark.parametrize("name", sorted(EXPECTED_EXAMPLES))
def test_examples_have_docstrings_and_main(name):
    source = (EXAMPLES_DIR / name).read_text()
    assert source.lstrip().startswith('"""'), name
    assert '__name__ == "__main__"' in source, name
    assert "def main(" in source, name


def test_lock_manager_demo_runs_clean():
    # The one example with no long simulation inside.
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "lock_manager_demo.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert "cycle detected" in completed.stdout
    assert "Multi-granularity" in completed.stdout
