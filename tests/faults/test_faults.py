"""Model-level fault injection tests.

Two families of guarantees:

* **Bit-identity when disabled** — no plan, an empty plan, or the
  explicit default backoff must all reproduce the untouched model's
  golden outputs exactly, and the cache address of the golden run must
  not move (faults live outside :class:`SimulationParameters`).
* **Determinism when enabled** — the same (plan, seed) pair yields
  identical faulted results on every run, and the fault machinery
  actually does what it says (crashes lower availability, abort/retry
  events appear in the trace, node targeting is honoured).
"""

import dataclasses

import pytest

from repro.core.model import LockingGranularityModel, simulate
from repro.core.parameters import SimulationParameters
from repro.des.trace import Trace
from repro.experiments.cache import cache_key
from repro.faults import (
    CrashSpec,
    ExponentialBackoff,
    FaultInjector,
    FaultPlan,
    FixedUniformBackoff,
    LinkDelaySpec,
    PartitionSpec,
    SlowdownSpec,
    StallSpec,
)

#: Content address of the golden run, pinned before fault injection
#: existed.  If this moves, every previously cached result is
#: silently orphaned — treat a failure here as a release blocker.
GOLDEN_CACHE_KEY = (
    "21f26040f12c1722f7aa38d13db8e7b8db325ec74d44430f4d9387f693e66e5f"
)

CRASHY = FaultPlan(crashes=(CrashSpec(mttf=30.0, mttr=10.0),))


def _dict(result):
    return result.as_dict(include_params=False)


class TestDisabledPlanBitIdentity:
    def test_golden_cache_key_is_unchanged(self, fast_params):
        assert cache_key(fast_params) == GOLDEN_CACHE_KEY

    def test_no_plan_equals_baseline(self, fast_params):
        baseline = simulate(fast_params)
        assert baseline.totcom == 129  # the pre-fault golden value
        assert _dict(simulate(fast_params, fault_plan=None)) == _dict(baseline)

    def test_empty_plan_equals_baseline(self, fast_params):
        baseline = simulate(fast_params)
        faultless = simulate(fast_params, fault_plan=FaultPlan())
        assert _dict(faultless) == _dict(baseline)

    def test_explicit_default_backoff_equals_baseline(self, fast_params):
        baseline = simulate(fast_params)
        explicit = simulate(fast_params, backoff=FixedUniformBackoff())
        assert _dict(explicit) == _dict(baseline)

    def test_unfaulted_fault_metrics_are_inert(self, fast_params):
        result = simulate(fast_params)
        assert result.failure_aborts == 0
        assert result.availability == 1.0
        assert result.degraded_throughput == 0.0

    @pytest.mark.parametrize(
        "changes",
        [
            {"conflict_engine": "explicit"},
            {"conflict_engine": "explicit", "protocol": "incremental"},
            {"conflict_engine": "hierarchical"},
        ],
    )
    def test_variants_unaffected_by_seam(self, fast_params, changes):
        params = fast_params.replace(**changes)
        baseline = simulate(params)
        explicit = simulate(params, backoff=FixedUniformBackoff())
        assert _dict(explicit) == _dict(baseline)


class TestFaultedRuns:
    def test_crashes_are_observable(self, fast_params):
        result = simulate(fast_params, fault_plan=CRASHY)
        assert result.availability < 1.0
        assert result.availability > 0.0
        assert result.failure_aborts > 0
        assert result.totcom > 0  # degraded, not dead

    def test_same_plan_and_seed_is_bit_identical(self, fast_params):
        first = simulate(fast_params, fault_plan=CRASHY)
        second = simulate(fast_params, fault_plan=CRASHY)
        assert _dict(first) == _dict(second)

    def test_plan_seed_changes_fault_schedule(self, fast_params):
        base = simulate(fast_params, fault_plan=CRASHY)
        reseeded = simulate(
            fast_params,
            fault_plan=FaultPlan(crashes=CRASHY.crashes, seed=99),
        )
        assert _dict(base) != _dict(reseeded)

    def test_faults_alter_results(self, fast_params):
        baseline = simulate(fast_params)
        faulted = simulate(fast_params, fault_plan=CRASHY)
        assert _dict(faulted) != _dict(baseline)

    def test_backoff_policy_changes_faulted_run(self, fast_params):
        default = simulate(fast_params, fault_plan=CRASHY)
        exponential = simulate(
            fast_params, fault_plan=CRASHY, backoff=ExponentialBackoff()
        )
        assert _dict(exponential) != _dict(default)
        # ... deterministically.
        again = simulate(
            fast_params, fault_plan=CRASHY, backoff=ExponentialBackoff()
        )
        assert _dict(again) == _dict(exponential)

    @pytest.mark.parametrize(
        "changes",
        [
            {"conflict_engine": "explicit"},
            {"conflict_engine": "explicit", "protocol": "incremental"},
            {"conflict_engine": "hierarchical"},
        ],
    )
    def test_faulted_variants_reproducible(self, fast_params, changes):
        params = fast_params.replace(**changes)
        first = simulate(params, fault_plan=CRASHY)
        second = simulate(params, fault_plan=CRASHY)
        assert _dict(first) == _dict(second)

    def test_disk_slowdown_plan_runs_and_reproduces(self, fast_params):
        plan = FaultPlan(
            disk_slowdowns=(SlowdownSpec(mtbf=20.0, duration=10.0, factor=3.0),)
        )
        first = simulate(fast_params, fault_plan=plan)
        second = simulate(fast_params, fault_plan=plan)
        assert _dict(first) == _dict(second)
        assert first.availability == 1.0  # slow disks are not crashes
        assert _dict(first) != _dict(simulate(fast_params))

    def test_lock_stall_plan_runs_and_reproduces(self, fast_params):
        plan = FaultPlan(
            lock_stalls=(StallSpec(mtbf=20.0, duration=10.0, factor=4.0),)
        )
        first = simulate(fast_params, fault_plan=plan)
        second = simulate(fast_params, fault_plan=plan)
        assert _dict(first) == _dict(second)
        assert _dict(first) != _dict(simulate(fast_params))


class TestTraceEvents:
    def _run_traced(self, params, plan):
        trace = Trace()
        LockingGranularityModel(params, trace=trace, fault_plan=plan).run()
        return trace

    def test_crash_cycle_events(self, fast_params):
        trace = self._run_traced(fast_params, CRASHY)
        kinds = {record.kind for record in trace}
        assert "proc_crash" in kinds
        assert "proc_recover" in kinds
        assert "sub_fail" in kinds
        assert "retry" in kinds

    def test_crash_events_carry_node_and_kill_count(self, fast_params):
        trace = self._run_traced(fast_params, CRASHY)
        crashes = list(trace.records(kind="proc_crash"))
        assert crashes
        for record in crashes:
            assert 0 <= record.details["node"] < fast_params.npros
            assert record.details["jobs_killed"] >= 0

    def test_node_targeting_is_honoured(self, fast_params):
        plan = FaultPlan(
            crashes=(CrashSpec(mttf=30.0, mttr=10.0, processors=(1,)),)
        )
        trace = self._run_traced(fast_params, plan)
        crashes = list(trace.records(kind="proc_crash"))
        assert crashes
        assert {record.details["node"] for record in crashes} == {1}

    def test_slowdown_and_stall_events(self, fast_params):
        plan = FaultPlan(
            disk_slowdowns=(SlowdownSpec(mtbf=20.0, duration=10.0),),
            lock_stalls=(StallSpec(mtbf=20.0, duration=10.0),),
        )
        trace = self._run_traced(fast_params, plan)
        kinds = {record.kind for record in trace}
        assert "disk_slow" in kinds
        assert "disk_recover" in kinds
        assert "lockmgr_stall" in kinds
        assert "lockmgr_resume" in kinds


class TestInjectorAccounting:
    def test_counters_track_trace(self, fast_params):
        trace = Trace()
        model = LockingGranularityModel(
            fast_params, trace=trace, fault_plan=CRASHY
        )
        model.run()
        injector = model._injector
        assert isinstance(injector, FaultInjector)
        assert injector.crashes_injected == len(
            list(trace.records(kind="proc_crash"))
        )
        assert injector.jobs_killed >= 0

    def test_out_of_range_targets_are_ignored(self, fast_params):
        plan = FaultPlan(
            crashes=(CrashSpec(mttf=30.0, mttr=10.0, processors=(97,)),)
        )
        result = simulate(fast_params, fault_plan=plan)
        assert result.availability == 1.0
        assert result.failure_aborts == 0


class TestPartitionFaultTimes:
    """Distributed fault sources obey the same determinism contract."""

    CUT = FaultPlan(
        partitions=(PartitionSpec(mtbf=30.0, duration=10.0),),
        link_delays=(LinkDelaySpec(mtbf=50.0, duration=5.0, extra=0.4),),
    )

    def _fault_times(self, plan, seed=7):
        trace = Trace()
        params = SimulationParameters(
            dbsize=500, ltot=20, ntrans=5, maxtransize=50, npros=4,
            tmax=200.0, seed=seed, nnodes=3, net_latency=0.05,
            commit_protocol="primary-copy",
        )
        LockingGranularityModel(params, trace=trace, fault_plan=plan).run()
        return [
            (record.time, record.kind)
            for record in trace
            if record.kind in ("partition", "heal", "link_delay")
        ]

    def test_same_plan_and_seed_gives_identical_fault_times(self):
        times = self._fault_times(self.CUT)
        assert times  # the plan actually fired within the horizon
        assert times == self._fault_times(self.CUT)

    def test_plan_seed_moves_the_schedule(self):
        reseeded = dataclasses.replace(self.CUT, seed=99)
        assert self._fault_times(self.CUT) != self._fault_times(reseeded)

    def test_single_node_skips_partition_specs(self, fast_params):
        result = simulate(fast_params, fault_plan=self.CUT)
        baseline = simulate(fast_params)
        assert result.as_dict() == baseline.as_dict()
