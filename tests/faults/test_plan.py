"""Unit tests for declarative fault plans."""

import dataclasses

import pytest

from repro.faults.plan import CrashSpec, FaultPlan, SlowdownSpec, StallSpec


class TestCrashSpec:
    def test_validates_rates(self):
        with pytest.raises(ValueError):
            CrashSpec(mttf=0.0, mttr=1.0)
        with pytest.raises(ValueError):
            CrashSpec(mttf=1.0, mttr=-1.0)

    def test_processors_coerced_to_tuple(self):
        spec = CrashSpec(mttf=10.0, mttr=1.0, processors=[0, 2])
        assert spec.processors == (0, 2)

    def test_frozen(self):
        spec = CrashSpec(mttf=10.0, mttr=1.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.mttf = 5.0


class TestSlowdownSpec:
    def test_validates_timing_and_factor(self):
        with pytest.raises(ValueError):
            SlowdownSpec(mtbf=0.0, duration=1.0)
        with pytest.raises(ValueError):
            SlowdownSpec(mtbf=1.0, duration=0.0)
        with pytest.raises(ValueError):
            SlowdownSpec(mtbf=1.0, duration=1.0, factor=0.0)

    def test_processors_coerced_to_tuple(self):
        spec = SlowdownSpec(mtbf=5.0, duration=1.0, processors=[1])
        assert spec.processors == (1,)


class TestStallSpec:
    def test_validates_timing_and_factor(self):
        with pytest.raises(ValueError):
            StallSpec(mtbf=0.0, duration=1.0)
        with pytest.raises(ValueError):
            StallSpec(mtbf=1.0, duration=1.0, factor=-2.0)


class TestFaultPlan:
    def test_empty_plan_is_inert(self):
        assert FaultPlan().enabled() is False

    def test_any_source_enables(self):
        crash = CrashSpec(mttf=10.0, mttr=1.0)
        slow = SlowdownSpec(mtbf=5.0, duration=1.0)
        stall = StallSpec(mtbf=5.0, duration=1.0)
        assert FaultPlan(crashes=(crash,)).enabled()
        assert FaultPlan(disk_slowdowns=(slow,)).enabled()
        assert FaultPlan(lock_stalls=(stall,)).enabled()

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(crashes=[CrashSpec(mttf=10.0, mttr=1.0)])
        assert isinstance(plan.crashes, tuple)
        assert isinstance(plan.disk_slowdowns, tuple)
        assert isinstance(plan.lock_stalls, tuple)

    def test_plan_is_hashable(self):
        plan = FaultPlan(crashes=(CrashSpec(mttf=10.0, mttr=1.0),), seed=3)
        assert plan == FaultPlan(
            crashes=(CrashSpec(mttf=10.0, mttr=1.0),), seed=3
        )
        assert hash(plan) == hash(
            FaultPlan(crashes=(CrashSpec(mttf=10.0, mttr=1.0),), seed=3)
        )
