"""Unit tests for declarative fault plans."""

import dataclasses

import pytest

from repro.faults.plan import (
    CrashSpec,
    FaultPlan,
    LinkDelaySpec,
    PartitionSpec,
    SlowdownSpec,
    StallSpec,
)


class TestCrashSpec:
    def test_validates_rates(self):
        with pytest.raises(ValueError):
            CrashSpec(mttf=0.0, mttr=1.0)
        with pytest.raises(ValueError):
            CrashSpec(mttf=1.0, mttr=-1.0)

    def test_processors_coerced_to_tuple(self):
        spec = CrashSpec(mttf=10.0, mttr=1.0, processors=[0, 2])
        assert spec.processors == (0, 2)

    def test_frozen(self):
        spec = CrashSpec(mttf=10.0, mttr=1.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.mttf = 5.0


class TestSlowdownSpec:
    def test_validates_timing_and_factor(self):
        with pytest.raises(ValueError):
            SlowdownSpec(mtbf=0.0, duration=1.0)
        with pytest.raises(ValueError):
            SlowdownSpec(mtbf=1.0, duration=0.0)
        with pytest.raises(ValueError):
            SlowdownSpec(mtbf=1.0, duration=1.0, factor=0.0)

    def test_processors_coerced_to_tuple(self):
        spec = SlowdownSpec(mtbf=5.0, duration=1.0, processors=[1])
        assert spec.processors == (1,)


class TestStallSpec:
    def test_validates_timing_and_factor(self):
        with pytest.raises(ValueError):
            StallSpec(mtbf=0.0, duration=1.0)
        with pytest.raises(ValueError):
            StallSpec(mtbf=1.0, duration=1.0, factor=-2.0)


class TestPartitionSpec:
    def test_validates_timing(self):
        with pytest.raises(ValueError):
            PartitionSpec(mtbf=0.0, duration=1.0)
        with pytest.raises(ValueError):
            PartitionSpec(mtbf=1.0, duration=-1.0)

    def test_groups_validated_and_coerced(self):
        spec = PartitionSpec(mtbf=1.0, duration=1.0, groups=[[0, 1], [2]])
        assert spec.groups == ((0, 1), (2,))
        with pytest.raises(ValueError):
            PartitionSpec(mtbf=1.0, duration=1.0, groups=((0, 1),))
        with pytest.raises(ValueError):
            PartitionSpec(mtbf=1.0, duration=1.0, groups=((0, 1), ()))

    def test_random_split_allowed(self):
        assert PartitionSpec(mtbf=1.0, duration=1.0).groups is None


class TestLinkDelaySpec:
    def test_validates_timing_and_extra(self):
        with pytest.raises(ValueError):
            LinkDelaySpec(mtbf=0.0, duration=1.0)
        with pytest.raises(ValueError):
            LinkDelaySpec(mtbf=1.0, duration=1.0, extra=-0.1)

    def test_links_coerced_to_tuples(self):
        spec = LinkDelaySpec(mtbf=1.0, duration=1.0, links=[[0, 1]])
        assert spec.links == ((0, 1),)
        assert LinkDelaySpec(mtbf=1.0, duration=1.0).links is None


class TestFaultPlan:
    def test_empty_plan_is_inert(self):
        assert FaultPlan().enabled() is False

    def test_any_source_enables(self):
        crash = CrashSpec(mttf=10.0, mttr=1.0)
        slow = SlowdownSpec(mtbf=5.0, duration=1.0)
        stall = StallSpec(mtbf=5.0, duration=1.0)
        cut = PartitionSpec(mtbf=5.0, duration=1.0)
        lag = LinkDelaySpec(mtbf=5.0, duration=1.0)
        assert FaultPlan(crashes=(crash,)).enabled()
        assert FaultPlan(disk_slowdowns=(slow,)).enabled()
        assert FaultPlan(lock_stalls=(stall,)).enabled()
        assert FaultPlan(partitions=(cut,)).enabled()
        assert FaultPlan(link_delays=(lag,)).enabled()

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(crashes=[CrashSpec(mttf=10.0, mttr=1.0)])
        assert isinstance(plan.crashes, tuple)
        assert isinstance(plan.disk_slowdowns, tuple)
        assert isinstance(plan.lock_stalls, tuple)

    def test_plan_is_hashable(self):
        plan = FaultPlan(crashes=(CrashSpec(mttf=10.0, mttr=1.0),), seed=3)
        assert plan == FaultPlan(
            crashes=(CrashSpec(mttf=10.0, mttr=1.0),), seed=3
        )
        assert hash(plan) == hash(
            FaultPlan(crashes=(CrashSpec(mttf=10.0, mttr=1.0),), seed=3)
        )

    def test_digest_is_stable_and_schedule_sensitive(self):
        """Equal plans digest identically; any schedule change — even
        just the seed — produces a different digest, so journals can
        never be resumed across plans."""
        plan = FaultPlan(
            crashes=(CrashSpec(mttf=10.0, mttr=1.0),),
            partitions=(PartitionSpec(mtbf=5.0, duration=1.0),),
            seed=3,
        )
        twin = FaultPlan(
            crashes=(CrashSpec(mttf=10.0, mttr=1.0),),
            partitions=(PartitionSpec(mtbf=5.0, duration=1.0),),
            seed=3,
        )
        assert plan.digest() == twin.digest()
        assert len(plan.digest()) == 64
        reseeded = dataclasses.replace(plan, seed=4)
        assert plan.digest() != reseeded.digest()
        assert plan.digest() != FaultPlan().digest()
