"""Unit tests for the pluggable retry-backoff policies."""

import random

import pytest

from repro.faults.backoff import (
    POLICIES,
    ExponentialBackoff,
    FixedUniformBackoff,
    FullJitterBackoff,
    JitteredBackoff,
    make_backoff_policy,
)


class TestFixedUniformBackoff:
    def test_matches_inline_uniform_draw(self):
        """The default policy must consume the stream exactly as the
        pre-seam inline ``rng.uniform(0.0, 1.0)`` call did — this is
        what keeps existing seeded runs bit-identical."""
        policy = FixedUniformBackoff()
        a, b = random.Random(7), random.Random(7)
        for attempt in range(20):
            assert policy.delay(a, attempt) == b.uniform(0.0, 1.0)

    def test_flat_in_attempt(self):
        policy = FixedUniformBackoff()
        rng = random.Random(3)
        delays = [policy.delay(rng, attempt) for attempt in range(100)]
        assert all(0.0 <= delay < 1.0 for delay in delays)

    def test_width_scales_range(self):
        policy = FixedUniformBackoff(width=5.0)
        rng = random.Random(3)
        delays = [policy.delay(rng, 0) for _ in range(200)]
        assert max(delays) > 1.0
        assert all(0.0 <= delay < 5.0 for delay in delays)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            FixedUniformBackoff(width=0.0)
        with pytest.raises(ValueError):
            FixedUniformBackoff(width=-1.0)


class TestExponentialBackoff:
    def test_deterministic_doubling(self):
        policy = ExponentialBackoff(base=0.5, cap=16.0)
        rng = random.Random(1)
        assert policy.delay(rng, 0) == 0.5
        assert policy.delay(rng, 1) == 1.0
        assert policy.delay(rng, 2) == 2.0
        assert policy.delay(rng, 3) == 4.0

    def test_cap(self):
        policy = ExponentialBackoff(base=0.5, cap=16.0)
        rng = random.Random(1)
        assert policy.delay(rng, 10) == 16.0
        assert policy.delay(rng, 50) == 16.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(base=0.0)
        with pytest.raises(ValueError):
            ExponentialBackoff(cap=-1.0)


class TestJitteredBackoff:
    def test_bounded_by_exponential_envelope(self):
        policy = JitteredBackoff(base=0.5, cap=16.0)
        rng = random.Random(9)
        for attempt in range(12):
            ceiling = min(0.5 * 2.0 ** attempt, 16.0)
            for _ in range(20):
                assert 0.0 <= policy.delay(rng, attempt) < ceiling

    def test_validation(self):
        with pytest.raises(ValueError):
            JitteredBackoff(base=-1.0)
        with pytest.raises(ValueError):
            JitteredBackoff(cap=0.0)


class TestFullJitterBackoff:
    def test_registered(self):
        assert "full-jitter" in POLICIES
        policy = make_backoff_policy("full-jitter")
        assert isinstance(policy, FullJitterBackoff)
        assert policy.base == 1.0 and policy.cap == 32.0

    def test_bounded_by_capped_exponential_envelope(self):
        policy = FullJitterBackoff(base=1.0, cap=32.0)
        rng = random.Random(9)
        for attempt in range(12):
            ceiling = min(1.0 * 2.0 ** attempt, 32.0)
            for _ in range(20):
                assert 0.0 <= policy.delay(rng, attempt) < ceiling

    def test_matches_aws_formulation(self):
        """sleep = uniform(0, min(cap, base * 2**attempt)) exactly."""
        policy = FullJitterBackoff(base=2.0, cap=8.0)
        a, b = random.Random(5), random.Random(5)
        for attempt in range(10):
            expected = b.uniform(0.0, min(2.0 * 2.0 ** attempt, 8.0))
            assert policy.delay(a, attempt) == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            FullJitterBackoff(base=0.0)
        with pytest.raises(ValueError):
            FullJitterBackoff(cap=-2.0)


class TestStreamConsumption:
    def test_every_policy_draws_exactly_one_variate(self):
        """Policies must be stream-compatible: swapping the policy
        changes the delays but never desynchronises the other random
        streams of a run."""
        policies = [
            FixedUniformBackoff(),
            ExponentialBackoff(),
            JitteredBackoff(),
            FullJitterBackoff(),
        ]
        states = []
        for policy in policies:
            rng = random.Random(42)
            for attempt in range(10):
                policy.delay(rng, attempt)
            states.append(rng.getstate())
        assert states[0] == states[1] == states[2]


class TestRegistry:
    def test_registry_names_construct(self):
        for name in POLICIES:
            policy = make_backoff_policy(name)
            assert policy.name == name

    def test_kwargs_forwarded(self):
        policy = make_backoff_policy("exponential", base=2.0, cap=8.0)
        assert policy.base == 2.0
        assert policy.cap == 8.0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backoff policy"):
            make_backoff_policy("fibonacci")
