"""Unit tests for the message-passing network model."""

import random

import pytest

from repro.des.engine import Environment
from repro.net import Message, Network, Partition


class TestPartition:
    def test_groups_must_be_disjoint_and_non_empty(self):
        with pytest.raises(ValueError):
            Partition([])
        with pytest.raises(ValueError):
            Partition([(0, 1), ()])
        with pytest.raises(ValueError):
            Partition([(0, 1), (1, 2)])

    def test_component_of_listed_and_unlisted_sites(self):
        partition = Partition([(0, 1), (2,)])
        assert partition.component(0) == frozenset((0, 1))
        assert partition.component(2) == frozenset((2,))
        # A site missing from every group is completely isolated.
        assert partition.component(7) == frozenset((7,))

    def test_reachability(self):
        partition = Partition([(0, 1), (2,)])
        assert partition.reachable(0, 1)
        assert partition.reachable(2, 2)
        assert not partition.reachable(0, 2)
        assert not partition.reachable(2, 1)

    def test_majority(self):
        partition = Partition([(0, 1), (2,)])
        assert partition.majority(3) == frozenset((0, 1))
        assert Partition([(0,), (1,), (2,)]).majority(3) is None
        # An even split of four sites has no strict majority.
        assert Partition([(0, 1), (2, 3)]).majority(4) is None


class TestNetworkDelivery:
    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Network(env, 0)
        with pytest.raises(ValueError):
            Network(env, 2, latency=-1.0)
        with pytest.raises(ValueError):
            Network(env, 2, jitter=0.5)  # jitter needs an rng

    def test_delivers_after_latency(self):
        env = Environment()
        net = Network(env, 3, latency=0.25)
        seen = []
        assert net.send(0, 1, "ping", handler=lambda m: seen.append((env.now, m)))
        env.run(until=1.0)
        assert len(seen) == 1
        at, message = seen[0]
        assert at == 0.25
        assert isinstance(message, Message)
        assert (message.src, message.dst, message.kind) == (0, 1, "ping")
        assert net.messages_sent == 1
        assert net.messages_dropped == 0

    def test_link_and_global_extra_delay_add_up(self):
        env = Environment()
        net = Network(env, 3, latency=0.1)
        net.set_global_delay(0.2)
        net.set_link_delay(0, 1, 0.5)
        assert net.delay(0, 1) == pytest.approx(0.8)
        assert net.delay(1, 0) == pytest.approx(0.8)  # links are symmetric
        assert net.delay(0, 2) == pytest.approx(0.3)
        net.set_link_delay(0, 1, 0.0)
        net.set_global_delay(0.0)
        assert net.delay(0, 1) == pytest.approx(0.1)

    def test_jitter_is_seeded_and_deterministic(self):
        def delays(seed):
            env = Environment()
            net = Network(env, 2, latency=0.1, jitter=0.05,
                          rng=random.Random(seed))
            return [net.delay(0, 1) for _ in range(10)]

        assert delays(7) == delays(7)
        assert delays(7) != delays(8)
        assert all(0.1 <= d <= 0.15 for d in delays(7))

    def test_fire_and_forget_still_consumes_jitter_draw(self):
        """The stream must advance identically whether or not a
        handler listens, so protocol changes can't desync seeds."""
        a, b = random.Random(3), random.Random(3)
        env_a, env_b = Environment(), Environment()
        net_a = Network(env_a, 2, latency=0.1, jitter=0.05, rng=a)
        net_b = Network(env_b, 2, latency=0.1, jitter=0.05, rng=b)
        net_a.send(0, 1, "x")  # no handler
        net_b.send(0, 1, "x", handler=lambda m: None)
        assert a.random() == b.random()


class TestNetworkPartitions:
    def test_drop_at_send_across_partition(self):
        env = Environment()
        net = Network(env, 3, latency=0.1)
        net.partition([(0, 1), (2,)])
        seen = []
        assert not net.send(0, 2, "ping", handler=seen.append)
        assert net.send(0, 1, "ping", handler=seen.append)
        env.run(until=1.0)
        assert len(seen) == 1
        assert net.messages_sent == 2
        assert net.messages_dropped == 1

    def test_in_flight_messages_survive_a_later_partition(self):
        env = Environment()
        net = Network(env, 2, latency=0.5)
        seen = []
        net.send(0, 1, "ping", handler=seen.append)
        env.schedule_callback(lambda: net.partition([(0,), (1,)]), 0.1)
        env.run(until=1.0)
        assert len(seen) == 1  # dropped at send time only

    def test_heal_restores_reachability_and_fires_callbacks(self):
        env = Environment()
        net = Network(env, 2, latency=0.0)
        events = []
        net.on_partition = lambda state: events.append(("cut", state))
        net.on_heal = lambda: events.append(("heal",))
        net.partition([(0,), (1,)])
        assert not net.reachable(0, 1)
        net.heal()
        assert net.reachable(0, 1)
        assert [kind for kind, *_ in events] == ["cut", "heal"]
