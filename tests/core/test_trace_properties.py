"""Property-based lifecycle invariants via tracing (hypothesis).

Runs small random configurations with tracing enabled and asserts the
MODEL.md §4/I8 invariants on every completed transaction — across
engines, protocols, placements, and arrival processes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SimulationParameters
from repro.core.model import LockingGranularityModel
from repro.des.trace import Trace


@st.composite
def traced_configs(draw):
    engine = draw(
        st.sampled_from(["probabilistic", "explicit", "hierarchical"])
    )
    protocol = "preclaim"
    if engine == "explicit" and draw(st.booleans()):
        protocol = "incremental"
    return SimulationParameters(
        dbsize=draw(st.sampled_from([50, 200])),
        ltot=draw(st.sampled_from([1, 5, 25, 50])),
        ntrans=draw(st.integers(min_value=1, max_value=5)),
        maxtransize=draw(st.sampled_from([1, 5, 20])),
        npros=draw(st.integers(min_value=1, max_value=4)),
        tmax=60.0,
        conflict_engine=engine,
        protocol=protocol,
        placement=draw(st.sampled_from(["best", "worst", "random"])),
        partitioning=draw(st.sampled_from(["horizontal", "random"])),
        arrival_process=draw(st.sampled_from(["closed", "open"])),
        arrival_rate=0.5,
        write_fraction=draw(st.sampled_from([1.0, 0.5])),
        seed=draw(st.integers(min_value=0, max_value=999)),
    )


class TestLifecycleInvariants:
    @given(traced_configs())
    @settings(max_examples=30, deadline=None)
    def test_completed_transactions_follow_the_state_machine(self, params):
        trace = Trace()
        model = LockingGranularityModel(params, trace=trace)
        result = model.run()
        completed = {r.subject for r in trace.records(kind="complete")}
        assert len(completed) == result.totcom
        for tid in completed:
            kinds = [kind for kind, _ in trace.timeline(tid)]
            times = [time for _, time in trace.timeline(tid)]
            assert times == sorted(times)
            assert kinds[0] == "arrive"
            assert kinds[1] == "admit"
            assert kinds[-1] == "complete"
            assert kinds.count("lock_grant") == 1
            assert kinds.count("exec") == 1
            grant_at = kinds.index("lock_grant")
            assert grant_at < kinds.index("exec")
            # Execution detail: every fork pairs with one completed
            # I/O and one completed CPU phase before the join, and the
            # transaction ends join -> commit -> complete.
            forks = kinds.count("fork")
            assert forks >= 1
            assert kinds.count("io_end") == forks
            assert kinds.count("cpu_end") == forks
            assert kinds[-3:] == ["join", "commit", "complete"]
            requests = kinds.count("lock_request")
            denials = kinds.count("lock_deny")
            aborts = kinds.count("abort")
            if params.protocol == "preclaim":
                assert requests == denials + 1
                assert aborts == 0
            else:
                # Incremental: each attempt is a request; denials are
                # abort events.
                assert requests == aborts + 1

    @given(traced_configs())
    @settings(max_examples=15, deadline=None)
    def test_aggregate_counters_match_trace(self, params):
        trace = Trace()
        model = LockingGranularityModel(params, trace=trace)
        result = model.run()
        counts = trace.counts()
        assert counts.get("lock_request", 0) == result.lock_requests
        assert counts.get("complete", 0) == result.totcom
        if params.protocol == "preclaim":
            assert counts.get("lock_deny", 0) == result.lock_denials
        else:
            assert counts.get("abort", 0) == result.deadlock_aborts
