"""Unit tests for result records and aggregation."""

import math

import pytest

from repro.core import SimulationParameters, simulate
from repro.core.results import (
    RESULT_FIELDS,
    ReplicatedResult,
    aggregate,
    results_table,
)


@pytest.fixture(scope="module")
def results():
    params = SimulationParameters(
        dbsize=200, ltot=10, ntrans=3, maxtransize=20, npros=2,
        tmax=120.0,
    )
    return [simulate(params.replace(seed=s)) for s in (1, 2, 3, 4)]


class TestSimulationResult:
    def test_as_dict_contains_outputs_and_params(self, results):
        row = results[0].as_dict()
        for field in RESULT_FIELDS:
            assert field in row
        assert row["dbsize"] == 200
        assert row["ltot"] == 10

    def test_as_dict_without_params(self, results):
        row = results[0].as_dict(include_params=False)
        assert "dbsize" not in row
        assert "throughput" in row

    def test_frozen(self, results):
        with pytest.raises(Exception):
            results[0].totcom = 99


class TestReplicatedResult:
    def test_requires_results(self):
        with pytest.raises(ValueError):
            ReplicatedResult([])

    def test_len_and_samples(self, results):
        replicated = aggregate(results)
        assert len(replicated) == 4
        assert len(replicated.samples("totcom")) == 4

    def test_mean_matches_manual(self, results):
        replicated = aggregate(results)
        manual = sum(r.throughput for r in results) / len(results)
        assert replicated.mean("throughput") == pytest.approx(manual)

    def test_stdev_matches_manual(self, results):
        replicated = aggregate(results)
        values = [r.throughput for r in results]
        mean = sum(values) / len(values)
        manual = math.sqrt(
            sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        )
        assert replicated.stdev("throughput") == pytest.approx(manual)

    def test_ci_contains_mean_and_widens_with_confidence(self, results):
        replicated = aggregate(results)
        low95, high95 = replicated.ci("throughput", 0.95)
        low99, high99 = replicated.ci("throughput", 0.99)
        mean = replicated.mean("throughput")
        assert low95 <= mean <= high95
        assert (high99 - low99) >= (high95 - low95)

    def test_half_width_single_sample_is_nan(self, results):
        replicated = aggregate(results[:1])
        assert math.isnan(replicated.half_width("throughput"))

    def test_nan_samples_dropped_from_mean(self, results):
        replicated = aggregate(results)
        # response_time could legitimately be NaN if nothing completed;
        # construct that case explicitly.
        import dataclasses

        with_nan = [
            dataclasses.replace(results[0], response_time=float("nan"))
        ] + results[1:]
        mean = aggregate(with_nan).mean("response_time")
        manual = sum(r.response_time for r in results[1:]) / 3
        assert mean == pytest.approx(manual)

    def test_as_dict_merges_params(self, results):
        row = aggregate(results).as_dict()
        assert row["ltot"] == 10
        assert "throughput" in row


class TestResultsTable:
    def test_rows_have_requested_fields(self, results):
        rows = results_table(results, fields=("ltot", "throughput"))
        assert len(rows) == 4
        assert set(rows[0]) == {"ltot", "throughput"}
