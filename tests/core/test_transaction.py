"""Unit tests for transaction records."""

import pytest

from repro.core.transaction import Transaction


class TestTransaction:
    def test_construction_defaults(self):
        txn = Transaction(1, nu=10, lock_count=2)
        assert txn.tid == 1
        assert txn.nu == 10
        assert txn.lock_count == 2
        assert txn.granules is None
        assert txn.is_writer
        assert txn.arrival is None
        assert txn.attempts == 0
        assert txn.aborts == 0

    def test_repr_contains_identity(self):
        txn = Transaction(7, nu=3, lock_count=1)
        assert "#7" in repr(txn)

    def test_granule_carrying(self):
        txn = Transaction(1, nu=3, lock_count=3, granules=[4, 5, 6])
        assert txn.granules == [4, 5, 6]

    def test_reader_flag(self):
        txn = Transaction(1, nu=3, lock_count=3, is_writer=False)
        assert not txn.is_writer

    def test_slots_prevent_arbitrary_attributes(self):
        txn = Transaction(1, nu=1, lock_count=1)
        with pytest.raises(AttributeError):
            txn.something_else = 1

    def test_usable_as_lock_owner(self):
        # Transactions are identity-hashable (used as lock owners).
        a = Transaction(1, nu=1, lock_count=1)
        b = Transaction(1, nu=1, lock_count=1)
        assert a != b or a is b
        assert len({a, b}) == 2
