"""Unit tests for data partitioning methods."""

import random

import pytest

from repro.core.parameters import SimulationParameters
from repro.core.partitioning import (
    HorizontalPartitioning,
    RandomPartitioning,
    make_partitioning,
)
from repro.core.transaction import split_entities


@pytest.fixture
def rng():
    return random.Random(17)


class TestHorizontal:
    def test_always_all_processors(self, rng):
        partitioning = HorizontalPartitioning(8)
        for _ in range(10):
            assert partitioning.processors(rng) == list(range(8))

    def test_single_processor(self, rng):
        assert HorizontalPartitioning(1).processors(rng) == [0]


class TestRandom:
    def test_subset_sizes_in_range(self, rng):
        partitioning = RandomPartitioning(8)
        for _ in range(200):
            processors = partitioning.processors(rng)
            assert 1 <= len(processors) <= 8
            assert len(set(processors)) == len(processors)
            assert all(0 <= p < 8 for p in processors)

    def test_uniform_subset_size(self, rng):
        partitioning = RandomPartitioning(10)
        sizes = [len(partitioning.processors(rng)) for _ in range(5000)]
        assert sum(sizes) / len(sizes) == pytest.approx(5.5, rel=0.05)

    def test_single_processor_machine(self, rng):
        assert RandomPartitioning(1).processors(rng) == [0]

    def test_full_subset_includes_everyone(self, rng):
        partitioning = RandomPartitioning(3)
        seen_full = False
        for _ in range(100):
            processors = partitioning.processors(rng)
            if len(processors) == 3:
                assert processors == [0, 1, 2]
                seen_full = True
        assert seen_full


class TestSplitEntities:
    def test_even_split(self):
        assert split_entities(12, 4) == [3, 3, 3, 3]

    def test_remainder_spread_to_leading_shares(self):
        assert split_entities(10, 4) == [3, 3, 2, 2]

    def test_more_parts_than_entities(self):
        assert split_entities(2, 5) == [1, 1, 0, 0, 0]

    def test_single_part(self):
        assert split_entities(7, 1) == [7]

    def test_total_preserved(self):
        for nu in range(0, 50):
            for parts in range(1, 8):
                assert sum(split_entities(nu, parts)) == nu

    def test_invalid_parts_rejected(self):
        with pytest.raises(ValueError):
            split_entities(5, 0)


class TestFactory:
    def test_horizontal(self):
        partitioning = make_partitioning(
            SimulationParameters(partitioning="horizontal", npros=6)
        )
        assert isinstance(partitioning, HorizontalPartitioning)
        assert partitioning.npros == 6

    def test_random(self):
        partitioning = make_partitioning(
            SimulationParameters(partitioning="random", npros=6)
        )
        assert isinstance(partitioning, RandomPartitioning)
