"""Unit tests for simulation parameters."""

import pytest

from repro.core.parameters import TABLE_1, SimulationParameters


class TestDefaults:
    def test_table1_values(self):
        # The recoverable Table 1 values (see DESIGN.md).
        assert TABLE_1.dbsize == 5000
        assert TABLE_1.ntrans == 10
        assert TABLE_1.maxtransize == 500
        assert TABLE_1.cputime == 0.05
        assert TABLE_1.iotime == 0.2
        assert TABLE_1.lcputime == 0.01
        assert TABLE_1.liotime == 0.2

    def test_default_strategies_match_paper(self):
        assert TABLE_1.placement == "best"
        assert TABLE_1.partitioning == "horizontal"
        assert TABLE_1.conflict_engine == "probabilistic"
        assert TABLE_1.protocol == "preclaim"
        assert TABLE_1.write_fraction == 1.0

    def test_mean_transaction_size_uniform(self):
        params = SimulationParameters(maxtransize=500)
        assert params.mean_transaction_size == pytest.approx(250.5)

    def test_mean_transaction_size_mixed(self):
        params = SimulationParameters(workload="mixed")
        expected = 0.8 * 25.5 + 0.2 * 250.5
        assert params.mean_transaction_size == pytest.approx(expected)

    def test_mean_transaction_size_fixed(self):
        params = SimulationParameters(workload="fixed", maxtransize=100)
        assert params.mean_transaction_size == 100.0

    def test_granule_size(self):
        params = SimulationParameters(dbsize=5000, ltot=100)
        assert params.granule_size == 50.0


class TestValidation:
    @pytest.mark.parametrize(
        "changes",
        [
            {"dbsize": 0},
            {"ltot": 0},
            {"ltot": 5001},
            {"ntrans": 0},
            {"maxtransize": 0},
            {"maxtransize": 5001},
            {"npros": 0},
            {"cputime": -0.1},
            {"iotime": -1},
            {"lcputime": -1},
            {"liotime": -0.5},
            {"tmax": 0},
            {"warmup": -1},
            {"warmup": 5000.0},
            {"placement": "magic"},
            {"partitioning": "vertical"},
            {"conflict_engine": "psychic"},
            {"protocol": "optimistic"},
            {"workload": "zipf"},
            {"mix_small_fraction": 1.5},
            {"workload": "mixed", "mix_small_maxtransize": 0},
            {"workload": "mixed", "mix_large_maxtransize": 99999},
            {"write_fraction": -0.1},
            {"txn_policy": "random"},
            {"mpl_limit": -1},
            {"discipline": "lifo"},
        ],
    )
    def test_invalid_values_rejected(self, changes):
        with pytest.raises(ValueError):
            SimulationParameters(**changes)

    def test_incremental_requires_explicit_engine(self):
        with pytest.raises(ValueError):
            SimulationParameters(protocol="incremental")
        # With the explicit engine it is fine.
        SimulationParameters(protocol="incremental", conflict_engine="explicit")

    def test_ltot_boundaries_allowed(self):
        SimulationParameters(ltot=1)
        SimulationParameters(ltot=5000)


class TestReplace:
    def test_replace_returns_new_validated_instance(self):
        params = SimulationParameters()
        other = params.replace(ltot=10)
        assert other.ltot == 10
        assert params.ltot == 100  # original untouched

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            SimulationParameters().replace(ltot=0)

    def test_as_dict_round_trip(self):
        params = SimulationParameters(ltot=7, seed=99)
        rebuilt = SimulationParameters(**params.as_dict())
        assert rebuilt == params

    def test_frozen(self):
        params = SimulationParameters()
        with pytest.raises(Exception):
            params.ltot = 5


class TestEngineCapabilities:
    """Engine requirements are declared on the conflict factories, not
    hardcoded by name in the validator (PR 10 hardening)."""

    def test_factories_declare_capability_attributes(self):
        from repro.policies import registry

        for name in ("probabilistic", "vectorized", "explicit",
                     "hierarchical"):
            engine = registry.resolve("conflict", name)
            assert isinstance(engine.needs_granules, bool)
            assert isinstance(engine.table_backed, bool)
            assert isinstance(engine.supports_granule_cc, bool)

    def test_granule_cc_needs_supporting_engine(self):
        with pytest.raises(ValueError):
            SimulationParameters(
                protocol="incremental", conflict_engine="hierarchical"
            )

    def test_skewed_placement_needs_table_backed_engine(self):
        with pytest.raises(ValueError):
            SimulationParameters(
                placement="skewed", conflict_engine="probabilistic"
            )
        SimulationParameters(
            placement="skewed", conflict_engine="explicit"
        )

    def test_hierarchical_rejects_more_files_than_database_blocks(self):
        with pytest.raises(ValueError):
            SimulationParameters(
                conflict_engine="hierarchical", dbsize=500, nfiles=501
            )

    def test_hierarchical_clamps_nfiles_to_ltot(self):
        # nfiles > ltot is a *clamp*, not an error: a fixed nfiles
        # must survive sweeps over the full ltot grid.
        SimulationParameters(
            conflict_engine="hierarchical", ltot=10, nfiles=11
        )

    def test_hierarchical_rejects_threshold_above_ltot(self):
        with pytest.raises(ValueError):
            SimulationParameters(
                conflict_engine="hierarchical", ltot=10, nfiles=5,
                escalation_threshold=11,
            )

    def test_flat_engines_skip_hierarchy_bounds(self):
        # The same nfiles value is inert outside the hierarchy engine.
        SimulationParameters(ltot=10, nfiles=11)
