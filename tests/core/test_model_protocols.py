"""Integration tests of engine/protocol/policy variants."""

import pytest

from repro.core import SimulationParameters, simulate


@pytest.fixture
def base():
    return SimulationParameters(
        dbsize=500, ltot=25, ntrans=6, maxtransize=50, npros=4,
        tmax=300.0, seed=13,
    )


class TestExplicitEngine:
    def test_runs_and_completes(self, base):
        result = simulate(base.replace(conflict_engine="explicit"))
        assert result.totcom > 0

    def test_agrees_with_probabilistic_on_throughput(self, base):
        explicit = simulate(base.replace(conflict_engine="explicit"))
        probabilistic = simulate(base)
        assert explicit.throughput == pytest.approx(
            probabilistic.throughput, rel=0.25
        )

    def test_no_deadlocks_under_preclaim(self, base):
        result = simulate(base.replace(conflict_engine="explicit"))
        assert result.deadlock_aborts == 0

    def test_read_only_transactions_raise_concurrency(self, base):
        # With every transaction reading (S locks), the explicit
        # engine should almost never deny.
        writers = simulate(base.replace(conflict_engine="explicit"))
        readers = simulate(
            base.replace(conflict_engine="explicit", write_fraction=0.0)
        )
        assert readers.denial_rate <= writers.denial_rate
        assert readers.throughput >= writers.throughput * 0.95


class TestIncrementalProtocol:
    def test_runs_and_completes(self, base):
        result = simulate(
            base.replace(conflict_engine="explicit", protocol="incremental")
        )
        assert result.totcom > 0

    def test_deadlocks_detected_and_survived_under_worst_placement(self, base):
        result = simulate(
            base.replace(
                conflict_engine="explicit",
                protocol="incremental",
                placement="worst",
                ltot=10,
            )
        )
        # Worst placement with scattered acquisition order must
        # produce (and survive) deadlocks.
        assert result.totcom > 0
        assert result.deadlock_aborts > 0

    def test_footnote1_claim_same_conclusions(self, base):
        """Footnote 1: claim-as-needed did not affect the study's
        conclusions — the protocols' throughputs stay comparable."""
        preclaim = simulate(base.replace(conflict_engine="explicit"))
        incremental = simulate(
            base.replace(conflict_engine="explicit", protocol="incremental")
        )
        assert incremental.throughput == pytest.approx(
            preclaim.throughput, rel=0.35
        )


class TestAdmissionPolicies:
    def test_smallest_first_admits_small_transactions(self, base):
        result = simulate(base.replace(txn_policy="smallest"))
        assert result.totcom > 0

    def test_mpl_limit_caps_active_population(self, base):
        result = simulate(base.replace(mpl_limit=2))
        assert result.mean_active <= 2.0 + 1e-9
        assert result.totcom > 0

    def test_adaptive_policy_completes_work(self, base):
        result = simulate(base.replace(txn_policy="adaptive"))
        assert result.totcom > 0

    def test_adaptive_beats_fcfs_under_heavy_fine_grained_load(self):
        params = SimulationParameters(
            dbsize=500, ltot=500, ntrans=60, maxtransize=50, npros=4,
            tmax=400.0, seed=21,
        )
        fcfs = simulate(params)
        adaptive = simulate(params.replace(txn_policy="adaptive"))
        assert adaptive.throughput >= fcfs.throughput

    def test_mpl_one_serialises(self, base):
        result = simulate(base.replace(mpl_limit=1))
        assert result.mean_active <= 1.0 + 1e-9
        assert result.denial_rate == 0.0  # nobody to conflict with


class TestDisciplines:
    def test_sjf_runs(self, base):
        result = simulate(base.replace(discipline="sjf"))
        assert result.totcom > 0

    def test_sjf_close_to_fcfs_in_throughput(self, base):
        # Ref [3] of the paper: sub-transaction scheduling has only a
        # marginal effect.
        fcfs = simulate(base)
        sjf = simulate(base.replace(discipline="sjf"))
        assert sjf.throughput == pytest.approx(fcfs.throughput, rel=0.3)


class TestPartitioningVariants:
    def test_random_partitioning_runs(self, base):
        result = simulate(base.replace(partitioning="random"))
        assert result.totcom > 0

    def test_horizontal_beats_random_partitioning(self):
        # §3.4: horizontal partitioning gives better performance.
        params = SimulationParameters(
            dbsize=1000, ltot=50, ntrans=8, maxtransize=100, npros=8,
            tmax=400.0, seed=29,
        )
        horizontal = simulate(params)
        randomised = simulate(params.replace(partitioning="random"))
        assert horizontal.throughput > randomised.throughput


class TestWorkloadVariants:
    def test_mixed_workload_runs(self, base):
        result = simulate(
            base.replace(
                workload="mixed",
                mix_small_maxtransize=10,
                mix_large_maxtransize=100,
            )
        )
        assert result.totcom > 0

    def test_mixed_throughput_between_extremes(self):
        common = dict(
            dbsize=1000, ltot=50, ntrans=8, npros=8, tmax=400.0, seed=31
        )
        small = simulate(SimulationParameters(maxtransize=20, **common))
        large = simulate(SimulationParameters(maxtransize=200, **common))
        mixed = simulate(
            SimulationParameters(
                maxtransize=200,
                workload="mixed",
                mix_small_maxtransize=20,
                mix_large_maxtransize=200,
                **common,
            )
        )
        assert large.throughput <= mixed.throughput <= small.throughput

    def test_fixed_workload_constant_sizes(self, base):
        result = simulate(base.replace(workload="fixed", maxtransize=10))
        assert result.totcom > 0
