"""Unit tests for the conflict engines."""

import random

import pytest

from repro.core.conflict import (
    ExplicitConflicts,
    ProbabilisticConflicts,
    make_conflict_engine,
)
from repro.core.parameters import SimulationParameters
from repro.core.transaction import Transaction


def txn(tid, lock_count, granules=None, is_writer=True):
    return Transaction(tid, nu=lock_count, lock_count=lock_count,
                       granules=granules, is_writer=is_writer)


class TestProbabilistic:
    def test_first_request_always_granted(self):
        engine = ProbabilisticConflicts(ltot=100, rng=random.Random(1))
        assert engine.request(txn(1, 10)) is None
        assert engine.active_count == 1
        assert engine.locks_held == 10

    def test_whole_database_lock_serialises(self):
        engine = ProbabilisticConflicts(ltot=1, rng=random.Random(1))
        first = txn(1, 1)
        assert engine.request(first) is None
        # Any second request must be blocked by the holder.
        for tid in range(2, 20):
            assert engine.request(txn(tid, 1)) is first

    def test_release_enables_progress(self):
        engine = ProbabilisticConflicts(ltot=1, rng=random.Random(1))
        first = txn(1, 1)
        engine.request(first)
        engine.release(first)
        assert engine.active_count == 0
        assert engine.request(txn(2, 1)) is None

    def test_blocker_identity_matches_interval(self):
        # With two actives holding 30 and 70 of 100 locks, a blocked
        # request lands on T1 with probability 0.3 and T2 with 0.7.
        rng = random.Random(7)
        engine = ProbabilisticConflicts(ltot=100, rng=rng)
        t1, t2 = txn(1, 30), txn(2, 70)
        engine.request(t1)
        engine.request(t2)
        blockers = {1: 0, 2: 0}
        for tid in range(3, 3003):
            blocker = engine.request(txn(tid, 1))
            assert blocker is not None  # total held = ltot
            blockers[blocker.tid] += 1
        share_t1 = blockers[1] / (blockers[1] + blockers[2])
        assert share_t1 == pytest.approx(0.3, abs=0.03)

    def test_denial_probability_matches_held_fraction(self):
        rng = random.Random(11)
        engine = ProbabilisticConflicts(ltot=1000, rng=rng)
        holder = txn(1, 400)
        engine.request(holder)
        denied = 0
        trials = 4000
        for tid in range(2, trials + 2):
            t = txn(tid, 1)
            if engine.request(t) is not None:
                denied += 1
            else:
                engine.release(t)
        assert denied / trials == pytest.approx(0.4, abs=0.03)

    def test_fractional_lock_counts_supported(self):
        # Random placement produces real-valued mean lock counts.
        engine = ProbabilisticConflicts(ltot=10, rng=random.Random(3))
        assert engine.request(txn(1, 2.5)) is None
        assert engine.locks_held == pytest.approx(2.5)

    def test_double_request_rejected(self):
        engine = ProbabilisticConflicts(ltot=10, rng=random.Random(3))
        t = txn(1, 1)
        engine.request(t)
        with pytest.raises(ValueError):
            engine.request(t)

    def test_release_unknown_is_noop(self):
        engine = ProbabilisticConflicts(ltot=10, rng=random.Random(3))
        engine.release(txn(9, 1))

    def test_invalid_ltot_rejected(self):
        with pytest.raises(ValueError):
            ProbabilisticConflicts(ltot=0, rng=random.Random(1))


class TestExplicit:
    def test_disjoint_sets_coexist(self):
        engine = ExplicitConflicts()
        assert engine.request(txn(1, 2, granules=[1, 2])) is None
        assert engine.request(txn(2, 2, granules=[3, 4])) is None
        assert engine.active_count == 2

    def test_overlap_blocks_and_names_holder(self):
        engine = ExplicitConflicts()
        first = txn(1, 2, granules=[1, 2])
        engine.request(first)
        blocker = engine.request(txn(2, 2, granules=[2, 3]))
        assert blocker is first

    def test_readers_share_granules(self):
        engine = ExplicitConflicts()
        assert engine.request(txn(1, 1, granules=[5], is_writer=False)) is None
        assert engine.request(txn(2, 1, granules=[5], is_writer=False)) is None
        writer = txn(3, 1, granules=[5], is_writer=True)
        assert engine.request(writer) is not None

    def test_release_unblocks(self):
        engine = ExplicitConflicts()
        first = txn(1, 1, granules=[1])
        second = txn(2, 1, granules=[1])
        engine.request(first)
        assert engine.request(second) is first
        engine.release(first)
        assert engine.request(second) is None

    def test_requires_materialised_granules(self):
        engine = ExplicitConflicts()
        with pytest.raises(ValueError):
            engine.request(txn(1, 3, granules=None))

    def test_locks_held_counts_granules(self):
        engine = ExplicitConflicts()
        engine.request(txn(1, 3, granules=[1, 2, 3]))
        assert engine.locks_held == 3

    def test_mark_active_registers_incremental_txn(self):
        engine = ExplicitConflicts()
        t = txn(1, 1, granules=[1])
        engine.mark_active(t)
        assert engine.active_count == 1
        engine.release(t)
        assert engine.active_count == 0


class TestFactory:
    def test_probabilistic(self):
        engine = make_conflict_engine(
            SimulationParameters(conflict_engine="probabilistic"),
            random.Random(0),
        )
        assert isinstance(engine, ProbabilisticConflicts)
        assert engine.ltot == 100

    def test_explicit(self):
        engine = make_conflict_engine(
            SimulationParameters(conflict_engine="explicit"), random.Random(0)
        )
        assert isinstance(engine, ExplicitConflicts)
