"""Tests for the model extensions: R/W sharing, skew, open arrivals."""

import random

import pytest

from repro.core import SimulationParameters, simulate
from repro.core.conflict import ProbabilisticConflicts
from repro.core.placement import SkewedPlacement
from repro.core.transaction import Transaction


def txn(tid, locks, is_writer=True):
    return Transaction(tid, nu=locks, lock_count=locks, is_writer=is_writer)


class TestProbabilisticReadWrite:
    def test_readers_share_overlaps(self):
        engine = ProbabilisticConflicts(ltot=1, rng=random.Random(1))
        assert engine.request(txn(1, 1, is_writer=False)) is None
        # ltot=1: every draw overlaps the reader — but reader-reader
        # overlaps never block.
        for tid in range(2, 12):
            assert engine.request(txn(tid, 1, is_writer=False)) is None
        assert engine.active_count == 11

    def test_writer_blocks_readers(self):
        engine = ProbabilisticConflicts(ltot=1, rng=random.Random(1))
        writer = txn(1, 1, is_writer=True)
        assert engine.request(writer) is None
        assert engine.request(txn(2, 1, is_writer=False)) is writer

    def test_reader_blocks_writer(self):
        engine = ProbabilisticConflicts(ltot=1, rng=random.Random(1))
        reader = txn(1, 1, is_writer=False)
        assert engine.request(reader) is None
        assert engine.request(txn(2, 1, is_writer=True)) is reader

    def test_read_only_workload_raises_throughput(self):
        params = SimulationParameters(
            dbsize=500, ltot=5, ntrans=8, maxtransize=50, npros=4,
            tmax=250.0, seed=11,
        )
        writers = simulate(params)
        readers = simulate(params.replace(write_fraction=0.0))
        assert readers.denial_rate < writers.denial_rate
        assert readers.throughput > writers.throughput

    def test_probabilistic_tracks_explicit_under_rw_mix(self):
        params = SimulationParameters(
            dbsize=500, ltot=25, ntrans=8, maxtransize=50, npros=4,
            tmax=300.0, seed=11, write_fraction=0.3,
        )
        prob = simulate(params)
        expl = simulate(params.replace(conflict_engine="explicit"))
        assert prob.throughput == pytest.approx(expl.throughput, rel=0.3)


class TestSkewedPlacement:
    def test_validation(self):
        with pytest.raises(ValueError):
            SkewedPlacement(100, 10, theta=-1)

    def test_zero_theta_is_roughly_uniform(self):
        placement = SkewedPlacement(1000, 10, theta=0.0)
        rng = random.Random(3)
        counts = [0] * 10
        for _ in range(4000):
            for granule in placement.granules(1, rng):
                counts[granule] += 1
        assert max(counts) < 2 * min(counts)

    def test_high_theta_concentrates_on_hot_granules(self):
        placement = SkewedPlacement(1000, 100, theta=1.2)
        rng = random.Random(3)
        hot = 0
        total = 0
        for _ in range(1000):
            for granule in placement.granules(2, rng):
                total += 1
                if granule < 10:
                    hot += 1
        # The hottest 10% of granules get the majority of accesses.
        assert hot / total > 0.5

    def test_granules_distinct_and_bounded(self):
        placement = SkewedPlacement(1000, 50, theta=2.0)
        rng = random.Random(9)
        for nu in (1, 10, 50, 200):
            granules = placement.granules(nu, rng)
            assert len(granules) == len(set(granules))
            assert len(granules) == min(nu, 50)
            assert all(0 <= g < 50 for g in granules)

    def test_skew_requires_table_backed_engine(self):
        with pytest.raises(ValueError):
            SimulationParameters(placement="skewed")
        SimulationParameters(placement="skewed", conflict_engine="explicit")

    def test_skew_increases_conflicts_in_simulation(self):
        base = SimulationParameters(
            dbsize=500, ltot=50, ntrans=8, maxtransize=20, npros=4,
            tmax=250.0, seed=13, conflict_engine="explicit",
        )
        uniform = simulate(base.replace(placement="random"))
        skewed = simulate(
            base.replace(placement="skewed", access_skew=1.2)
        )
        assert skewed.denial_rate > uniform.denial_rate
        assert skewed.throughput <= uniform.throughput * 1.05


class TestOpenSystem:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationParameters(arrival_process="batch")
        with pytest.raises(ValueError):
            SimulationParameters(arrival_process="open", arrival_rate=0)

    def test_underloaded_open_system_keeps_up(self):
        # Capacity at ltot=20, npros=10 is ~0.19 txn/unit; offer 0.05.
        params = SimulationParameters(
            npros=10, ltot=20, tmax=400.0, seed=5,
            arrival_process="open", arrival_rate=0.05,
        )
        result = simulate(params)
        # Completions track offered load (λ·tmax = 20).
        assert result.totcom == pytest.approx(
            params.arrival_rate * params.tmax, rel=0.3
        )
        assert result.mean_pending < 1.0

    def test_overloaded_open_system_saturates(self):
        params = SimulationParameters(
            npros=10, ltot=20, tmax=300.0, seed=5,
            arrival_process="open", arrival_rate=2.0,
        )
        result = simulate(params)
        # Throughput caps at the closed system's capacity (~0.19) even
        # though 2.0/unit arrive; the excess piles up in the blocked
        # queue (admission is unlimited, so pending stays empty).
        assert result.throughput < 0.3
        assert result.mean_blocked + result.mean_pending > 10

    def test_population_not_replenished(self):
        # With a tiny horizon and rate, nothing beyond the Poisson
        # stream enters; no closed-loop replacement happens.
        params = SimulationParameters(
            npros=2, ltot=5, dbsize=100, maxtransize=10, tmax=50.0,
            seed=5, arrival_process="open", arrival_rate=0.1,
        )
        result = simulate(params)
        assert result.totcom <= 15

    def test_open_system_response_grows_with_load(self):
        base = SimulationParameters(
            npros=10, ltot=20, tmax=400.0, seed=5, arrival_process="open"
        )
        light = simulate(base.replace(arrival_rate=0.05))
        heavy = simulate(base.replace(arrival_rate=0.18))
        assert heavy.response_time > light.response_time
