"""Unit tests for the metrics collector."""

import math

import pytest

from repro.core.metrics import MetricsCollector, _percentiles
from repro.core.parameters import SimulationParameters
from repro.core.transaction import Transaction
from repro.des import Environment
from repro.engine.machine import Machine


@pytest.fixture
def setup():
    params = SimulationParameters(
        dbsize=200, ltot=10, ntrans=2, maxtransize=20, npros=2, tmax=100.0
    )
    env = Environment()
    machine = Machine(env, params.npros)
    collector = MetricsCollector(env, params, machine)
    return env, params, machine, collector


class TestPercentiles:
    """Pin the nearest-rank formula: rank = ceil(f * n), 1-based.

    The old ``int(round(f * (n - 1)))`` implementation used banker's
    rounding, so the median of an even-count sample drifted one rank
    high (e.g. median of four samples picked ``ordered[2]``).  These
    cases fail under that implementation and pass under nearest-rank.
    """

    def test_empty_is_nan(self):
        assert all(math.isnan(v) for v in _percentiles([], (0.5, 0.95)))

    def test_single_sample(self):
        assert _percentiles([42.0], (0.5, 0.95)) == [42.0, 42.0]

    def test_median_of_four_is_second_sample(self):
        # ceil(0.5 * 4) = 2 -> ordered[1]; the banker's-rounding bug
        # returned ordered[2] (30.0) here.
        assert _percentiles([40.0, 20.0, 10.0, 30.0], (0.5,)) == [20.0]

    def test_median_of_odd_count_is_middle(self):
        assert _percentiles([5.0, 1.0, 3.0], (0.5,)) == [3.0]

    def test_p95_of_twenty_is_nineteenth(self):
        samples = [float(i) for i in range(1, 21)]
        # ceil(0.95 * 20) = 19 -> ordered[18] = 19.0
        assert _percentiles(samples, (0.95,)) == [19.0]

    def test_extreme_fractions_clamped(self):
        samples = [3.0, 1.0, 2.0]
        assert _percentiles(samples, (0.0,)) == [1.0]
        assert _percentiles(samples, (1.0,)) == [3.0]

    def test_unsorted_input_is_ordered_first(self):
        assert _percentiles([9.0, 0.0, 5.0, 7.0, 2.0], (0.5,)) == [5.0]


class TestCounting:
    def test_requests_and_denials(self, setup):
        _, _, _, collector = setup
        collector.note_request()
        collector.note_request()
        collector.note_denial()
        assert collector.lock_requests == 2
        assert collector.lock_denials == 1

    def test_completion_records_response(self, setup):
        env, _, _, collector = setup
        txn = Transaction(1, nu=5, lock_count=1)
        txn.arrival = 0.0
        txn.attempts = 2

        def advance(env):
            yield env.timeout(7)
            collector.note_completion(txn)

        env.process(advance(env))
        env.run()
        assert collector.completions == 1
        assert collector.response.mean == pytest.approx(7.0)
        assert collector.attempts.mean == pytest.approx(2.0)

    def test_abort_counting(self, setup):
        _, _, _, collector = setup
        collector.note_abort()
        assert collector.deadlock_aborts == 1


class TestFinalize:
    def test_result_fields_consistent(self, setup):
        env, params, machine, collector = setup
        machine[0].io(10.0)
        machine[1].compute(4.0)

        def locker(env):
            yield machine.lock_overhead(2.0, 2.0)

        env.process(locker(env))
        env.run(until=params.tmax)
        result = collector.finalize()
        assert result.totios == pytest.approx(10.0 + 2.0)
        assert result.totcpus == pytest.approx(4.0 + 2.0)
        assert result.lockios == pytest.approx(2.0)
        assert result.lockcpus == pytest.approx(2.0)
        assert result.usefulios == pytest.approx(10.0 / 2)
        assert result.usefulcpus == pytest.approx(4.0 / 2)
        assert result.throughput == 0.0
        assert math.isnan(result.response_time)

    def test_denial_rate_zero_without_requests(self, setup):
        env, params, _, collector = setup
        env.run(until=params.tmax)
        assert collector.finalize().denial_rate == 0.0


class TestWarmup:
    def test_pre_warmup_activity_discarded(self):
        params = SimulationParameters(
            dbsize=200, ltot=10, ntrans=2, maxtransize=20, npros=2,
            tmax=100.0, warmup=50.0,
        )
        env = Environment()
        machine = Machine(env, params.npros)
        collector = MetricsCollector(env, params, machine)

        def early_and_late(env):
            machine[0].io(10.0)  # entirely before warmup
            txn = Transaction(1, nu=5, lock_count=1)
            txn.arrival = 0.0
            collector.note_request()
            yield env.timeout(20)
            collector.note_completion(txn)
            yield env.timeout(40)  # now at t=60, inside the window
            machine[0].io(5.0)
            late = Transaction(2, nu=5, lock_count=1)
            late.arrival = 60.0
            collector.note_request()
            yield env.timeout(10)
            collector.note_completion(late)

        env.process(early_and_late(env))
        env.run(until=params.tmax)
        result = collector.finalize()
        assert result.totcom == 1  # only the post-warmup completion
        assert result.lock_requests == 1
        assert result.totios == pytest.approx(5.0)
        assert result.throughput == pytest.approx(1 / 50.0)
        assert result.response_time == pytest.approx(10.0)
