"""Unit tests for first-class transaction classes and workload mixes."""

import pytest

from repro.core.parameters import SimulationParameters
from repro.core.txnclass import (
    TransactionClass,
    WorkloadMix,
    format_class_specs,
    mixed_workload_classes,
    normalize_classes,
    parse_class_spec,
    parse_class_specs,
)

TWO_CLASS = "oltp:0.8:50,batch:0.2:1000"


class TestTransactionClass:
    def test_defaults(self):
        cls = TransactionClass("oltp", 1.0, 50)
        assert cls.size_dist == "uniform"
        assert cls.write_fraction == 1.0
        assert cls.granularity == "default"
        assert cls.priority == 0
        assert cls.backoff == 1.0
        assert cls.access_skew is None

    def test_mean_size_uniform(self):
        assert TransactionClass("c", 1.0, 9).mean_size == 5.0

    def test_mean_size_fixed(self):
        cls = TransactionClass("c", 1.0, 9, size_dist="fixed")
        assert cls.mean_size == 9.0
        assert cls.second_moment_size == 81.0

    def test_second_moment_uniform(self):
        # E[NU^2] for U{1..3} = (1 + 4 + 9) / 3
        cls = TransactionClass("c", 1.0, 3)
        assert cls.second_moment_size == pytest.approx(14 / 3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name=""),
            dict(name="a:b"),
            dict(name="a,b"),
            dict(fraction=0.0),
            dict(fraction=1.5),
            dict(maxtransize=0),
            dict(size_dist="zipf"),
            dict(write_fraction=1.2),
            dict(granularity="page"),
            dict(backoff=0.0),
            dict(access_skew=-1.0),
        ],
    )
    def test_validate_rejects(self, kwargs):
        base = dict(name="c", fraction=0.5, maxtransize=10)
        base.update(kwargs)
        with pytest.raises(ValueError):
            TransactionClass(**base).validate()

    def test_validate_enforces_dbsize_bound(self):
        cls = TransactionClass("c", 1.0, 100)
        cls.validate(dbsize=100)
        with pytest.raises(ValueError):
            cls.validate(dbsize=99)


class TestSpecStrings:
    def test_minimal_round_trip(self):
        cls = parse_class_spec("oltp:0.8:50")
        assert cls == TransactionClass("oltp", 0.8, 50)
        assert cls.spec() == "oltp:0.8:50"

    def test_full_round_trip(self):
        text = (
            "batch:0.2:1000:dist=fixed:write=0.5:gran=file:prio=2"
            ":backoff=1.5:skew=0.7"
        )
        cls = parse_class_spec(text)
        assert cls.size_dist == "fixed"
        assert cls.write_fraction == 0.5
        assert cls.granularity == "file"
        assert cls.priority == 2
        assert cls.backoff == 1.5
        assert cls.access_skew == 0.7
        assert parse_class_spec(cls.spec()) == cls

    def test_defaults_omitted_from_spec(self):
        assert TransactionClass("c", 0.5, 10).spec() == "c:0.5:10"

    def test_multi_spec_round_trip(self):
        classes = parse_class_specs(TWO_CLASS)
        assert [cls.name for cls in classes] == ["oltp", "batch"]
        assert format_class_specs(classes) == TWO_CLASS

    @pytest.mark.parametrize(
        "text",
        ["oltp", "oltp:0.8", "oltp:x:50", "oltp:0.8:y",
         "oltp:0.8:50:granfile", "oltp:0.8:50:color=red"],
    )
    def test_malformed_specs_raise(self, text):
        with pytest.raises(ValueError):
            parse_class_spec(text)


class TestWorkloadMix:
    def _mix(self):
        return WorkloadMix(parse_class_specs(TWO_CLASS))

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadMix(parse_class_specs("a:0.5:10,b:0.4:10"))

    def test_names_must_be_unique(self):
        with pytest.raises(ValueError):
            WorkloadMix(parse_class_specs("a:0.5:10,a:0.5:10"))

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMix(())

    def test_moments_are_mixture_weighted(self):
        mix = self._mix()
        assert mix.mean_size == pytest.approx(0.8 * 25.5 + 0.2 * 500.5)
        assert mix.second_moment_size == pytest.approx(
            0.8 * 51 * 101 / 6 + 0.2 * 1001 * 2001 / 6
        )

    def test_pick_inverts_cumulative_fractions(self):
        mix = self._mix()
        assert mix.pick(0.0).name == "oltp"
        assert mix.pick(0.79).name == "oltp"
        assert mix.pick(0.8).name == "batch"
        assert mix.pick(0.999).name == "batch"

    def test_population_counts_exact_split(self):
        assert self._mix().population_counts(10) == [8, 2]

    def test_population_counts_largest_remainder(self):
        mix = WorkloadMix(parse_class_specs("a:0.5:10,b:0.3:10,c:0.2:10"))
        # Quotas 3.5 / 2.1 / 1.4: a has the largest remainder.
        assert mix.population_counts(7) == [4, 2, 1]
        assert sum(mix.population_counts(7)) == 7

    def test_population_counts_small_population(self):
        mix = WorkloadMix(parse_class_specs("a:0.6:10,b:0.4:10"))
        assert mix.population_counts(1) == [1, 0]

    def test_by_name(self):
        mix = self._mix()
        assert mix.by_name("batch").maxtransize == 1000
        with pytest.raises(KeyError):
            mix.by_name("absent")

    def test_spec_round_trip(self):
        assert self._mix().spec() == TWO_CLASS


class TestNormalizeClasses:
    def test_none_and_empty(self):
        assert normalize_classes(None) == ()
        assert normalize_classes("") == ()
        assert normalize_classes(()) == ()

    def test_spec_string(self):
        classes = normalize_classes(TWO_CLASS)
        assert [cls.name for cls in classes] == ["oltp", "batch"]

    def test_mixed_iterable(self):
        classes = normalize_classes(
            [TransactionClass("a", 0.5, 10), "b:0.5:20",
             {"name": "c", "fraction": 0.1, "maxtransize": 5}]
        )
        assert [cls.name for cls in classes] == ["a", "b", "c"]

    def test_single_class_instance(self):
        cls = TransactionClass("solo", 1.0, 10)
        assert normalize_classes(cls) == (cls,)

    def test_workload_mix_passthrough(self):
        mix = WorkloadMix(parse_class_specs(TWO_CLASS))
        assert normalize_classes(mix) == mix.classes

    def test_unintelligible_item_raises(self):
        with pytest.raises(ValueError):
            normalize_classes([42])


class TestParameterIntegration:
    def test_params_accept_spec_string(self):
        params = SimulationParameters(
            workload="classes", txn_classes=TWO_CLASS
        )
        assert params.workload_mix.names == ("oltp", "batch")
        assert params.mean_transaction_size == pytest.approx(
            0.8 * 25.5 + 0.2 * 500.5
        )

    def test_classes_require_classes_workload(self):
        with pytest.raises(ValueError):
            SimulationParameters(txn_classes=TWO_CLASS)
        with pytest.raises(ValueError):
            SimulationParameters(workload="classes")

    def test_class_maxtransize_bounded_by_dbsize(self):
        with pytest.raises(ValueError):
            SimulationParameters(
                dbsize=500, workload="classes", txn_classes=TWO_CLASS
            )

    def test_as_dict_omits_empty_and_carries_spec(self):
        assert "txn_classes" not in SimulationParameters().as_dict()
        params = SimulationParameters(
            workload="classes", txn_classes=TWO_CLASS
        )
        assert params.as_dict()["txn_classes"] == TWO_CLASS

    def test_as_dict_round_trips(self):
        params = SimulationParameters(
            workload="classes", txn_classes=TWO_CLASS
        )
        rebuilt = SimulationParameters(**params.as_dict())
        assert rebuilt == params

    def test_workload_mix_none_when_single_class(self):
        assert SimulationParameters().workload_mix is None


class TestMixedWorkloadAlias:
    def test_two_class_mapping(self):
        params = SimulationParameters(workload="mixed")
        small, large = mixed_workload_classes(params)
        assert small.name == "small"
        assert small.fraction == params.mix_small_fraction
        assert small.maxtransize == params.mix_small_maxtransize
        assert large.name == "large"
        assert large.fraction == pytest.approx(
            1.0 - params.mix_small_fraction
        )
        assert large.maxtransize == params.mix_large_maxtransize
