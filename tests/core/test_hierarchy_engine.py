"""Unit and integration tests for the hierarchical conflict engine."""

import pytest

from repro.core import SimulationParameters, simulate
from repro.core.hierarchy_engine import ROOT, HierarchicalConflicts
from repro.core.transaction import Transaction
from repro.lockmgr.modes import LockMode


def txn(tid, granules, is_writer=True):
    return Transaction(
        tid, nu=len(granules), lock_count=len(granules),
        granules=granules, is_writer=is_writer,
    )


class TestStructure:
    def test_file_mapping_is_balanced(self):
        engine = HierarchicalConflicts(ltot=100, nfiles=4)
        sizes = {}
        for block in range(100):
            sizes.setdefault(engine.file_of(block), 0)
            sizes[engine.file_of(block)] += 1
        assert set(sizes) == {0, 1, 2, 3}
        assert all(size == 25 for size in sizes.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchicalConflicts(ltot=0, nfiles=1)
        with pytest.raises(ValueError):
            HierarchicalConflicts(ltot=10, nfiles=11)
        with pytest.raises(ValueError):
            HierarchicalConflicts(ltot=10, nfiles=2, escalation_threshold=-1)


class TestPlanning:
    def test_no_escalation_plan_counts_intentions(self):
        engine = HierarchicalConflicts(ltot=100, nfiles=4)
        # Three blocks in one file: root IX + file IX + 3 block X = 5.
        t = txn(1, [0, 1, 2])
        assert engine.planned_lock_count(t) == 5

    def test_escalation_collapses_block_locks(self):
        engine = HierarchicalConflicts(ltot=100, nfiles=4, escalation_threshold=3)
        # Three blocks in one file at threshold 3: root IX + file X = 2.
        t = txn(1, [0, 1, 2])
        assert engine.planned_lock_count(t) == 2

    def test_mixed_plan_escalates_only_dense_files(self):
        engine = HierarchicalConflicts(ltot=100, nfiles=4, escalation_threshold=3)
        # File 0 gets 3 blocks (escalates); file 1 gets 1 block (stays).
        t = txn(1, [0, 1, 2, 30])
        # root IX + file0 X + file1 IX + block30 X = 4
        assert engine.planned_lock_count(t) == 4

    def test_plan_requires_granules(self):
        engine = HierarchicalConflicts(ltot=10, nfiles=2)
        with pytest.raises(ValueError):
            engine.planned_lock_count(Transaction(1, nu=1, lock_count=1))

    def test_plan_memoised_until_release(self):
        engine = HierarchicalConflicts(ltot=10, nfiles=2, escalation_threshold=1)
        t = txn(1, [0])
        first = engine.planned_lock_count(t)
        assert engine.planned_lock_count(t) == first
        engine.request(t)
        engine.release(t)
        assert engine.planned_lock_count(t) == first


class TestConflicts:
    def test_disjoint_blocks_coexist(self):
        engine = HierarchicalConflicts(ltot=100, nfiles=4)
        assert engine.request(txn(1, [0, 1])) is None
        assert engine.request(txn(2, [2, 3])) is None
        assert engine.active_count == 2

    def test_same_block_conflicts(self):
        engine = HierarchicalConflicts(ltot=100, nfiles=4)
        first = txn(1, [5])
        engine.request(first)
        assert engine.request(txn(2, [5])) is first

    def test_escalated_file_lock_blocks_other_blocks_of_that_file(self):
        engine = HierarchicalConflicts(ltot=100, nfiles=4, escalation_threshold=2)
        big = txn(1, [0, 1, 2])  # escalates to file 0 (blocks 0..24)
        engine.request(big)
        # A different block of file 0 now conflicts (X file vs IX).
        assert engine.request(txn(2, [20])) is big
        # Blocks of file 1 are unaffected.
        assert engine.request(txn(3, [30])) is None

    def test_readers_share_even_when_escalated(self):
        engine = HierarchicalConflicts(ltot=100, nfiles=4, escalation_threshold=2)
        assert engine.request(txn(1, [0, 1, 2], is_writer=False)) is None
        assert engine.request(txn(2, [3, 4, 5], is_writer=False)) is None
        # S on file coexists with S on file.
        assert engine.active_count == 2

    def test_release_frees_everything(self):
        engine = HierarchicalConflicts(ltot=100, nfiles=4, escalation_threshold=2)
        big = txn(1, [0, 1, 2])
        engine.request(big)
        engine.release(big)
        assert engine.request(txn(2, [20])) is None
        assert len(engine.manager.table) > 0  # the new txn's locks

    def test_escalation_counter(self):
        engine = HierarchicalConflicts(ltot=100, nfiles=4, escalation_threshold=2)
        engine.request(txn(1, [0, 1]))
        assert engine.escalations == 1

    def test_root_intention_shared_by_all(self):
        engine = HierarchicalConflicts(ltot=100, nfiles=4)
        engine.request(txn(1, [0]))
        engine.request(txn(2, [30]))
        holders = engine.manager.table.holders(ROOT)
        assert len(holders) == 2
        assert all(mode is LockMode.IX for mode in holders.values())


class TestModelIntegration:
    @pytest.fixture
    def base(self):
        return SimulationParameters(
            dbsize=500, ltot=100, ntrans=6, maxtransize=50, npros=4,
            tmax=250.0, seed=13, conflict_engine="hierarchical",
        )

    def test_runs_and_completes(self, base):
        result = simulate(base)
        assert result.totcom > 0
        assert result.lock_escalations == 0  # threshold 0: disabled

    def test_escalation_cuts_lock_overhead(self, base):
        plain = simulate(base)
        escalated = simulate(base.replace(escalation_threshold=4))
        assert escalated.lock_escalations > 0
        assert escalated.lock_overhead < plain.lock_overhead

    def test_matches_flat_explicit_engine_without_escalation(self, base):
        hierarchical = simulate(base)
        flat = simulate(base.replace(conflict_engine="explicit"))
        assert hierarchical.throughput == pytest.approx(
            flat.throughput, rel=0.3
        )

    def test_nfiles_clamped_to_ltot(self):
        # ltot=1 with the default nfiles=20 must not crash.
        result = simulate(
            SimulationParameters(
                dbsize=500, ltot=1, ntrans=3, maxtransize=20, npros=2,
                tmax=100.0, conflict_engine="hierarchical",
            )
        )
        assert result.totcom > 0

    def test_escalation_helps_sequential_large_transactions(self):
        # Best placement packs a large transaction's blocks into one
        # or two files — exactly the case escalation is built for.
        params = SimulationParameters(
            dbsize=5000, ltot=500, ntrans=10, maxtransize=500, npros=10,
            tmax=250.0, seed=7, conflict_engine="hierarchical",
            placement="best", nfiles=10,
        )
        plain = simulate(params)
        escalated = simulate(params.replace(escalation_threshold=10))
        assert escalated.lock_escalations > 0
        assert escalated.lock_overhead < plain.lock_overhead
        assert escalated.throughput >= plain.throughput * 0.9
