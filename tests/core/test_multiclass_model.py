"""Multi-class workloads through the full simulation lifecycle."""

import pytest

from repro.core import SimulationParameters, simulate
from repro.policies.admission import PriorityAdmission

#: The golden configuration of tests/test_regression_golden.py with a
#: two-class mix on top.  Pinned outputs guard the per-class stream
#: discipline: any change to how classes consume randomness moves
#: these numbers.
MULTI_GOLDEN = SimulationParameters(
    dbsize=500, ltot=20, ntrans=5, maxtransize=50, npros=4,
    tmax=200.0, seed=7,
    workload="classes",
    txn_classes="oltp:0.8:20,batch:0.2:200:gran=file:prio=1",
)


@pytest.fixture(scope="module")
def multi_result():
    return simulate(MULTI_GOLDEN)


class TestMultiClassGolden:
    def test_pinned_totals(self, multi_result):
        assert multi_result.totcom == 130
        breakdown = {
            entry["txn_class"]: entry["totcom"]
            for entry in multi_result.per_class
        }
        assert breakdown == {"oltp": 107, "batch": 23}

    def test_per_class_sums_to_aggregate(self, multi_result):
        assert sum(
            entry["totcom"] for entry in multi_result.per_class
        ) == multi_result.totcom

    def test_deterministic_rerun(self, multi_result):
        assert simulate(MULTI_GOLDEN).as_dict() == multi_result.as_dict()

    def test_value_supports_suffixed_fields(self, multi_result):
        assert multi_result.value("totcom__oltp") == 107
        assert multi_result.value("throughput__batch") == pytest.approx(
            23 / 200.0
        )

    def test_value_absent_class_is_nan(self, multi_result):
        assert multi_result.value("totcom__absent") != multi_result.value(
            "totcom__absent"
        )

    def test_as_dict_appends_suffixed_columns(self, multi_result):
        row = multi_result.as_dict()
        assert row["totcom__oltp"] == 107
        assert row["totcom__batch"] == 23
        assert row["txn_classes"] == MULTI_GOLDEN.as_dict()["txn_classes"]

    def test_single_class_rows_carry_no_class_columns(self):
        row = simulate(MULTI_GOLDEN.replace(
            workload="uniform", txn_classes=()
        )).as_dict()
        assert not [key for key in row if "__" in key]
        assert "txn_classes" not in row


class TestClassSemantics:
    def test_class_population_is_fixed(self):
        # Closed system: completions replace like with like, so both
        # classes complete work over the whole horizon.
        result = simulate(MULTI_GOLDEN)
        for entry in result.per_class:
            assert entry["totcom"] > 0

    def test_class_sizes_respect_bounds(self):
        # oltp <= 20 blocks and batch <= 200: response times must
        # reflect the size gap (batch markedly slower).
        result = simulate(MULTI_GOLDEN)
        oltp = next(
            e for e in result.per_class if e["txn_class"] == "oltp"
        )
        batch = next(
            e for e in result.per_class if e["txn_class"] == "batch"
        )
        assert batch["response_time"] > oltp["response_time"]

    def test_per_class_backoff_scales_restart_delay(self):
        # A huge backoff multiplier on one class slows its restarts
        # under the no-waiting protocol; the run still completes and
        # carries both classes.
        params = MULTI_GOLDEN.replace(
            protocol="no-waiting",
            txn_classes="oltp:0.8:20,batch:0.2:200:backoff=25",
        )
        result = simulate(params)
        assert len(result.per_class) == 2
        assert result.totcom > 0

    def test_hierarchical_gran_preference_escalates(self):
        params = MULTI_GOLDEN.replace(
            conflict_engine="hierarchical",
            nfiles=4,
            escalation_threshold=0,
            txn_classes="oltp:0.8:20:gran=block,batch:0.2:200:gran=file",
        )
        result = simulate(params)
        # threshold=0 means only the batch class's file preference can
        # escalate; it commits, so escalations must be recorded.
        assert result.lock_escalations > 0


class TestPriorityAdmission:
    class _Txn:
        def __init__(self, priority):
            self.priority = priority

    def test_selects_highest_priority_first(self):
        admission = PriorityAdmission()
        pending = [self._Txn(0), self._Txn(2), self._Txn(1)]
        assert admission.select(pending, in_flight=0) == 1

    def test_fcfs_within_a_priority(self):
        admission = PriorityAdmission()
        first = self._Txn(1)
        pending = [self._Txn(0), first, self._Txn(1)]
        assert pending[admission.select(pending, in_flight=0)] is first

    def test_honours_mpl_limit(self):
        admission = PriorityAdmission(mpl_limit=2)
        pending = [self._Txn(3)]
        assert admission.select(pending, in_flight=2) is None

    def test_classless_transactions_default_to_zero(self):
        from repro.core.transaction import Transaction

        txn = Transaction(tid=1, nu=3, lock_count=1)
        assert txn.priority == 0
        assert txn.class_name is None

    def test_end_to_end_priority_run(self):
        result = simulate(
            MULTI_GOLDEN.replace(txn_policy="priority", mpl_limit=3)
        )
        assert result.totcom > 0
        assert len(result.per_class) == 2
