"""Unit tests for granule placement strategies."""

import random

import pytest

from repro.core.parameters import SimulationParameters
from repro.core.placement import (
    BestPlacement,
    RandomPlacement,
    WorstPlacement,
    make_placement,
)


@pytest.fixture
def rng():
    return random.Random(99)


class TestBestPlacement:
    def test_lock_count_formula(self):
        placement = BestPlacement(dbsize=5000, ltot=100)
        # A transaction touching 10% of the database needs 10% of locks.
        assert placement.lock_count(500) == 10
        assert placement.lock_count(1) == 1
        assert placement.lock_count(0) == 0

    def test_lock_count_rounds_up(self):
        placement = BestPlacement(dbsize=5000, ltot=100)
        assert placement.lock_count(501) == 11

    def test_whole_database_granule(self):
        placement = BestPlacement(dbsize=5000, ltot=1)
        assert placement.lock_count(1) == 1
        assert placement.lock_count(5000) == 1

    def test_entity_granules(self):
        placement = BestPlacement(dbsize=5000, ltot=5000)
        assert placement.lock_count(250) == 250

    def test_granules_contiguous_with_wraparound(self, rng):
        placement = BestPlacement(dbsize=100, ltot=10)
        for _ in range(50):
            granules = placement.granules(35, rng)  # needs ceil(3.5) = 4
            assert len(granules) == 4
            assert len(set(granules)) == 4
            # Contiguity mod ltot: consecutive differences are 1 (mod 10).
            for a, b in zip(granules, granules[1:]):
                assert (b - a) % 10 == 1

    def test_granules_within_range(self, rng):
        placement = BestPlacement(dbsize=100, ltot=10)
        granules = placement.granules(100, rng)
        assert set(granules) == set(range(10))


class TestWorstPlacement:
    def test_lock_count_min_rule(self):
        placement = WorstPlacement(dbsize=5000, ltot=100)
        assert placement.lock_count(50) == 50
        assert placement.lock_count(100) == 100
        assert placement.lock_count(500) == 100  # capped at ltot

    def test_small_transaction_locks_per_entity(self):
        placement = WorstPlacement(dbsize=5000, ltot=5000)
        assert placement.lock_count(37) == 37

    def test_granules_distinct_and_sized(self, rng):
        placement = WorstPlacement(dbsize=5000, ltot=100)
        granules = placement.granules(30, rng)
        assert len(granules) == 30
        assert len(set(granules)) == 30
        assert all(0 <= g < 100 for g in granules)

    def test_oversized_transaction_locks_everything(self, rng):
        placement = WorstPlacement(dbsize=5000, ltot=10)
        assert placement.granules(500, rng) == list(range(10))


class TestRandomPlacement:
    def test_lock_count_is_yao_expectation(self):
        placement = RandomPlacement(dbsize=5000, ltot=100)
        value = placement.lock_count(250)
        # Touching 250 of 5000 entities with 50-entity granules leaves
        # almost no granule untouched... sanity-bound the expectation.
        assert 90 < value < 100

    def test_lock_count_zero(self):
        placement = RandomPlacement(dbsize=5000, ltot=100)
        assert placement.lock_count(0) == 0.0

    def test_single_entity_one_lock(self):
        placement = RandomPlacement(dbsize=5000, ltot=100)
        assert placement.lock_count(1) == pytest.approx(1.0)

    def test_granules_mean_matches_yao(self, rng):
        placement = RandomPlacement(dbsize=500, ltot=20)
        nu = 30
        expected = placement.lock_count(nu)
        samples = [len(placement.granules(nu, rng)) for _ in range(800)]
        assert sum(samples) / len(samples) == pytest.approx(expected, rel=0.05)

    def test_full_scan_touches_all_granules(self, rng):
        placement = RandomPlacement(dbsize=500, ltot=20)
        assert placement.granules(500, rng) == list(range(20))

    def test_non_divisible_dbsize(self, rng):
        placement = RandomPlacement(dbsize=503, ltot=20)
        granules = placement.granules(100, rng)
        assert all(0 <= g < 20 for g in granules)
        value = placement.lock_count(100)
        assert 0 < value <= 20


class TestOrdering:
    """The paper's placement hierarchy: best <= random <= worst."""

    @pytest.mark.parametrize("ltot", [1, 10, 100, 1000, 5000])
    @pytest.mark.parametrize("nu", [1, 25, 250, 2500])
    def test_best_le_random_le_worst(self, ltot, nu):
        best = BestPlacement(5000, ltot).lock_count(nu)
        rand = RandomPlacement(5000, ltot).lock_count(nu)
        worst = WorstPlacement(5000, ltot).lock_count(nu)
        assert best <= rand + 1e-9
        assert rand <= worst + 1e-9

    @pytest.mark.parametrize("ltot", [1, 10, 100])
    def test_lock_count_monotone_in_nu(self, ltot):
        for strategy in (
            BestPlacement(5000, ltot),
            WorstPlacement(5000, ltot),
            RandomPlacement(5000, ltot),
        ):
            previous = 0
            for nu in (1, 10, 100, 1000, 5000):
                value = strategy.lock_count(nu)
                assert value >= previous - 1e-9
                previous = value


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("best", BestPlacement),
            ("worst", WorstPlacement),
            ("random", RandomPlacement),
        ],
    )
    def test_builds_right_class(self, name, cls):
        placement = make_placement(SimulationParameters(placement=name))
        assert isinstance(placement, cls)
        assert placement.dbsize == 5000
        assert placement.ltot == 100
