"""Boundary-condition tests of the simulation model."""

import math

import pytest

from repro.core import SimulationParameters, simulate


class TestDegenerateConfigurations:
    def test_single_transaction_never_conflicts(self):
        result = simulate(
            SimulationParameters(
                dbsize=500, ltot=50, ntrans=1, maxtransize=50, npros=4,
                tmax=200.0,
            )
        )
        assert result.lock_denials == 0
        assert result.denial_rate == 0.0
        assert result.mean_active <= 1.0

    def test_uniprocessor_is_the_ries_stonebraker_model(self):
        result = simulate(
            SimulationParameters(
                dbsize=500, ltot=50, ntrans=5, maxtransize=50, npros=1,
                tmax=200.0,
            )
        )
        assert result.totcom > 0
        # All work lands on the single node.
        assert result.totios <= 200.0 + 1e-9

    def test_single_entity_transactions(self):
        result = simulate(
            SimulationParameters(
                dbsize=500, ltot=500, ntrans=5, maxtransize=1, npros=4,
                tmax=100.0,
            )
        )
        assert result.totcom > 0
        # One-entity transactions need exactly one lock.
        assert result.mean_locks_held <= 5.0

    def test_database_of_one_entity(self):
        result = simulate(
            SimulationParameters(
                dbsize=1, ltot=1, ntrans=3, maxtransize=1, npros=2,
                tmax=100.0,
            )
        )
        assert result.totcom > 0
        assert result.mean_active <= 1.0  # perfectly serial

    def test_zero_lock_costs(self):
        result = simulate(
            SimulationParameters(
                dbsize=500, ltot=500, ntrans=5, maxtransize=50, npros=4,
                tmax=100.0, lcputime=0.0, liotime=0.0,
            )
        )
        assert result.lockios == 0.0
        assert result.lockcpus == 0.0
        assert result.lock_overhead == 0.0
        assert result.totcom > 0

    def test_zero_cpu_time_pure_io(self):
        result = simulate(
            SimulationParameters(
                dbsize=500, ltot=50, ntrans=5, maxtransize=50, npros=4,
                tmax=100.0, cputime=0.0, lcputime=0.0,
            )
        )
        assert result.totcpus == 0.0
        assert result.totcom > 0

    def test_zero_io_time_pure_cpu(self):
        result = simulate(
            SimulationParameters(
                dbsize=500, ltot=50, ntrans=5, maxtransize=50, npros=4,
                tmax=100.0, iotime=0.0, liotime=0.0,
            )
        )
        assert result.totios == 0.0
        assert result.totcom > 0

    def test_more_processors_than_entities_per_transaction(self):
        # NU < npros: trailing zero shares must be dropped cleanly.
        result = simulate(
            SimulationParameters(
                dbsize=500, ltot=50, ntrans=4, maxtransize=3, npros=16,
                tmax=100.0,
            )
        )
        assert result.totcom > 0

    def test_entity_level_locking_equals_dbsize(self):
        result = simulate(
            SimulationParameters(
                dbsize=200, ltot=200, ntrans=4, maxtransize=20, npros=2,
                tmax=100.0,
            )
        )
        assert result.totcom > 0

    def test_horizon_shorter_than_arrival_ramp(self):
        # ntrans = 50 arrive one unit apart but tmax = 10: only part
        # of the population ever enters; nothing breaks.
        result = simulate(
            SimulationParameters(
                dbsize=500, ltot=50, ntrans=50, maxtransize=10, npros=2,
                tmax=10.0,
            )
        )
        assert result.totcom >= 0
        assert result.mean_pending <= 50


class TestWarmupEdges:
    def test_warmup_nearly_at_horizon(self):
        params = SimulationParameters(
            dbsize=500, ltot=50, ntrans=5, maxtransize=50, npros=4,
            tmax=100.0, warmup=99.0,
        )
        result = simulate(params)
        # A one-unit window may contain zero completions; the result
        # must still be well-formed.
        assert result.totcom >= 0
        assert result.totios <= 4 * 1.0 + 1e-6
        if result.totcom == 0:
            assert math.isnan(result.response_time)

    def test_zero_warmup_matches_default(self):
        params = SimulationParameters(
            dbsize=500, ltot=50, ntrans=5, maxtransize=50, npros=4,
            tmax=100.0,
        )
        a = simulate(params)
        b = simulate(params.replace(warmup=0.0))
        assert a.totcom == b.totcom


class TestCostExtremes:
    def test_lock_io_dominates_when_huge(self):
        result = simulate(
            SimulationParameters(
                dbsize=500, ltot=500, ntrans=5, maxtransize=50, npros=2,
                tmax=100.0, liotime=2.0,
            )
        )
        # Lock work swamps the disks.
        assert result.lockios > result.totios * 0.8

    def test_tiny_horizon(self):
        result = simulate(
            SimulationParameters(
                dbsize=100, ltot=10, ntrans=2, maxtransize=5, npros=2,
                tmax=1.0,
            )
        )
        assert result.totcom >= 0

    def test_throughput_zero_when_nothing_completes(self):
        # Enormous transactions on a tiny horizon.
        result = simulate(
            SimulationParameters(
                dbsize=5000, ltot=1, ntrans=2, maxtransize=5000,
                npros=1, tmax=5.0, workload="fixed",
            )
        )
        assert result.totcom == 0
        assert result.throughput == 0.0
        assert math.isnan(result.response_time)


class TestEngineEdgeAgreement:
    @pytest.mark.parametrize("engine", ["probabilistic", "explicit"])
    def test_ltot_one_serialises_in_both_engines(self, engine):
        result = simulate(
            SimulationParameters(
                dbsize=500, ltot=1, ntrans=6, maxtransize=20, npros=2,
                tmax=150.0, conflict_engine=engine,
            )
        )
        assert result.mean_active <= 1.0 + 1e-9

    @pytest.mark.parametrize("engine", ["probabilistic", "explicit"])
    def test_single_txn_full_scan_locks_everything(self, engine):
        result = simulate(
            SimulationParameters(
                dbsize=100, ltot=100, ntrans=1, maxtransize=100,
                npros=2, tmax=100.0, workload="fixed",
                conflict_engine=engine,
            )
        )
        assert result.max_locks_held == pytest.approx(100)
