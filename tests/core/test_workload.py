"""Unit tests for transaction-size distributions."""

import random

import pytest

from repro.core.parameters import SimulationParameters
from repro.core.workload import FixedSizes, MixedSizes, UniformSizes, make_size_sampler


@pytest.fixture
def rng():
    return random.Random(123)


class TestUniformSizes:
    def test_bounds(self, rng):
        sampler = UniformSizes(50)
        samples = [sampler.sample(rng) for _ in range(2000)]
        assert min(samples) >= 1
        assert max(samples) <= 50

    def test_mean_close_to_theory(self, rng):
        sampler = UniformSizes(100)
        samples = [sampler.sample(rng) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(sampler.mean, rel=0.05)

    def test_mean_property(self):
        assert UniformSizes(500).mean == 250.5

    def test_invalid_max_rejected(self):
        with pytest.raises(ValueError):
            UniformSizes(0)

    def test_degenerate_single_size(self, rng):
        sampler = UniformSizes(1)
        assert all(sampler.sample(rng) == 1 for _ in range(10))


class TestMixedSizes:
    def test_bounds_cover_both_classes(self, rng):
        sampler = MixedSizes(0.8, 50, 500)
        samples = [sampler.sample(rng) for _ in range(5000)]
        assert min(samples) >= 1
        assert max(samples) <= 500
        assert any(s > 50 for s in samples)  # some large ones appear

    def test_mix_fraction_respected(self, rng):
        sampler = MixedSizes(0.8, 50, 500)
        samples = [sampler.sample(rng) for _ in range(10000)]
        large = sum(1 for s in samples if s > 50)
        # Large draws can only come from the 20% class, and a large
        # draw exceeds 50 with probability 0.9.
        assert large / len(samples) == pytest.approx(0.2 * 0.9, abs=0.02)

    def test_mean_matches_paper_mix(self):
        sampler = MixedSizes(0.8, 50, 500)
        assert sampler.mean == pytest.approx(0.8 * 25.5 + 0.2 * 250.5)

    def test_all_small_fraction(self, rng):
        sampler = MixedSizes(1.0, 50, 500)
        assert all(sampler.sample(rng) <= 50 for _ in range(500))

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            MixedSizes(small_fraction=2.0)


class TestFixedSizes:
    def test_always_the_same(self, rng):
        sampler = FixedSizes(42)
        assert all(sampler.sample(rng) == 42 for _ in range(10))
        assert sampler.mean == 42.0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            FixedSizes(0)


class TestTraceSizes:
    def test_replays_in_order_and_wraps(self, rng):
        from repro.core.workload import TraceSizes

        sampler = TraceSizes([3, 7, 11])
        drawn = [sampler.sample(rng) for _ in range(7)]
        assert drawn == [3, 7, 11, 3, 7, 11, 3]

    def test_mean(self):
        from repro.core.workload import TraceSizes

        assert TraceSizes([2, 4, 6]).mean == 4.0

    def test_validation(self):
        from repro.core.workload import TraceSizes

        with pytest.raises(ValueError):
            TraceSizes([])
        with pytest.raises(ValueError):
            TraceSizes([1, 0])

    def test_from_csv(self, tmp_path, rng):
        from repro.core.workload import TraceSizes

        path = tmp_path / "trace.csv"
        path.write_text("txn,nu\n1,5\n2,9\n")
        sampler = TraceSizes.from_csv(path)
        assert sampler.sample(rng) == 5
        assert sampler.sample(rng) == 9

    def test_drives_the_model(self, rng):
        from repro.core.model import LockingGranularityModel
        from repro.core.workload import TraceSizes

        params = SimulationParameters(
            dbsize=200, ltot=10, ntrans=3, maxtransize=20, npros=2,
            tmax=100.0,
        )
        model = LockingGranularityModel(
            params, size_sampler=TraceSizes([5, 10, 15])
        )
        result = model.run()
        assert result.totcom > 0

    def test_identical_traces_identical_results(self):
        from repro.core.model import LockingGranularityModel
        from repro.core.workload import TraceSizes

        params = SimulationParameters(
            dbsize=200, ltot=10, ntrans=3, maxtransize=20, npros=2,
            tmax=100.0,
        )
        a = LockingGranularityModel(
            params, size_sampler=TraceSizes([5, 10, 15])
        ).run()
        b = LockingGranularityModel(
            params, size_sampler=TraceSizes([5, 10, 15])
        ).run()
        assert a.totcom == b.totcom
        assert a.response_time == b.response_time


class TestFactory:
    def test_uniform(self):
        sampler = make_size_sampler(SimulationParameters(workload="uniform"))
        assert isinstance(sampler, UniformSizes)
        assert sampler.maxtransize == 500

    def test_mixed(self):
        sampler = make_size_sampler(SimulationParameters(workload="mixed"))
        assert isinstance(sampler, MixedSizes)
        assert sampler.small.maxtransize == 50
        assert sampler.large.maxtransize == 500

    def test_fixed(self):
        sampler = make_size_sampler(
            SimulationParameters(workload="fixed", maxtransize=7)
        )
        assert isinstance(sampler, FixedSizes)
        assert sampler.size == 7
