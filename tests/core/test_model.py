"""Integration tests of the full simulation model."""

import pytest

from repro.core import (
    LockingGranularityModel,
    SimulationParameters,
    simulate,
    simulate_replications,
)


class TestBasicRuns:
    def test_completes_transactions(self, fast_params):
        result = simulate(fast_params)
        assert result.totcom > 0
        assert result.throughput == pytest.approx(
            result.totcom / fast_params.tmax
        )

    def test_deterministic_for_fixed_seed(self, fast_params):
        a = simulate(fast_params)
        b = simulate(fast_params)
        assert a.totcom == b.totcom
        assert a.throughput == b.throughput
        assert a.response_time == b.response_time
        assert a.lockios == b.lockios

    def test_different_seeds_differ(self, fast_params):
        a = simulate(fast_params)
        b = simulate(fast_params.replace(seed=fast_params.seed + 1))
        assert (a.totcom, a.response_time) != (b.totcom, b.response_time)

    def test_model_is_single_use(self, fast_params):
        model = LockingGranularityModel(fast_params)
        model.run()
        with pytest.raises(RuntimeError):
            model.run()

    def test_simulate_kwargs_shortcut(self):
        result = simulate(ltot=10, npros=2, tmax=100, dbsize=500,
                          maxtransize=50, ntrans=3)
        assert result.params.ltot == 10
        assert result.totcom > 0

    def test_simulate_params_plus_overrides(self, fast_params):
        result = simulate(fast_params, ltot=5)
        assert result.params.ltot == 5


class TestOutputIdentities:
    def test_useful_times_identity(self, fast_params):
        result = simulate(fast_params)
        npros = fast_params.npros
        assert result.usefulcpus == pytest.approx(
            (result.totcpus - result.lockcpus) / npros
        )
        assert result.usefulios == pytest.approx(
            (result.totios - result.lockios) / npros
        )

    def test_busy_time_bounded_by_capacity(self, fast_params):
        result = simulate(fast_params)
        capacity = fast_params.npros * fast_params.tmax
        assert 0 <= result.totcpus <= capacity + 1e-6
        assert 0 <= result.totios <= capacity + 1e-6
        assert 0 <= result.lockcpus <= result.totcpus + 1e-9
        assert 0 <= result.lockios <= result.totios + 1e-9

    def test_utilizations_in_unit_range(self, fast_params):
        result = simulate(fast_params)
        assert 0 <= result.cpu_utilization <= 1 + 1e-9
        assert 0 <= result.io_utilization <= 1 + 1e-9

    def test_denials_do_not_exceed_requests(self, fast_params):
        result = simulate(fast_params)
        assert 0 <= result.lock_denials <= result.lock_requests
        assert result.lock_requests >= result.totcom

    def test_mean_active_bounded_by_population(self, fast_params):
        result = simulate(fast_params)
        assert 0 <= result.mean_active <= fast_params.ntrans

    def test_response_time_positive(self, fast_params):
        result = simulate(fast_params)
        assert result.response_time > 0

    def test_lock_table_occupancy_bounds(self, fast_params):
        result = simulate(fast_params)
        # Occupancy can never exceed every transaction holding its
        # maximal lock set.
        cap = fast_params.ntrans * fast_params.ltot
        assert 0 < result.mean_locks_held <= result.max_locks_held <= cap

    def test_occupancy_scales_with_granularity(self):
        # Finer granularity -> each transaction holds more locks ->
        # the lock table must be bigger (the paper's storage argument).
        base = SimulationParameters(
            dbsize=500, ntrans=5, maxtransize=50, npros=4, tmax=200.0,
            seed=7,
        )
        coarse = simulate(base.replace(ltot=5))
        fine = simulate(base.replace(ltot=500))
        assert fine.mean_locks_held > coarse.mean_locks_held
        assert fine.max_locks_held > coarse.max_locks_held

    def test_lock_work_accounting_matches_demand(self):
        # With the probabilistic engine and best placement, total lock
        # busy time must equal requests x LU x unit costs (all lock
        # work submitted is eventually served or still queued; with a
        # long drain margin the served share dominates).
        params = SimulationParameters(
            dbsize=500, ltot=1, ntrans=2, maxtransize=10, npros=2,
            tmax=500.0, seed=3,
        )
        result = simulate(params)
        # Every request asks exactly 1 lock (ltot=1, best placement).
        expected_io = result.lock_requests * 1 * params.liotime
        assert result.lockios <= expected_io + 1e-6
        assert result.lockios == pytest.approx(expected_io, rel=0.05)


class TestSerialRegime:
    def test_whole_database_lock_serialises(self):
        params = SimulationParameters(
            dbsize=500, ltot=1, ntrans=8, maxtransize=50, npros=4,
            tmax=300.0, seed=5,
        )
        result = simulate(params)
        # At most one transaction active at any instant.
        assert result.mean_active <= 1.0 + 1e-9
        assert result.denial_rate > 0.3  # most requests denied

    def test_fine_granularity_allows_concurrency(self):
        params = SimulationParameters(
            dbsize=500, ltot=500, ntrans=8, maxtransize=10, npros=4,
            tmax=300.0, seed=5,
        )
        result = simulate(params)
        assert result.mean_active > 1.5


class TestWarmup:
    def test_warmup_discards_early_stats(self, fast_params):
        with_warmup = simulate(fast_params.replace(warmup=50.0))
        without = simulate(fast_params)
        assert with_warmup.totcom < without.totcom
        # Throughput normalised by the measured window stays similar.
        assert with_warmup.throughput == pytest.approx(
            without.throughput, rel=0.35
        )

    def test_warmup_busy_times_within_window(self, fast_params):
        params = fast_params.replace(warmup=100.0)
        result = simulate(params)
        window = params.tmax - params.warmup
        assert result.totcpus <= params.npros * window + 1e-6
        assert result.totios <= params.npros * window + 1e-6


class TestReplications:
    def test_replication_count_and_params(self, fast_params):
        replicated = simulate_replications(fast_params, replications=3)
        assert len(replicated) == 3
        assert replicated.params == fast_params

    def test_replications_use_distinct_seeds(self, fast_params):
        replicated = simulate_replications(fast_params, replications=3)
        values = replicated.samples("totcom")
        assert len(set(values)) > 1

    def test_confidence_interval_brackets_mean(self, fast_params):
        replicated = simulate_replications(fast_params, replications=4)
        low, high = replicated.ci("throughput")
        assert low <= replicated.mean("throughput") <= high

    def test_invalid_replication_count(self, fast_params):
        with pytest.raises(ValueError):
            simulate_replications(fast_params, replications=0)


class TestPopulationInvariant:
    def test_population_is_constant(self):
        """pending + blocked-or-requesting + active == ntrans, sampled
        via mean populations: mean_active can never exceed ntrans and
        completions keep flowing (the closed loop never leaks)."""
        params = SimulationParameters(
            dbsize=500, ltot=20, ntrans=6, maxtransize=50, npros=3,
            tmax=400.0, seed=9,
        )
        model = LockingGranularityModel(params)
        result = model.run()
        assert result.totcom > 10
        assert result.mean_active <= params.ntrans
        assert result.mean_pending <= params.ntrans
        assert result.mean_blocked <= params.ntrans
