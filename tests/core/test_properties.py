"""Property-based tests of the core model (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SimulationParameters, simulate
from repro.core.placement import BestPlacement, RandomPlacement, WorstPlacement
from repro.core.transaction import split_entities


@st.composite
def small_configs(draw):
    """Random, cheap-to-run simulation parameter sets."""
    dbsize = draw(st.integers(min_value=20, max_value=400))
    ltot = draw(st.integers(min_value=1, max_value=dbsize))
    maxtransize = draw(st.integers(min_value=1, max_value=min(dbsize, 40)))
    return SimulationParameters(
        dbsize=dbsize,
        ltot=ltot,
        ntrans=draw(st.integers(min_value=1, max_value=6)),
        maxtransize=maxtransize,
        npros=draw(st.integers(min_value=1, max_value=5)),
        tmax=draw(st.sampled_from([60.0, 100.0])),
        placement=draw(st.sampled_from(["best", "worst", "random"])),
        partitioning=draw(st.sampled_from(["horizontal", "random"])),
        conflict_engine=draw(st.sampled_from(["probabilistic", "explicit"])),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )


class TestModelInvariants:
    @given(small_configs())
    @settings(max_examples=25, deadline=None)
    def test_output_identities_hold_for_any_config(self, params):
        result = simulate(params)
        npros = params.npros
        horizon = params.tmax
        # The paper's defining identities.
        assert result.usefulcpus * npros == (
            result.totcpus - result.lockcpus
        ) or math.isclose(
            result.usefulcpus * npros,
            result.totcpus - result.lockcpus,
            rel_tol=1e-9,
            abs_tol=1e-9,
        )
        assert math.isclose(
            result.throughput, result.totcom / horizon, rel_tol=1e-12
        )
        # Physical bounds.
        assert 0 <= result.lockcpus <= result.totcpus + 1e-9
        assert 0 <= result.lockios <= result.totios + 1e-9
        assert result.totcpus <= npros * horizon + 1e-6
        assert result.totios <= npros * horizon + 1e-6
        assert 0 <= result.lock_denials <= result.lock_requests
        assert 0 <= result.mean_active <= params.ntrans + 1e-9
        assert result.deadlock_aborts == 0  # preclaim never deadlocks

    @given(small_configs())
    @settings(max_examples=10, deadline=None)
    def test_determinism_across_runs(self, params):
        a = simulate(params)
        b = simulate(params)
        assert a.totcom == b.totcom
        assert a.totcpus == b.totcpus
        assert a.lockios == b.lockios


class TestPlacementProperties:
    @given(
        dbsize=st.integers(min_value=1, max_value=5000),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_lock_count_bounds(self, dbsize, data):
        ltot = data.draw(st.integers(min_value=1, max_value=dbsize))
        nu = data.draw(st.integers(min_value=1, max_value=dbsize))
        best = BestPlacement(dbsize, ltot).lock_count(nu)
        worst = WorstPlacement(dbsize, ltot).lock_count(nu)
        rand = RandomPlacement(dbsize, ltot).lock_count(nu)
        assert 1 <= best <= ltot
        assert 1 <= worst <= ltot
        assert best <= rand <= worst
        assert rand <= min(nu, ltot)

    @given(
        dbsize=st.integers(min_value=2, max_value=500),
        seed=st.integers(min_value=0, max_value=1000),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_materialised_granules_valid(self, dbsize, seed, data):
        import random

        ltot = data.draw(st.integers(min_value=1, max_value=dbsize))
        nu = data.draw(st.integers(min_value=1, max_value=dbsize))
        rng = random.Random(seed)
        for strategy in (
            BestPlacement(dbsize, ltot),
            WorstPlacement(dbsize, ltot),
            RandomPlacement(dbsize, ltot),
        ):
            granules = strategy.granules(nu, rng)
            assert len(granules) == len(set(granules))
            assert all(0 <= g < ltot for g in granules)
            assert 1 <= len(granules) <= min(nu, ltot)


class TestSplitProperties:
    @given(
        nu=st.integers(min_value=0, max_value=10000),
        parts=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_split_conserves_and_balances(self, nu, parts):
        shares = split_entities(nu, parts)
        assert sum(shares) == nu
        assert len(shares) == parts
        assert max(shares) - min(shares) <= 1
        assert all(share >= 0 for share in shares)
