"""Bit-identity of results across scheduler and conflict backends.

The calendar scheduler and the vectorized conflict engine are
*performance* features: selecting them must never move a single
number.  These tests run the golden configuration under each backend
and require byte-identical results — the same guarantee the cache
digests rely on (a cached artifact produced under one backend must be
valid under every other).
"""

import pytest

from repro.core import SimulationParameters, simulate
from repro.experiments.cache import cache_key
from tests.policies.test_cache_digests import GOLDEN_DIGEST
from tests.test_regression_golden import GOLDEN_PARAMS


@pytest.fixture(scope="module")
def golden_heap():
    return simulate(GOLDEN_PARAMS)


class TestCalendarIdentity:
    def test_golden_run_is_identical(self, golden_heap, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_SCHED", "calendar")
        result = simulate(GOLDEN_PARAMS)
        assert result.totcom == 129
        assert result.as_dict() == golden_heap.as_dict()

    def test_cache_digest_is_scheduler_independent(self, monkeypatch):
        # The content address depends on the physics configuration
        # only; a kernel-level scheduler switch must not fork caches.
        monkeypatch.setenv("REPRO_KERNEL_SCHED", "calendar")
        assert cache_key(GOLDEN_PARAMS) == GOLDEN_DIGEST

    def test_variant_run_is_identical(self, monkeypatch):
        params = GOLDEN_PARAMS.replace(
            conflict_engine="explicit", protocol="incremental"
        )
        heap = simulate(params)
        monkeypatch.setenv("REPRO_KERNEL_SCHED", "calendar")
        calendar = simulate(params)
        assert heap.as_dict() == calendar.as_dict()


class TestVectorizedIdentity:
    """The numpy scan must reproduce the scalar engine bit-for-bit.

    The two engines differ only in the ``conflict_engine`` parameter
    echoed into ``as_dict``, so the comparison excludes params.
    """

    def _vector_dict(self, monkeypatch=None, batch=None, cutoff=None):
        params = GOLDEN_PARAMS.replace(conflict_engine="vectorized")
        if batch is not None:
            monkeypatch.setenv("REPRO_CONFLICT_BATCH", str(batch))
        if cutoff is not None:
            monkeypatch.setenv("REPRO_CONFLICT_CUTOFF", str(cutoff))
        return simulate(params).as_dict(include_params=False)

    def test_default_batch_is_identical(self, golden_heap):
        assert self._vector_dict() == golden_heap.as_dict(
            include_params=False
        )

    def test_batch_one_is_identical(self, golden_heap, monkeypatch):
        # batch=1 disables draw prefetching: the engine consumes the
        # random stream exactly like the scalar one, draw by draw.
        assert self._vector_dict(
            monkeypatch, batch=1
        ) == golden_heap.as_dict(include_params=False)

    def test_forced_numpy_scan_is_identical(self, golden_heap, monkeypatch):
        # cutoff=0 forces the searchsorted path for every request,
        # however small the active set.
        assert self._vector_dict(
            monkeypatch, batch=256, cutoff=0
        ) == golden_heap.as_dict(include_params=False)

    def test_calendar_plus_vectorized_is_identical(
        self, golden_heap, monkeypatch
    ):
        monkeypatch.setenv("REPRO_KERNEL_SCHED", "calendar")
        assert self._vector_dict() == golden_heap.as_dict(
            include_params=False
        )

    def test_vectorized_does_not_move_cache_digest_fields(self):
        # Same physics, distinct address: the conflict_engine field is
        # part of the parameter hash, so vectorized runs cache
        # separately (by design — selecting it is a params change).
        params = GOLDEN_PARAMS.replace(conflict_engine="vectorized")
        assert cache_key(params) != GOLDEN_DIGEST
        assert cache_key(GOLDEN_PARAMS) == GOLDEN_DIGEST


class TestCoverageIdentity:
    """Parity on the code paths the flat golden run never visits.

    The golden configuration exercises preclaim + probabilistic
    conflicts only; these pairs force the hierarchical engine (with
    real escalations), the deadlock detector's victim selection, the
    wound-wait abort path, and a multi-class mix — asserting each
    path actually fired, then requiring byte-identical results under
    the calendar scheduler.
    """

    def _pair(self, monkeypatch, params):
        monkeypatch.delenv("REPRO_KERNEL_SCHED", raising=False)
        heap = simulate(params)
        monkeypatch.setenv("REPRO_KERNEL_SCHED", "calendar")
        calendar = simulate(params)
        monkeypatch.delenv("REPRO_KERNEL_SCHED", raising=False)
        assert heap.as_dict() == calendar.as_dict()
        return heap

    def test_hierarchical_engine_identity(self, monkeypatch):
        result = self._pair(
            monkeypatch,
            GOLDEN_PARAMS.replace(
                conflict_engine="hierarchical",
                nfiles=4,
                escalation_threshold=2,
            ),
        )
        assert result.lock_escalations > 0

    def test_deadlock_victim_identity(self, monkeypatch):
        result = self._pair(
            monkeypatch,
            SimulationParameters(
                dbsize=200, ltot=20, ntrans=12, maxtransize=100,
                npros=4, tmax=200.0, seed=1,
                conflict_engine="explicit", protocol="incremental",
            ),
        )
        assert result.deadlock_aborts > 0

    def test_wound_wait_identity(self, monkeypatch):
        result = self._pair(
            monkeypatch,
            SimulationParameters(
                dbsize=200, ltot=20, ntrans=10, maxtransize=50,
                npros=4, tmax=200.0, seed=5,
                conflict_engine="explicit", protocol="wound-wait",
            ),
        )
        assert result.deadlock_aborts > 0

    def test_multi_class_identity(self, monkeypatch):
        result = self._pair(
            monkeypatch,
            GOLDEN_PARAMS.replace(
                workload="classes",
                txn_classes="oltp:0.8:20,batch:0.2:200:gran=file:prio=1",
            ),
        )
        assert len(result.per_class) == 2

    def test_multi_class_hierarchical_identity(self, monkeypatch):
        # Per-class granularity preferences drive the hierarchical
        # planner; both schedulers must agree on every escalation.
        result = self._pair(
            monkeypatch,
            GOLDEN_PARAMS.replace(
                conflict_engine="hierarchical",
                nfiles=4,
                escalation_threshold=3,
                workload="classes",
                txn_classes=(
                    "oltp:0.7:20:gran=block,batch:0.3:200:gran=file"
                ),
            ),
        )
        assert result.lock_escalations > 0


def test_seed_sweep_identity(monkeypatch):
    """A spread of seeds and sizes, heap vs calendar, quick horizon."""
    for seed in (1, 3, 11):
        params = SimulationParameters(
            dbsize=200,
            ltot=10,
            ntrans=4,
            maxtransize=20,
            npros=2,
            tmax=60.0,
            seed=seed,
        )
        monkeypatch.delenv("REPRO_KERNEL_SCHED", raising=False)
        heap = simulate(params)
        monkeypatch.setenv("REPRO_KERNEL_SCHED", "calendar")
        calendar = simulate(params)
        monkeypatch.delenv("REPRO_KERNEL_SCHED", raising=False)
        assert heap.as_dict() == calendar.as_dict(), seed
