"""Tests for the distributed commit layer (local, 2pc, primary-copy)."""

import pytest

from repro.core.model import LockingGranularityModel, simulate
from repro.core.parameters import SimulationParameters
from repro.core.results import RESULT_FIELDS
from repro.des.trace import Trace
from repro.faults.plan import FaultPlan, PartitionSpec
from repro.policies import PARAM_FIELDS, registry

#: A small distributed workload that completes a few hundred commits.
_BASE = dict(
    dbsize=400, ltot=20, ntrans=4, maxtransize=24, npros=6,
    tmax=150.0, seed=11, nnodes=3, net_latency=0.02,
)

#: A partition plan that cuts site 2 off for part of the horizon.
_CUT = FaultPlan(
    partitions=(PartitionSpec(mtbf=40.0, duration=15.0, first_after=20.0),)
)


def _run(fault_plan=None, trace=None, **changes):
    params = SimulationParameters(**{**_BASE, **changes})
    return LockingGranularityModel(
        params, fault_plan=fault_plan, trace=trace
    ).run()


class TestRegistryAndValidation:
    def test_commit_layer_registered(self):
        assert set(registry.names("commit")) == {
            "local", "2pc", "primary-copy"
        }
        assert PARAM_FIELDS["commit"] == "commit_protocol"

    def test_distributed_protocol_needs_a_cluster(self):
        with pytest.raises(ValueError):
            SimulationParameters(commit_protocol="2pc")  # nnodes=1

    def test_nnodes_and_latency_validation(self):
        with pytest.raises(ValueError):
            SimulationParameters(nnodes=0)
        with pytest.raises(ValueError):
            SimulationParameters(net_latency=-1.0)
        with pytest.raises(ValueError):
            SimulationParameters(commit_timeout=0.0)


class TestLocalCommitNeutrality:
    def test_single_node_outputs_unchanged_by_the_layer(self):
        """The local protocol consumes no events and no variates, so a
        multi-node cluster running it matches the single-node run
        output for output (only the params differ)."""
        single = simulate(
            dbsize=400, ltot=20, ntrans=4, maxtransize=24, npros=6,
            tmax=150.0, seed=11,
        )
        clustered = _run(commit_protocol="local")
        for name in RESULT_FIELDS:
            if name in ("messages_sent", "messages_dropped"):
                continue
            assert getattr(single, name) == getattr(clustered, name), name
        assert clustered.messages_sent == 0


class TestTwoPhaseCommit:
    def test_message_cost_is_six_per_commit(self):
        """Presumed-abort 2PC on 3 sites: prepare + vote + commit to
        each of the two participants = 6 one-way messages."""
        result = _run(commit_protocol="2pc")
        assert result.totcom > 50
        assert result.commit_aborts == 0
        assert result.messages_sent == 6 * result.totcom
        assert result.messages_dropped == 0

    def test_commit_latency_is_the_vote_round_trip(self):
        """Presumed-abort: the coordinator blocks on the prepare/vote
        round only; the decision is sent asynchronously."""
        result = _run(commit_protocol="2pc")
        assert result.commit_latency == pytest.approx(
            2 * _BASE["net_latency"]
        )

    def test_partition_aborts_and_availability(self):
        faulted = _run(commit_protocol="2pc", fault_plan=_CUT)
        clean = _run(commit_protocol="2pc")
        assert faulted.commit_aborts > 0
        assert faulted.messages_dropped > 0
        assert faulted.partition_time > 0.0
        assert faulted.availability < 1.0
        assert faulted.totcom < clean.totcom

    def test_deterministic_under_faults(self):
        a = _run(commit_protocol="2pc", fault_plan=_CUT)
        b = _run(commit_protocol="2pc", fault_plan=_CUT)
        assert a.as_dict() == b.as_dict()


class TestPrimaryCopyCommit:
    def test_cheaper_than_2pc(self):
        pc = _run(commit_protocol="primary-copy")
        tpc = _run(commit_protocol="2pc")
        assert pc.messages_sent > 0
        assert pc.messages_sent < tpc.messages_sent
        assert pc.commit_latency < tpc.commit_latency

    def test_readers_never_pay_the_network(self):
        result = _run(commit_protocol="primary-copy", write_fraction=0.0)
        assert result.totcom > 50
        assert result.messages_sent == 0
        assert result.commit_latency == 0.0

    def test_majority_keeps_committing_under_partition(self):
        """The availability contrast the exhibit is about: 2PC stalls
        every writer during a partition; primary-copy only loses the
        minority component."""
        pc = _run(commit_protocol="primary-copy", fault_plan=_CUT)
        tpc = _run(commit_protocol="2pc", fault_plan=_CUT)
        assert pc.totcom > tpc.totcom
        assert pc.degraded_throughput > 0.0
        assert pc.commit_aborts > 0  # minority writers degraded

    def test_failover_election_when_primary_is_cut_off(self):
        """Isolating the primary (site 0) forces a majority-side
        election, visible as an ``election`` system event."""
        plan = FaultPlan(
            partitions=(
                PartitionSpec(
                    mtbf=5.0, duration=200.0, first_after=30.0,
                    groups=((1, 2), (0,)),
                ),
            )
        )
        trace = Trace()
        result = _run(
            commit_protocol="primary-copy", fault_plan=plan, trace=trace
        )
        elections = [r for r in trace if r.kind == "election"]
        assert elections
        assert elections[0].details["primary"] == 1
        assert elections[0].details["was"] == 0
        assert result.totcom > 0
