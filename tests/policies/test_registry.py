"""The policy registry: registration, resolution, errors, laziness."""

import pytest

from repro.policies import (
    PARAM_FIELDS,
    active_policies,
    policy_names,
    policy_versions,
    registry,
)
from repro.policies.registry import PolicyRegistry, UnknownPolicyError


class TestRegistration:
    def test_register_and_resolve_round_trip(self):
        reg = PolicyRegistry()

        class Thing:
            """A policy."""

        reg.register("cc", "thing", Thing)
        assert reg.resolve("cc", "thing") is Thing
        assert ("cc", "thing") in reg
        assert reg.names("cc") == ("thing",)
        assert reg.layers() == ("cc",)

    def test_register_as_decorator(self):
        reg = PolicyRegistry()

        @reg.register("cc", "decorated")
        class Thing:
            """A policy."""

        assert reg.resolve("cc", "decorated") is Thing

    def test_duplicate_registration_rejected_without_replace(self):
        reg = PolicyRegistry()
        reg.register("cc", "x", object)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("cc", "x", object)
        # But replace=True overrides (plugins must opt in explicitly).
        marker = object()
        reg.register("cc", "x", marker, replace=True)
        assert reg.resolve("cc", "x") is marker

    def test_lazy_string_target_resolves_on_first_use(self):
        reg = PolicyRegistry()
        reg.register("cc", "lazy", "repro.policies.cc:PreclaimCC")
        from repro.policies.cc import PreclaimCC

        assert reg.resolve("cc", "lazy") is PreclaimCC
        # Resolution is memoised: the entry now holds the object.
        assert reg.resolve("cc", "lazy") is PreclaimCC


class TestUnknownNames:
    def test_unknown_name_is_a_value_error_with_suggestions(self):
        with pytest.raises(UnknownPolicyError) as excinfo:
            registry.resolve("cc", "wond-wait")
        error = excinfo.value
        assert isinstance(error, ValueError)
        assert "wound-wait" in error.suggestions
        assert "wound-wait" in str(error)
        assert error.known == registry.names("cc")

    def test_unknown_layer_lists_nothing(self):
        with pytest.raises(UnknownPolicyError) as excinfo:
            registry.resolve("nonsense", "anything")
        assert excinfo.value.known == ()

    def test_no_suggestion_for_distant_name(self):
        with pytest.raises(UnknownPolicyError) as excinfo:
            registry.resolve("cc", "zzzzzz")
        assert excinfo.value.suggestions == ()


class TestBuiltins:
    def test_every_layer_has_builtin_policies(self):
        for layer in PARAM_FIELDS:
            assert policy_names(layer), "layer {} is empty".format(layer)

    def test_all_builtins_resolve_and_describe(self):
        for layer, name, doc in registry.describe():
            assert registry.resolve(layer, name) is not None
            assert doc, "{}/{} lacks a one-line doc".format(layer, name)

    def test_cc_protocols_present(self):
        assert set(policy_names("cc")) >= {
            "preclaim",
            "incremental",
            "no-waiting",
            "wound-wait",
        }


class TestParamsIntegration:
    def test_active_policies_reads_param_fields(self):
        from repro.core import SimulationParameters

        params = SimulationParameters(
            conflict_engine="explicit", protocol="wound-wait"
        )
        active = active_policies(params)
        assert active["cc"] == "wound-wait"
        assert active["conflict"] == "explicit"
        assert set(active) == set(PARAM_FIELDS)

    def test_unknown_protocol_rejected_with_suggestion(self):
        from repro.core import SimulationParameters

        with pytest.raises(ValueError, match="wound-wait"):
            SimulationParameters(protocol="wond-wait")

    def test_granule_protocols_require_explicit_engine(self):
        from repro.core import SimulationParameters

        with pytest.raises(ValueError, match="explicit"):
            SimulationParameters(protocol="wound-wait")

    def test_default_policy_versions_token_is_none(self):
        from repro.core import SimulationParameters

        assert policy_versions(SimulationParameters()) is None

    def test_nondefault_version_forks_only_its_cache_key(self):
        from repro.core import SimulationParameters
        from repro.experiments.cache import cache_key
        from repro.policies.cc import WoundWaitCC

        params = SimulationParameters(
            conflict_engine="explicit", protocol="wound-wait"
        )
        default_key = cache_key(SimulationParameters())
        original = cache_key(params)
        WoundWaitCC.version = 2
        try:
            assert cache_key(params) != original
            assert policy_versions(params) == {
                "cc": {"name": "wound-wait", "version": 2}
            }
            # The default configuration's address is untouched.
            assert cache_key(SimulationParameters()) == default_key
        finally:
            WoundWaitCC.version = 1
        assert cache_key(params) == original

    def test_manifest_names_active_policies(self):
        from repro.core import SimulationParameters
        from repro.obs.manifest import build_manifest

        manifest = build_manifest(SimulationParameters())
        assert manifest["policies"]["cc"] == "preclaim"
        assert manifest["policies"]["admission"] == "fcfs"
