"""Cross-protocol invariants: every registered CC protocol must obey
the model's safety properties on a contentious workload.

These tests iterate over ``registry.names("cc")``, so a protocol
registered by a plugin (or a future built-in) is automatically held to
the same bar: locks are never negative, committed work is consistent,
and the system makes progress instead of deadlocking or livelocking.
"""

import pytest

from repro.core import SimulationParameters
from repro.core.model import LockingGranularityModel
from repro.des.trace import Trace
from repro.policies import policy_names, registry

#: Small database + coarse locks + several transactions = contention.
CONTENTIOUS = dict(
    dbsize=100,
    ltot=5,
    ntrans=8,
    maxtransize=40,
    npros=3,
    tmax=150.0,
    seed=11,
)


def params_for(cc_name, **overrides):
    """A contentious parameter set valid for *cc_name*."""
    cc = registry.resolve("cc", cc_name)
    changes = dict(CONTENTIOUS)
    if getattr(cc, "needs_granules", False):
        changes["conflict_engine"] = "explicit"
    changes.update(overrides)
    return SimulationParameters(protocol=cc_name, **changes)


@pytest.mark.parametrize("cc_name", policy_names("cc"))
class TestEveryProtocol:
    def test_makes_progress_and_terminates(self, cc_name):
        """The run reaches tmax with completions, not a deadlock."""
        trace = Trace()
        model = LockingGranularityModel(params_for(cc_name), trace=trace)
        result = model.run()
        assert result.totcom > 0
        arrived = {r.subject for r in trace.records(kind="arrive")}
        completed = {r.subject for r in trace.records(kind="complete")}
        assert completed <= arrived
        assert len(completed) == result.totcom
        # Closed system: everything that arrived either completed or is
        # one of the <= ntrans still in flight at the horizon.
        assert len(arrived) - len(completed) <= model.params.ntrans

    def test_locks_and_blocked_never_negative(self, cc_name):
        """Every sample the model pushes to its monitors is >= 0."""
        model = LockingGranularityModel(params_for(cc_name))
        seen = {"locks": [], "blocked": []}
        real_locks = model.metrics.locks_held.update
        real_blocked = model.metrics.blocked.update

        def spy(kind, real):
            def update(level):
                seen[kind].append(level)
                return real(level)

            return update

        model.metrics.locks_held.update = spy("locks", real_locks)
        model.metrics.blocked.update = spy("blocked", real_blocked)
        model.run()
        assert seen["locks"], "run never sampled locks_held"
        assert min(seen["locks"]) >= 0
        assert min(seen["blocked"], default=0) >= 0
        # And nothing is left dangling in the engine at the horizon
        # beyond what in-flight transactions legitimately hold.
        assert model.conflicts.locks_held >= 0

    def test_completed_transactions_commit_exactly_once(self, cc_name):
        trace = Trace()
        model = LockingGranularityModel(params_for(cc_name), trace=trace)
        result = model.run()
        completed = {r.subject for r in trace.records(kind="complete")}
        for tid in completed:
            kinds = [kind for kind, _ in trace.timeline(tid)]
            assert kinds.count("commit") == 1
            assert kinds.count("complete") == 1
            assert kinds[-3:] == ["join", "commit", "complete"]
            # A commit requires a grant in the same (final) attempt.
            assert kinds.count("lock_grant") >= 1
        assert result.totcom == len(completed)

    def test_deterministic_across_instances(self, cc_name):
        first = LockingGranularityModel(params_for(cc_name)).run()
        second = LockingGranularityModel(params_for(cc_name)).run()
        assert first.as_dict(include_params=False) == second.as_dict(
            include_params=False
        )


class TestRestartProtocolBehaviour:
    """The restart-oriented pair must actually restart under conflict."""

    def test_no_waiting_aborts_instead_of_blocking(self):
        trace = Trace()
        model = LockingGranularityModel(
            params_for("no-waiting"), trace=trace
        )
        result = model.run()
        assert result.deadlock_aborts > 0
        # Never parks on a blocker: no block events at all.
        assert not list(trace.records(kind="block"))
        assert result.lock_denials == result.deadlock_aborts

    def test_wound_wait_wounds_younger_holders(self):
        # High contention so wounds actually happen.
        trace = Trace()
        model = LockingGranularityModel(
            params_for("wound-wait", ltot=3, ntrans=10), trace=trace
        )
        result = model.run()
        assert result.totcom > 0
        wounded = [
            r for r in trace.records(kind="abort")
            if r.details.get("reason") == "wounded"
        ]
        assert wounded, "contentious wound-wait run produced no wounds"

    def test_wound_wait_cannot_deadlock(self):
        """Waits only point younger -> older, so cycles are impossible;
        a coarse-grained crunch must still drain."""
        result = LockingGranularityModel(
            params_for("wound-wait", ltot=1, ntrans=12, tmax=120.0)
        ).run()
        assert result.totcom > 0
