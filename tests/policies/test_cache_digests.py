"""Committed cache-address goldens.

The content address of a run is part of the repo's public contract:
sweep caches, journals and manifests all key off it.  These digests
were computed before the policy refactor and must never drift while
every active policy is at version 1 — the registry, the
``policy_versions`` cache token and any amount of policy registration
must leave default addresses byte-identical.
"""

from repro.core import SimulationParameters
from repro.experiments.cache import cache_key

#: SHA-256 address of the all-defaults configuration, pinned from the
#: pre-refactor implementation.
DEFAULTS_DIGEST = (
    "54dea6966b3a27b7e07fd4cd0c36d65d3449aa409f508fed0a6645f919ef3a03"
)

#: Address of the golden-regression configuration
#: (tests/test_regression_golden.py), pinned the same way.
GOLDEN_DIGEST = (
    "21f26040f12c1722f7aa38d13db8e7b8db325ec74d44430f4d9387f693e66e5f"
)


def test_default_params_digest_is_stable():
    assert cache_key(SimulationParameters()) == DEFAULTS_DIGEST


def test_golden_params_digest_is_stable():
    params = SimulationParameters(
        dbsize=500,
        ltot=20,
        ntrans=5,
        maxtransize=50,
        npros=4,
        tmax=200.0,
        seed=7,
    )
    assert cache_key(params) == GOLDEN_DIGEST


def test_registering_a_policy_does_not_move_addresses():
    from repro.policies import registry

    registry.register("cc", "digest-test-dummy", object)
    try:
        assert cache_key(SimulationParameters()) == DEFAULTS_DIGEST
    finally:
        registry._layers["cc"].pop("digest-test-dummy")


def test_empty_txn_classes_do_not_move_addresses():
    # The txn_classes field (PR 10) is omitted from the canonical
    # params document when empty — every historical address, including
    # the two pinned above, must survive the field's existence.
    assert "txn_classes" not in SimulationParameters().as_dict()
    assert cache_key(SimulationParameters()) == DEFAULTS_DIGEST


def test_multi_class_configurations_fork_addresses():
    base = SimulationParameters(
        dbsize=500, ltot=20, ntrans=5, maxtransize=50, npros=4,
        tmax=200.0, seed=7,
    )
    multi = base.replace(
        workload="classes", txn_classes="oltp:0.8:20,batch:0.2:200"
    )
    assert cache_key(multi) != GOLDEN_DIGEST
    # The spec string is canonical, so equivalent spellings of the
    # same mix share one address.
    respelled = base.replace(
        workload="classes",
        txn_classes=(
            "oltp:0.8:20",
            "batch:0.2:200",
        ),
    )
    assert cache_key(respelled) == cache_key(multi)
