"""The ``repro-locking policies`` verb and the policy CLI aliases."""

from repro.cli import build_parser, main


class TestParser:
    def test_policies_command_parses(self):
        args = build_parser().parse_args(["policies"])
        assert args.command == "policies"
        assert args.layer is None

    def test_policies_layer_filter_parses(self):
        args = build_parser().parse_args(["policies", "cc"])
        assert args.layer == "cc"

    def test_cc_alias_sets_protocol(self):
        args = build_parser().parse_args(["simulate", "--cc", "no-waiting"])
        assert args.protocol == "no-waiting"

    def test_admission_alias_sets_txn_policy(self):
        args = build_parser().parse_args(
            ["simulate", "--admission", "adaptive"]
        )
        assert args.txn_policy == "adaptive"

    def test_aliases_exist_on_trace_too(self):
        args = build_parser().parse_args(["trace", "--cc", "incremental"])
        assert args.protocol == "incremental"


class TestCommand:
    def test_lists_every_layer_and_protocol(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for layer in (
            "cc", "admission", "workload", "arrival",
            "placement", "partitioning", "conflict",
        ):
            assert layer in out
        for name in ("preclaim", "incremental", "no-waiting", "wound-wait"):
            assert name in out
        # Selector flags are shown next to their layer.
        assert "--protocol / --cc" in out
        assert "--txn-policy / --admission" in out

    def test_layer_filter_limits_output(self, capsys):
        assert main(["policies", "cc"]) == 0
        out = capsys.readouterr().out
        assert "wound-wait" in out
        assert "horizontal" not in out

    def test_unknown_layer_suggests_and_fails(self, capsys):
        assert main(["policies", "cx"]) == 2
        err = capsys.readouterr().err
        assert "unknown policy layer" in err
        assert "cc" in err

    def test_unknown_policy_name_exits_cleanly_with_suggestion(self, capsys):
        code = main(
            ["simulate", "--cc", "wond-wait", "--tmax", "20"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "wound-wait" in err
        assert "repro-locking policies" in err

    def test_simulate_runs_with_cc_alias(self, capsys):
        code = main(
            ["simulate", "--cc", "no-waiting", "--dbsize", "100",
             "--ltot", "5", "--ntrans", "3", "--maxtransize", "20",
             "--npros", "2", "--tmax", "50"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no-waiting" in out
        assert "totcom" in out
