"""Golden regression tests: fixed-seed runs must not drift.

These pin exact outputs of small fixed-seed runs.  They exist to catch
*unintended* behavioural changes in the model or kernel; an intended
model change should update the goldens (and the change note) here.
"""

import pytest

from repro.core import SimulationParameters, simulate

GOLDEN_PARAMS = SimulationParameters(
    dbsize=500,
    ltot=20,
    ntrans=5,
    maxtransize=50,
    npros=4,
    tmax=200.0,
    seed=7,
)


@pytest.fixture(scope="module")
def golden():
    return simulate(GOLDEN_PARAMS)


class TestGoldenRun:
    def test_completions(self, golden):
        assert golden.totcom == 129

    def test_lock_requests_and_denials(self, golden):
        assert golden.lock_requests == 180
        assert golden.lock_denials == 47

    def test_busy_times(self, golden):
        assert golden.totios == pytest.approx(764.55, abs=0.1)
        assert golden.lockios == pytest.approx(55.4, abs=0.1)
        assert golden.totcpus == pytest.approx(178.27, abs=0.1)

    def test_response_time(self, golden):
        assert golden.response_time == pytest.approx(7.5318, abs=0.01)

    def test_full_determinism_across_processes(self, golden):
        # Same numbers when run in a fresh model instance.
        again = simulate(GOLDEN_PARAMS)
        assert again.as_dict(include_params=False) == golden.as_dict(
            include_params=False
        )


class TestGoldenVariants:
    """One pinned number per engine/protocol/strategy variant."""

    @pytest.mark.parametrize(
        "changes,expected_totcom",
        [
            ({"conflict_engine": "explicit"}, 128),
            (
                {"conflict_engine": "explicit", "protocol": "incremental"},
                132,
            ),
            ({"conflict_engine": "hierarchical"}, 115),
            ({"placement": "worst"}, 39),
            ({"placement": "random"}, 48),
            ({"partitioning": "random"}, 97),
            ({"workload": "fixed"}, 72),
            ({"discipline": "sjf"}, 130),
            ({"protocol": "no-waiting"}, 128),
            (
                {"conflict_engine": "explicit", "protocol": "wound-wait"},
                128,
            ),
        ],
    )
    def test_variant_completions(self, changes, expected_totcom):
        result = simulate(GOLDEN_PARAMS.replace(**changes))
        assert result.totcom == expected_totcom


class TestNewProtocolGoldens:
    """Full pinned profiles for the restart-oriented CC protocols.

    Pinned from their first runs (this is where the protocols were
    born, so these goldens define the reference behaviour rather than
    guard a paper number)."""

    def test_no_waiting_profile(self):
        result = simulate(GOLDEN_PARAMS.replace(protocol="no-waiting"))
        assert result.totcom == 128
        assert result.lock_requests == 189
        assert result.lock_denials == 56
        assert result.deadlock_aborts == 56

    def test_wound_wait_profile(self):
        result = simulate(
            GOLDEN_PARAMS.replace(
                conflict_engine="explicit", protocol="wound-wait"
            )
        )
        assert result.totcom == 128
        assert result.lock_requests == 134
        assert result.lock_denials == 1
        assert result.deadlock_aborts == 1
