"""Timeout/Event free-list pooling invariants.

Pooling (``Environment(pool=True)``) recycles processed Timeout and
done-Event objects whose refcount proves nothing else references them.
These tests pin the safety contract: a recycled object carries no
state from its previous life, anything still referenced is never
recycled, and results are bit-identical with pooling on or off.
"""

from repro.core.model import LockingGranularityModel
from repro.core.parameters import SimulationParameters
from repro.des import Environment
from repro.des.server import Server
from repro.des.trace import Trace

#: The golden fig-2 cell (same as tests/test_regression_golden.py).
FIG2_CELL = SimulationParameters(
    dbsize=500,
    ltot=20,
    ntrans=5,
    maxtransize=50,
    npros=4,
    tmax=200.0,
    seed=7,
)


class TestTimeoutRecycling:
    def test_single_waiter_timeouts_recycle(self):
        env = Environment(pool=True)

        def ticker(env, n):
            for _ in range(n):
                yield env.timeout(1.0)

        env.process(ticker(env, 1000))
        env.run()
        stats = env.pool_stats()
        assert stats["enabled"] is True
        # All but the first few timeouts come from the free list.
        assert stats["timeout_reused"] > 900

    def test_recycled_timeout_never_fires_stale_callbacks(self):
        env = Environment(pool=True)
        fired = []

        def schedule_one(tag):
            t = env.timeout(1.0, value=tag)
            t.callbacks.append(lambda ev, tag=tag: fired.append(tag))
            del t  # drop our reference so the recycler may take it

        schedule_one("first")
        env.run()
        assert fired == ["first"]
        assert env.pool_stats()["timeout_free"] == 1
        schedule_one("second")  # reuses the recycled object
        env.run()
        assert env.pool_stats()["timeout_reused"] == 1
        # The stale "first" callback must not fire again.
        assert fired == ["first", "second"]

    def test_recycled_timeout_comes_back_clean(self):
        env = Environment(pool=True)
        env.timeout(1.0, value="old")
        env.run()
        assert env.pool_stats()["timeout_free"] == 1
        fresh = env.timeout(2.0, value="new")
        assert env.pool_stats()["timeout_reused"] == 1
        assert fresh.callbacks == []
        assert fresh._waiter is None
        assert fresh._defused is False
        assert fresh.triggered
        assert fresh.value == "new"

    def test_referenced_timeout_is_never_recycled(self):
        env = Environment(pool=True)
        held = env.timeout(1.0, value="mine")
        env.run()
        assert env.pool_stats()["timeout_free"] == 0
        assert held.processed
        assert held.value == "mine"


class TestEventRecycling:
    def test_recycled_event_never_fires_stale_callbacks(self):
        env = Environment(pool=True)
        fired = []

        def fire_one(tag):
            ev = env.event()
            ev.callbacks.append(lambda _ev, tag=tag: fired.append(tag))
            ev.succeed(tag)
            del ev

        fire_one("first")
        env.run()
        assert fired == ["first"]
        assert env.pool_stats()["event_free"] == 1
        fire_one("second")
        env.run()
        assert env.pool_stats()["event_reused"] == 1
        assert fired == ["first", "second"]

    def test_recycled_event_comes_back_untriggered(self):
        env = Environment(pool=True)
        env.event().succeed("old")
        env.run()
        assert env.pool_stats()["event_free"] == 1
        fresh = env.event()
        assert env.pool_stats()["event_reused"] == 1
        assert not fresh.triggered
        assert fresh.callbacks == []
        assert fresh._ok is None
        assert fresh._defused is False

    def test_event_yielded_by_process_is_held_until_safe(self):
        """A process waiting on an event keeps it alive through the
        generator frame; pooling must deliver the value correctly."""
        env = Environment(pool=True)
        got = []

        def waiter(env):
            ev = env.event()
            env.schedule_callback(lambda: ev.succeed("payload"), 2.0)
            value = yield ev
            got.append((env.now, value))

        env.process(waiter(env))
        env.run()
        assert got == [(2.0, "payload")]


class TestPooledServer:
    def test_fail_all_during_pooled_service_no_double_release(self):
        """A crash mid-service under pooling: the failed done-events
        deliver exactly one failure each, the stale completion callback
        is ignored, and the server keeps serving afterwards."""
        env = Environment(pool=True)
        server = Server(env)
        outcomes = []

        def worker(env, demand, tag):
            try:
                yield server.submit(demand, tag=tag)
                outcomes.append((tag, "done", env.now))
            except RuntimeError:
                outcomes.append((tag, "failed", env.now))

        env.process(worker(env, 4.0, "a"))
        env.process(worker(env, 4.0, "b"))
        env.schedule_callback(lambda: server.fail_all(RuntimeError("crash")), 1.0)
        env.run(until=1.0)
        env.run()
        assert sorted(outcomes) == [
            ("a", "failed", 1.0),
            ("b", "failed", 1.0),
        ]
        assert not server.busy
        # Job a's original completion callback (scheduled for t=4.0)
        # is still on the heap; draining it advanced the clock there,
        # and the token guard ignored it — served counts stay zero.
        assert env.now == 4.0
        assert server.jobs_served() == 0
        # The server still works after the crash (no corrupted state
        # from a recycled completion or done event).
        env.process(worker(env, 2.0, "c"))
        env.run()
        assert ("c", "done", 6.0) in outcomes
        assert server.jobs_served("c") == 1

    def test_preemption_under_pooling_matches_unpooled(self):
        """Preempt-resume accounting is identical with pooling on."""

        def run(pool):
            env = Environment(pool=pool)
            server = Server(env)
            finished = []

            def low(env):
                yield server.submit(5.0, priority=5, tag="low")
                finished.append(("low", env.now))

            def high(env):
                yield env.timeout(2.0)
                yield server.submit(1.0, priority=0, tag="high")
                finished.append(("high", env.now))

            env.process(low(env))
            env.process(high(env))
            env.run()
            return finished, server.busy_time("low"), server.busy_time("high")

        assert run(False) == run(True)


class TestPoolBitIdentity:
    def test_fig2_cell_identical_with_and_without_pool(self):
        """The golden fig-2 cell: result dict and full trace must be
        bit-identical with pooling on and off."""
        runs = {}
        for pool in (False, True):
            trace = Trace()
            result = LockingGranularityModel(
                FIG2_CELL, trace=trace, kernel_pool=pool
            ).run()
            runs[pool] = (result.as_dict(), [str(r) for r in trace])
        assert runs[False][0] == runs[True][0]
        assert runs[False][1] == runs[True][1]
        assert len(runs[True][1]) > 100  # the trace actually recorded
