"""Unit tests for generator processes."""

import pytest

from repro.des import Environment, Process
from repro.des.errors import Interrupt, SimulationError


class TestBasics:
    def test_requires_generator(self, env):
        with pytest.raises(TypeError):
            Process(env, lambda: None)

    def test_runs_at_creation_instant(self, env):
        seen = []

        def proc(env):
            seen.append(env.now)
            yield env.timeout(1)

        env.process(proc(env))
        env.run()
        assert seen == [0]

    def test_return_value_becomes_event_value(self, env):
        def proc(env):
            yield env.timeout(2)
            return "result"

        process = env.process(proc(env))
        assert env.run(until=process) == "result"

    def test_is_alive_lifecycle(self, env):
        def proc(env):
            yield env.timeout(1)

        process = env.process(proc(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_processes_can_wait_on_processes(self, env):
        def inner(env):
            yield env.timeout(3)
            return "inner-done"

        def outer(env):
            value = yield env.process(inner(env))
            return (value, env.now)

        outer_proc = env.process(outer(env))
        assert env.run(until=outer_proc) == ("inner-done", 3)

    def test_yielding_non_event_raises(self, env):
        # Bare ints/floats are valid delay yields, so a string is the
        # simplest thing that is neither an event nor a delay.
        def proc(env):
            yield "not-an-event"

        env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_exception_in_process_propagates(self, env):
        def proc(env):
            yield env.timeout(1)
            raise ValueError("inside")

        env.process(proc(env))
        with pytest.raises(ValueError, match="inside"):
            env.run()

    def test_waiting_on_already_processed_event(self, env):
        done = env.timeout(0, value="early")
        env.run()

        def proc(env):
            value = yield done
            return value

        process = env.process(proc(env))
        assert env.run(until=process) == "early"

    def test_failed_event_raises_at_yield(self, env):
        trigger = env.event()

        def proc(env):
            try:
                yield trigger
            except RuntimeError as error:
                return "caught: {}".format(error)

        process = env.process(proc(env))
        trigger.fail(RuntimeError("bad"))
        assert env.run(until=process) == "caught: bad"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)

        process = env.process(victim(env))

        def killer(env):
            yield env.timeout(5)
            process.interrupt(cause="deadlock")

        env.process(killer(env))
        assert env.run(until=process) == ("interrupted", "deadlock", 5)

    def test_interrupted_process_can_continue(self, env):
        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(1)
            return env.now

        process = env.process(victim(env))

        def killer(env):
            yield env.timeout(2)
            process.interrupt()

        env.process(killer(env))
        assert env.run(until=process) == 3

    def test_interrupt_finished_process_raises(self, env):
        def quick(env):
            yield env.timeout(0)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_interrupt_detaches_from_old_target(self, env):
        # After an interrupt, the original timeout must not resume the
        # process a second time.
        resumed = []

        def victim(env):
            try:
                yield env.timeout(10)
                resumed.append("timeout")
            except Interrupt:
                resumed.append("interrupt")
            yield env.timeout(20)
            resumed.append("second-wait")

        process = env.process(victim(env))

        def killer(env):
            yield env.timeout(1)
            process.interrupt()

        env.process(killer(env))
        env.run()
        assert resumed == ["interrupt", "second-wait"]


class TestForkJoin:
    def test_all_of_over_processes(self, env):
        def worker(env, duration):
            yield env.timeout(duration)
            return duration

        def parent(env):
            children = [env.process(worker(env, d)) for d in (5, 1, 3)]
            values = yield env.all_of(children)
            return (env.now, sorted(values))

        parent_proc = env.process(parent(env))
        assert env.run(until=parent_proc) == (5, [1, 3, 5])

    def test_any_of_over_processes(self, env):
        def worker(env, duration):
            yield env.timeout(duration)
            return duration

        def parent(env):
            children = [env.process(worker(env, d)) for d in (5, 2)]
            yield env.any_of(children)
            return env.now

        parent_proc = env.process(parent(env))
        assert env.run(until=parent_proc) == 2

    def test_deterministic_fork_join_ordering(self):
        def build():
            env = Environment()
            order = []

            def worker(env, name):
                yield env.timeout(1)
                order.append(name)

            def parent(env):
                yield env.all_of(
                    [env.process(worker(env, n)) for n in "abcd"]
                )

            env.process(parent(env))
            env.run()
            return order

        assert build() == list("abcd")
        assert build() == build()
