"""Heap vs calendar scheduler parity.

The calendar queue is only a legal backend if it is *observationally
identical* to the binary heap: same dispatch order (the kernel's total
order is ``(time, priority, eid)``), same error behaviour, same
pooling semantics.  These tests drive both backends through the same
randomized and adversarial schedules and require identical traces.
"""

import random

import pytest

from repro.des import (
    CalendarEnvironment,
    Environment,
    available_schedulers,
    scheduler_class,
)
from repro.des.events import NORMAL, URGENT

SCHEDULERS = ("heap", "calendar")


# -- backend selection ---------------------------------------------------


def test_available_schedulers_lists_both():
    names = available_schedulers()
    assert "heap" in names
    assert "calendar" in names


def test_scheduler_class_resolves():
    assert scheduler_class("heap") is Environment
    assert scheduler_class("calendar") is CalendarEnvironment


def test_unknown_scheduler_raises():
    with pytest.raises(ValueError, match="calendar"):
        scheduler_class("btree")
    with pytest.raises(ValueError):
        Environment(scheduler="btree")


def test_keyword_selection():
    assert type(Environment(scheduler="heap")) is Environment
    env = Environment(scheduler="calendar")
    assert type(env) is CalendarEnvironment
    assert env.scheduler == "calendar"


def test_env_var_selection(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_SCHED", "calendar")
    assert type(Environment()) is CalendarEnvironment
    # An explicit keyword wins over the environment variable.
    assert type(Environment(scheduler="heap")) is Environment
    monkeypatch.setenv("REPRO_KERNEL_SCHED", "btree")
    with pytest.raises(ValueError):
        Environment()


def test_direct_subclass_rejects_conflicting_keyword():
    assert type(CalendarEnvironment()) is CalendarEnvironment
    with pytest.raises(ValueError, match="conflicts"):
        CalendarEnvironment(scheduler="heap")


# -- randomized dispatch parity ------------------------------------------


def _ticker(env, log, name, delays):
    for d in delays:
        yield d
        log.append(("tick", name, env.now))


def _waiter(env, log, name, delays):
    for d in delays:
        yield env.timeout(d)
        log.append(("wait", name, env.now))


def _random_trace(scheduler, seed):
    """One randomized run; returns the full dispatch log."""
    rng = random.Random(seed)
    env = Environment(pool=True, scheduler=scheduler)
    log = []

    def callback(tag):
        log.append(("cb", tag, env.now))
        # Half the callbacks reschedule themselves once more, so the
        # backends also agree on events inserted *during* the drain
        # (including into the currently draining timestamp bucket).
        if tag % 2 and tag < 10_000:
            env.schedule_callback(
                lambda t=tag + 10_000: callback(t),
                rng.choice((0.0, 0.25, 1.0)),
            )

    # Same-timestamp bursts: delays repeat heavily, and priorities mix.
    delays = (0.0, 0.25, 0.25, 1.0, 1.0, 1.0, 2.5, 7.75)
    for i in range(300):
        kind = rng.randrange(4)
        delay = rng.choice(delays)
        if kind == 0:
            env.schedule_callback(
                lambda t=i: callback(t),
                delay,
                priority=rng.choice((URGENT, NORMAL)),
            )
        elif kind == 1:
            env.timeout(delay).callbacks.append(
                lambda event, t=i: log.append(("timeout", t, env.now))
            )
        elif kind == 2:
            env.process(
                _ticker(env, log, i, [rng.choice(delays) for _ in range(4)])
            )
        else:
            env.process(
                _waiter(env, log, i, [rng.choice(delays) for _ in range(4)])
            )
    env.run()
    return log, env.now, env.events_dispatched


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_randomized_schedules_dispatch_identically(seed):
    heap = _random_trace("heap", seed)
    calendar = _random_trace("calendar", seed)
    assert heap == calendar


def test_same_timestamp_burst_orders_by_priority_then_eid():
    """Ties break on (priority, eid): URGENT first, then FIFO."""
    for scheduler in SCHEDULERS:
        env = Environment(scheduler=scheduler)
        log = []
        for i in range(50):
            priority = URGENT if i % 3 == 0 else NORMAL
            env.schedule_callback(
                lambda i=i, p=priority: log.append((p, i)), 5.0, priority
            )
        env.run()
        assert log == sorted(log), scheduler


def test_step_and_peek_parity():
    def build(scheduler):
        env = Environment(scheduler=scheduler)
        log = []
        for i in range(40):
            env.schedule_callback(
                lambda i=i: log.append(i), float(i % 5), NORMAL
            )
        return env, log

    heap_env, heap_log = build("heap")
    cal_env, cal_log = build("calendar")
    for _ in range(40):
        assert heap_env.peek() == cal_env.peek()
        heap_env.step()
        cal_env.step()
        assert heap_env.now == cal_env.now
        assert heap_log == cal_log
    assert heap_env.peek() == cal_env.peek() == float("inf")


def test_run_until_parity():
    def run(scheduler):
        env = Environment(pool=True, scheduler=scheduler)
        log = []
        env.process(_ticker(env, log, "a", [1.0] * 20))
        env.process(_waiter(env, log, "b", [1.5] * 10))
        env.run(until=7.25)
        return log, env.now

    assert run("heap") == run("calendar")


# -- error behaviour -----------------------------------------------------


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_negative_delays_rejected(scheduler):
    env = Environment(pool=True, scheduler=scheduler)
    with pytest.raises(ValueError):
        env.timeout(-1.0)
    with pytest.raises(ValueError):
        env.schedule_callback(lambda: None, -0.5)
    with pytest.raises(ValueError):
        env.schedule(env.event(), delay=-2.0)

    def sleeper():
        yield -1.0

    env.process(sleeper())
    with pytest.raises(ValueError):
        env.run()


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_recycled_timeout_rejects_negative_delay(scheduler):
    """A pooled Timeout must re-validate its delay when reused."""
    env = Environment(pool=True, scheduler=scheduler)

    def once():
        yield env.timeout(1.0)

    env.process(once())
    env.run()
    assert env.pool_stats()["timeout_free"] >= 1
    with pytest.raises(ValueError):
        env.timeout(-1.0)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_pooled_timeouts_recycle(scheduler):
    env = Environment(pool=True, scheduler=scheduler)
    log = []
    env.process(_waiter(env, log, "w", [1.0] * 50))
    env.run()
    stats = env.pool_stats()
    assert stats["timeout_reused"] > 0, scheduler
    assert len(log) == 50
