"""Unit tests for the event primitives."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Event, Timeout
from repro.des.errors import SimulationError


class TestEvent:
    def test_fresh_event_is_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_before_trigger(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_default_value_is_none(self, env):
        event = env.event()
        event.succeed()
        assert event.value is None

    def test_double_succeed_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_succeed_after_fail_raises(self, env):
        event = env.event()
        event.fail(RuntimeError("boom"))
        event.defuse()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_fail_propagates_from_run(self, env):
        event = env.event()
        event.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_defused_failure_does_not_propagate(self, env):
        event = env.event()
        event.fail(RuntimeError("boom"))
        event.defuse()
        env.run()  # must not raise

    def test_callbacks_run_on_processing(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("payload")
        env.run()
        assert seen == ["payload"]
        assert event.processed


class TestTimeout:
    def test_fires_at_delay(self, env):
        timeout = env.timeout(5)
        env.run()
        assert env.now == 5
        assert timeout.processed

    def test_carries_value(self, env):
        timeout = env.timeout(1, value="tick")
        env.run(until=timeout)
        assert timeout.value == "tick"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_zero_delay_fires_now(self, env):
        env.timeout(0)
        env.run()
        assert env.now == 0

    def test_repr_mentions_delay(self, env):
        assert "3" in repr(Timeout(env, 3))


class TestConditions:
    def test_all_of_waits_for_every_event(self, env):
        t1, t2, t3 = env.timeout(1), env.timeout(3), env.timeout(2)
        join = AllOf(env, [t1, t2, t3])
        env.run(until=join)
        assert env.now == 3

    def test_all_of_collects_values(self, env):
        events = [env.timeout(i, value=i) for i in (1, 2)]
        join = env.all_of(events)
        values = env.run(until=join)
        assert sorted(values) == [1, 2]

    def test_all_of_empty_succeeds_immediately(self, env):
        join = env.all_of([])
        assert join.triggered

    def test_any_of_fires_at_first(self, env):
        slow, fast = env.timeout(10), env.timeout(2, value="fast")
        race = env.any_of([slow, fast])
        env.run(until=race)
        assert env.now == 2
        assert "fast" in race.value

    def test_all_of_fails_if_child_fails(self, env):
        good = env.timeout(1)
        bad = env.event()
        join = env.all_of([good, bad])
        bad.fail(ValueError("child"))
        join.defuse()
        env.run()
        assert join.triggered
        assert not join.ok

    def test_condition_accepts_already_processed_children(self, env):
        done = env.timeout(0)
        env.run()
        join = env.all_of([done])
        assert join.triggered

    def test_cross_environment_events_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            AnyOf(env, [Event(other)])
