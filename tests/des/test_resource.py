"""Unit tests for the counted FCFS resource."""

import pytest

from repro.des import Resource


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity(self, env):
        resource = Resource(env, capacity=2)
        r1, r2, r3 = resource.request(), resource.request(), resource.request()
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert resource.count == 2
        assert resource.queue_length == 1

    def test_release_grants_next_in_fifo_order(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        third = resource.request()
        resource.release(first)
        assert second.triggered and not third.triggered
        resource.release(second)
        assert third.triggered

    def test_release_waiting_request_cancels_it(self, env):
        resource = Resource(env, capacity=1)
        holder = resource.request()
        waiter = resource.request()
        resource.release(waiter)
        assert resource.queue_length == 0
        resource.release(holder)
        assert not waiter.triggered

    def test_double_release_is_noop(self, env):
        resource = Resource(env, capacity=1)
        request = resource.request()
        resource.release(request)
        resource.release(request)
        assert resource.count == 0

    def test_context_manager_releases(self, env):
        resource = Resource(env, capacity=1)
        log = []

        def user(env, name):
            with resource.request() as request:
                yield request
                log.append((name, "in", env.now))
                yield env.timeout(2)
            log.append((name, "out", env.now))

        env.process(user(env, "a"))
        env.process(user(env, "b"))
        env.run()
        assert log == [
            ("a", "in", 0),
            ("a", "out", 2),
            ("b", "in", 2),
            ("b", "out", 4),
        ]

    def test_mutual_exclusion_invariant(self, env):
        resource = Resource(env, capacity=1)
        inside = []
        max_inside = []

        def user(env, hold):
            with resource.request() as request:
                yield request
                inside.append(1)
                max_inside.append(len(inside))
                yield env.timeout(hold)
                inside.pop()

        for hold in (1, 2, 3, 1, 2):
            env.process(user(env, hold))
        env.run()
        assert max(max_inside) == 1
