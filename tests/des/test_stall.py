"""Stall detection in the run loop: wall-clock watchdog + dry heap."""

import pytest

from repro.des.errors import SimulationStalled


def _spinner(env):
    """A process that schedules events forever."""
    while True:
        yield env.timeout(1.0)


def _waiter(env, event):
    yield event


class TestWallClockTimeout:
    def test_timeout_raises_stalled(self, env):
        env.process(_spinner(env))
        with pytest.raises(SimulationStalled, match="wall-clock timeout"):
            env.run(timeout=0.01)

    def test_stalled_carries_kernel_stats(self, env):
        env.process(_spinner(env))
        with pytest.raises(SimulationStalled) as excinfo:
            env.run(until=1e12, timeout=0.01)
        stats = excinfo.value.stats
        assert stats is not None
        assert stats.events_dispatched > 0

    def test_generous_timeout_does_not_fire(self, env):
        done = []

        def worker(env):
            yield env.timeout(5.0)
            done.append(env.now)

        env.process(worker(env))
        env.run(until=10.0, timeout=60.0)
        assert done == [5.0]
        assert env.now == 10.0

    def test_no_timeout_keeps_guard_free_path(self, env):
        env.process(_spinner(env))
        env.run(until=100.0)  # must terminate by simulation time alone
        assert env.now == 100.0


class TestDryHeapDetection:
    def test_live_waiter_on_dead_event_stalls(self, env):
        env.process(_waiter(env, env.event()))  # never triggered
        with pytest.raises(SimulationStalled, match="heap ran dry"):
            env.run(until=100.0)

    def test_no_live_processes_is_not_a_stall(self, env):
        env.timeout(1.0)
        env.run(until=100.0)
        assert env.now == 100.0

    def test_finished_process_is_not_live(self, env):
        def worker(env):
            yield env.timeout(2.0)

        env.process(worker(env))
        env.run(until=100.0)
        assert env.live_process_count == 0
        assert env.now == 100.0

    def test_live_process_count_tracks(self, env):
        event = env.event()
        env.process(_waiter(env, event))
        env.process(_waiter(env, event))
        assert env.live_process_count == 2
        event.succeed()
        env.run()
        assert env.live_process_count == 0

    def test_until_none_still_returns_on_dry_heap(self, env):
        """Open-ended runs keep the historical contract: running out
        of events is the normal way to finish, never a stall."""
        env.process(_waiter(env, env.event()))
        env.run()  # no `until`: drains and returns
        assert env.live_process_count == 1


class TestProfiledEnvironment:
    def test_profiled_run_honours_timeout(self):
        from repro.des.engine import ProfiledEnvironment

        env = ProfiledEnvironment()
        env.process(_spinner(env))
        with pytest.raises(SimulationStalled):
            env.run(timeout=0.01)
        assert env.kernel_stats().run_seconds > 0
