"""Bare-callback scheduling and schedule() delay validation."""

import pytest

from repro.des import Environment, ProfiledEnvironment
from repro.des.events import URGENT, Event


class TestScheduleCallback:
    def test_fires_at_the_scheduled_time(self, env):
        seen = []
        env.schedule_callback(lambda: seen.append(env.now), 3.5)
        env.run()
        assert seen == [3.5]

    def test_zero_delay_fires_immediately(self, env):
        seen = []
        env.schedule_callback(lambda: seen.append(env.now))
        env.run()
        assert seen == [0.0]

    def test_insertion_order_ties_with_events(self, env):
        """Same time, same priority: callbacks and events interleave in
        strict insertion order, exactly like two events would."""
        seen = []
        first = Event(env)
        first.callbacks.append(lambda _ev: seen.append("event"))
        first.succeed()
        env.schedule_callback(lambda: seen.append("callback"), 0.0)
        env.run()
        assert seen == ["event", "callback"]

    def test_urgent_priority_runs_first(self, env):
        seen = []
        env.schedule_callback(lambda: seen.append("normal"), 1.0)
        env.schedule_callback(
            lambda: seen.append("urgent"), 1.0, priority=URGENT
        )
        env.run()
        assert seen == ["urgent", "normal"]

    def test_counts_as_dispatched(self, env):
        for _ in range(5):
            env.schedule_callback(lambda: None, 1.0)
        env.run()
        assert env.events_dispatched == 5

    def test_interleaves_with_processes(self, env):
        seen = []

        def ticker(env):
            for _ in range(3):
                yield env.timeout(1.0)
                seen.append(("process", env.now))

        env.process(ticker(env))
        env.schedule_callback(lambda: seen.append(("callback", env.now)), 1.5)
        env.run()
        assert seen == [
            ("process", 1.0),
            ("callback", 1.5),
            ("process", 2.0),
            ("process", 3.0),
        ]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError, match="negative delay"):
            env.schedule_callback(lambda: None, -0.5)


class TestScheduleValidation:
    def test_schedule_rejects_negative_delay(self, env):
        """A direct schedule() must not time-travel the heap."""
        event = Event(env)
        event._ok = True
        event._value = None
        with pytest.raises(ValueError, match="negative delay"):
            env.schedule(event, delay=-1.0)

    def test_timeout_rejects_negative_delay(self, env):
        with pytest.raises(ValueError, match="negative delay"):
            env.timeout(-1.0)

    def test_recycled_timeout_rejects_negative_delay(self):
        """The pooled timeout() fast path validates delay too."""
        env = Environment(pool=True)
        env.timeout(1.0)
        env.run()
        assert env.pool_stats()["timeout_free"] == 1
        with pytest.raises(ValueError, match="negative delay"):
            env.timeout(-1.0)


class TestProfiledCallbacks:
    def test_profiled_kernel_counts_callbacks(self):
        env = ProfiledEnvironment()
        for _ in range(3):
            env.schedule_callback(lambda: None, 1.0)
        env.timeout(2.0)
        env.run()
        stats = env.kernel_stats()
        assert stats.event_type_counts["Callback"] == 3
        assert stats.event_type_counts["Timeout"] == 1
        assert stats.events_dispatched == 4
