"""Unit tests for statistics collectors."""

import math

import pytest

from repro.des import Tally, TimeWeighted


class TestTally:
    def test_empty_statistics_are_nan(self):
        tally = Tally()
        assert math.isnan(tally.mean)
        assert math.isnan(tally.variance)
        assert math.isnan(tally.minimum)
        assert math.isnan(tally.maximum)
        assert tally.count == 0

    def test_single_sample(self):
        tally = Tally()
        tally.observe(4.0)
        assert tally.mean == 4.0
        assert tally.count == 1
        assert math.isnan(tally.variance)
        assert tally.minimum == tally.maximum == 4.0

    def test_mean_and_variance_match_reference(self):
        samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        tally = Tally()
        for sample in samples:
            tally.observe(sample)
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
        assert tally.mean == pytest.approx(mean)
        assert tally.variance == pytest.approx(var)
        assert tally.stdev == pytest.approx(math.sqrt(var))
        assert tally.total == pytest.approx(sum(samples))

    def test_extremes(self):
        tally = Tally()
        for sample in (3, -1, 10, 2):
            tally.observe(sample)
        assert tally.minimum == -1
        assert tally.maximum == 10

    def test_numerical_stability_with_large_offsets(self):
        tally = Tally()
        offset = 1e9
        for sample in (offset + 1, offset + 2, offset + 3):
            tally.observe(sample)
        assert tally.variance == pytest.approx(1.0)


class TestTimeWeighted:
    def test_constant_signal_mean_is_the_constant(self, env):
        level = TimeWeighted(env, initial=3.0)
        env.timeout(10)
        env.run()
        assert level.mean() == pytest.approx(3.0)

    def test_step_signal_time_average(self, env):
        level = TimeWeighted(env, initial=0.0)

        def stepper(env):
            yield env.timeout(4)
            level.update(2.0)
            yield env.timeout(6)
            level.update(0.0)

        env.process(stepper(env))
        env.run()
        env.timeout(0)
        # 4 units at 0, 6 units at 2 => mean over 10 = 1.2
        assert level.mean(until=10) == pytest.approx(1.2)

    def test_increment_decrement(self, env):
        level = TimeWeighted(env)
        level.increment(1)
        level.increment(1)
        level.increment(-1)
        assert level.level == 1.0

    def test_maximum_tracked(self, env):
        level = TimeWeighted(env)
        level.update(5)
        level.update(2)
        assert level.maximum == 5

    def test_mean_before_any_time_passes(self, env):
        level = TimeWeighted(env, initial=7.0)
        assert level.mean() == pytest.approx(7.0)

    def test_mean_with_explicit_until(self, env):
        level = TimeWeighted(env, initial=1.0)

        def stepper(env):
            yield env.timeout(5)
            level.update(3.0)

        env.process(stepper(env))
        env.run()
        # 5 at level 1, then 5 more at level 3 => mean over 10 = 2
        assert level.mean(until=10) == pytest.approx(2.0)
