"""Unit tests for named random streams."""

from repro.des import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(42).stream("x")
        b = RandomStreams(42).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_differ(self):
        streams = RandomStreams(42)
        a = streams.stream("sizes")
        b = streams.stream("conflict")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x")
        b = RandomStreams(2).stream("x")
        assert a.random() != b.random()

    def test_multi_part_names(self):
        streams = RandomStreams(0)
        a = streams.stream("rep", 1)
        b = streams.stream("rep", 2)
        assert a.random() != b.random()

    def test_spawn_is_disjoint_from_parent(self):
        parent = RandomStreams(7)
        child = parent.spawn("child")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_spawn_deterministic(self):
        a = RandomStreams(7).spawn("c").stream("x").random()
        b = RandomStreams(7).spawn("c").stream("x").random()
        assert a == b

    def test_seed_property(self):
        assert RandomStreams(9).seed == 9

    def test_name_order_matters(self):
        streams = RandomStreams(3)
        assert (
            streams.stream("a", "b").random() != streams.stream("b", "a").random()
        )
