"""Property-based tests of the DES kernel (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, Server, Tally


@st.composite
def job_batches(draw):
    """Random (demand, priority, arrival-gap) job lists."""
    n = draw(st.integers(min_value=1, max_value=30))
    jobs = []
    for _ in range(n):
        demand = draw(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
        )
        priority = draw(st.integers(min_value=0, max_value=3))
        gap = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        jobs.append((demand, priority, gap))
    return jobs


class TestServerProperties:
    @given(job_batches())
    @settings(max_examples=60, deadline=None)
    def test_work_conservation(self, jobs):
        """A single server with no idling between queued jobs serves
        exactly the submitted demand; completion time >= total demand."""
        env = Environment()
        server = Server(env)
        total_demand = 0.0

        def feeder(env):
            for demand, priority, gap in jobs:
                if gap:
                    yield env.timeout(gap)
                server.submit(demand, priority=priority, tag="p{}".format(priority))

        env.process(feeder(env))
        env.run()
        total_demand = sum(demand for demand, _, _ in jobs)
        assert server.busy_time() <= env.now + 1e-6
        assert math.isclose(
            server.busy_time(), total_demand, rel_tol=1e-9, abs_tol=1e-9
        )
        assert server.jobs_served() == len(jobs)

    @given(job_batches())
    @settings(max_examples=40, deadline=None)
    def test_per_tag_busy_equals_demand(self, jobs):
        env = Environment()
        server = Server(env)
        per_priority = {}

        def feeder(env):
            for demand, priority, gap in jobs:
                if gap:
                    yield env.timeout(gap)
                tag = "p{}".format(priority)
                per_priority[tag] = per_priority.get(tag, 0.0) + demand
                server.submit(demand, priority=priority, tag=tag)

        env.process(feeder(env))
        env.run()
        for tag, demand in per_priority.items():
            assert math.isclose(
                server.busy_time(tag), demand, rel_tol=1e-9, abs_tol=1e-9
            )

    @given(job_batches())
    @settings(max_examples=40, deadline=None)
    def test_determinism(self, jobs):
        """The same job list produces the identical completion trace."""

        def trace():
            env = Environment()
            server = Server(env)
            completions = []

            def feeder(env):
                for index, (demand, priority, gap) in enumerate(jobs):
                    if gap:
                        yield env.timeout(gap)
                    done = server.submit(demand, priority=priority)
                    done.callbacks.append(
                        lambda _e, i=index: completions.append((i, env.now))
                    )

            env.process(feeder(env))
            env.run()
            return completions

        assert trace() == trace()


class TestTimeMonotonicity:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_clock_never_goes_backwards(self, delays):
        env = Environment()
        observed = []

        def proc(env, delay):
            yield env.timeout(delay)
            observed.append(env.now)

        for delay in delays:
            env.process(proc(env, delay))
        env.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)


class TestTallyProperties:
    @given(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
            ),
            min_size=2,
            max_size=100,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_welford_matches_two_pass(self, samples):
        tally = Tally()
        for sample in samples:
            tally.observe(sample)
        mean = sum(samples) / len(samples)
        variance = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
        assert math.isclose(tally.mean, mean, rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(tally.variance, variance, rel_tol=1e-6, abs_tol=1e-6)
        assert tally.minimum == min(samples)
        assert tally.maximum == max(samples)
