"""Unit tests for the trace collector."""

import pytest

from repro.des.trace import Trace, TraceRecord


class TestTrace:
    def test_emit_and_len(self):
        trace = Trace()
        trace.emit(1.0, "arrive", 1)
        trace.emit(2.0, "complete", 1, response=1.0)
        assert len(trace) == 2

    def test_records_filtering(self):
        trace = Trace()
        trace.emit(1.0, "arrive", 1)
        trace.emit(1.5, "arrive", 2)
        trace.emit(2.0, "complete", 1)
        assert len(trace.records(kind="arrive")) == 2
        assert len(trace.records(subject=1)) == 2
        assert len(trace.records(kind="arrive", subject=2)) == 1

    def test_counts(self):
        trace = Trace()
        for _ in range(3):
            trace.emit(0.0, "a", 1)
        trace.emit(0.0, "b", 1)
        assert trace.counts() == {"a": 3, "b": 1}

    def test_timeline(self):
        trace = Trace()
        trace.emit(1.0, "arrive", 7)
        trace.emit(2.0, "admit", 7)
        trace.emit(2.0, "arrive", 8)
        assert trace.timeline(7) == [("arrive", 1.0), ("admit", 2.0)]

    def test_limit_drops_oldest(self):
        trace = Trace(limit=2)
        for i in range(5):
            trace.emit(float(i), "tick", i)
        assert len(trace) == 2
        assert trace.dropped == 3
        assert [r.subject for r in trace] == [3, 4]

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Trace(limit=-1)

    def test_format_and_str(self):
        trace = Trace()
        trace.emit(1.25, "lock_deny", 3, blocker=9)
        text = trace.format()
        assert "lock_deny" in text
        assert "txn#3" in text
        assert "blocker=9" in text
        assert str(TraceRecord(0.0, "x", 1)) .startswith("[")

    def test_format_limit(self):
        trace = Trace()
        for i in range(10):
            trace.emit(float(i), "tick", i)
        assert len(trace.format(limit=3).splitlines()) == 3


class TestModelTracing:
    @pytest.fixture
    def traced_run(self, fast_params):
        from repro.core.model import LockingGranularityModel

        trace = Trace()
        model = LockingGranularityModel(fast_params, trace=trace)
        result = model.run()
        return trace, result

    def test_every_completion_traced(self, traced_run):
        trace, result = traced_run
        assert len(trace.records(kind="complete")) == result.totcom

    def test_every_denial_traced(self, traced_run):
        trace, result = traced_run
        assert len(trace.records(kind="lock_deny")) == result.lock_denials
        assert len(trace.records(kind="lock_request")) == result.lock_requests

    def test_lifecycle_order_per_transaction(self, traced_run):
        trace, _ = traced_run
        order = {
            "arrive": 0, "admit": 1, "lock_request": 2, "lock_deny": 3,
            "block": 4, "wake": 5, "lock_grant": 6, "exec": 7,
            "fork": 8, "io_start": 9, "io_end": 10, "cpu_start": 11,
            "cpu_end": 12, "join": 13, "commit": 14, "complete": 15,
        }
        completed = {r.subject for r in trace.records(kind="complete")}
        for tid in completed:
            timeline = trace.timeline(tid)
            kinds = [kind for kind, _ in timeline]
            times = [time for _, time in timeline]
            # Time never regresses within a transaction.
            assert times == sorted(times), tid
            # First and last events are fixed.
            assert kinds[0] == "arrive"
            assert kinds[-1] == "complete"
            # Exactly one grant and one exec before completion.
            assert kinds.count("lock_grant") == 1
            assert kinds.count("exec") == 1
            assert kinds.index("lock_grant") < kinds.index("exec")
            # Denials strictly precede the grant.
            grant_at = kinds.index("lock_grant")
            deny_positions = [i for i, k in enumerate(kinds) if k == "lock_deny"]
            assert all(position < grant_at for position in deny_positions)
            # Attempts = denials + 1 for preclaim.
            requests = kinds.count("lock_request")
            denials = kinds.count("lock_deny")
            assert requests == denials + 1, tid
            # The structural order map is total on observed kinds.
            assert all(k in order for k in kinds), kinds

    def test_blocker_references_are_real_transactions(self, traced_run):
        trace, _ = traced_run
        seen = {r.subject for r in trace}
        for record in trace.records(kind="lock_deny"):
            assert record.details["blocker"] in seen

    def test_tracing_does_not_change_results(self, fast_params):
        from repro.core.model import LockingGranularityModel

        plain = LockingGranularityModel(fast_params).run()
        traced = LockingGranularityModel(fast_params, trace=Trace()).run()
        assert plain.totcom == traced.totcom
        assert plain.response_time == traced.response_time
        assert plain.lockios == traced.lockios
