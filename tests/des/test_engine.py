"""Unit tests for the environment / run loop."""

import pytest

from repro.des import Environment
from repro.des.errors import EmptySchedule, SimulationError


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=10).now == 10.0

    def test_run_until_time_advances_clock_exactly(self, env):
        env.timeout(3)
        env.run(until=7)
        assert env.now == 7

    def test_run_until_past_raises(self, env):
        env.timeout(5)
        env.run()
        with pytest.raises(SimulationError):
            env.run(until=1)

    def test_peek_reports_next_event_time(self, env):
        env.timeout(4)
        env.timeout(2)
        assert env.peek() == 2

    def test_peek_empty_is_infinite(self, env):
        assert env.peek() == float("inf")

    def test_step_on_empty_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()


class TestRun:
    def test_run_until_none_drains_heap(self, env):
        env.timeout(1)
        env.timeout(9)
        env.run()
        assert env.now == 9

    def test_run_until_event_returns_value(self, env):
        timeout = env.timeout(2, value="done")
        assert env.run(until=timeout) == "done"
        assert env.now == 2

    def test_run_until_processed_event_returns_immediately(self, env):
        timeout = env.timeout(1, value="x")
        env.run()
        assert env.run(until=timeout) == "x"

    def test_run_until_unreachable_event_raises(self, env):
        never = env.event()
        env.timeout(1)
        with pytest.raises(EmptySchedule):
            env.run(until=never)

    def test_same_time_events_fifo_within_priority(self, env):
        order = []
        for name in "abc":
            event = env.event()
            event.callbacks.append(lambda _e, n=name: order.append(n))
            event.succeed()
        env.run()
        assert order == ["a", "b", "c"]

    def test_urgent_priority_processed_first(self, env):
        order = []
        normal = env.event()
        normal.callbacks.append(lambda _e: order.append("normal"))
        normal.succeed()  # NORMAL priority
        urgent = env.event()
        urgent.callbacks.append(lambda _e: order.append("urgent"))
        urgent.succeed(priority=0)  # URGENT
        env.run()
        assert order == ["urgent", "normal"]

    def test_events_scheduled_during_run_are_processed(self, env):
        seen = []

        def chain(env):
            yield env.timeout(1)
            seen.append(env.now)
            yield env.timeout(1)
            seen.append(env.now)

        env.process(chain(env))
        env.run(until=5)
        assert seen == [1, 2]

    def test_run_until_boundary_includes_events_at_that_time(self, env):
        fired = []
        event = env.timeout(5)
        event.callbacks.append(lambda _e: fired.append(env.now))
        env.run(until=5)
        assert fired == [5]


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def trace():
            env = Environment()
            log = []

            def proc(env, name):
                for _ in range(3):
                    yield env.timeout(1.5)
                    log.append((name, env.now))

            env.process(proc(env, "a"))
            env.process(proc(env, "b"))
            env.run()
            return log

        assert trace() == trace()
