"""Unit tests for the environment / run loop."""

import pytest

from repro.des import Environment, ProfiledEnvironment
from repro.des.errors import EmptySchedule, SimulationError


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=10).now == 10.0

    def test_run_until_time_advances_clock_exactly(self, env):
        env.timeout(3)
        env.run(until=7)
        assert env.now == 7

    def test_run_until_past_raises(self, env):
        env.timeout(5)
        env.run()
        with pytest.raises(SimulationError):
            env.run(until=1)

    def test_peek_reports_next_event_time(self, env):
        env.timeout(4)
        env.timeout(2)
        assert env.peek() == 2

    def test_peek_empty_is_infinite(self, env):
        assert env.peek() == float("inf")

    def test_step_on_empty_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()


class TestRun:
    def test_run_until_none_drains_heap(self, env):
        env.timeout(1)
        env.timeout(9)
        env.run()
        assert env.now == 9

    def test_run_until_event_returns_value(self, env):
        timeout = env.timeout(2, value="done")
        assert env.run(until=timeout) == "done"
        assert env.now == 2

    def test_run_until_processed_event_returns_immediately(self, env):
        timeout = env.timeout(1, value="x")
        env.run()
        assert env.run(until=timeout) == "x"

    def test_run_until_unreachable_event_raises(self, env):
        never = env.event()
        env.timeout(1)
        with pytest.raises(EmptySchedule):
            env.run(until=never)

    def test_same_time_events_fifo_within_priority(self, env):
        order = []
        for name in "abc":
            event = env.event()
            event.callbacks.append(lambda _e, n=name: order.append(n))
            event.succeed()
        env.run()
        assert order == ["a", "b", "c"]

    def test_urgent_priority_processed_first(self, env):
        order = []
        normal = env.event()
        normal.callbacks.append(lambda _e: order.append("normal"))
        normal.succeed()  # NORMAL priority
        urgent = env.event()
        urgent.callbacks.append(lambda _e: order.append("urgent"))
        urgent.succeed(priority=0)  # URGENT
        env.run()
        assert order == ["urgent", "normal"]

    def test_events_scheduled_during_run_are_processed(self, env):
        seen = []

        def chain(env):
            yield env.timeout(1)
            seen.append(env.now)
            yield env.timeout(1)
            seen.append(env.now)

        env.process(chain(env))
        env.run(until=5)
        assert seen == [1, 2]

    def test_run_until_boundary_includes_events_at_that_time(self, env):
        fired = []
        event = env.timeout(5)
        event.callbacks.append(lambda _e: fired.append(env.now))
        env.run(until=5)
        assert fired == [5]


class TestKernelStats:
    def test_dispatch_counter_counts_processed_events(self, env):
        for _ in range(5):
            env.timeout(1.0)
        env.run()
        assert env.events_dispatched == 5
        stats = env.kernel_stats()
        assert stats.events_dispatched == 5
        assert stats.heap_length == 0

    def test_dispatch_counter_accumulates_across_runs(self, env):
        env.timeout(1.0)
        env.run(until=1.0)
        env.timeout(1.0)
        env.run()
        assert env.events_dispatched == 2

    def test_base_environment_omits_expensive_fields(self, env):
        stats = env.kernel_stats()
        assert stats.heap_peak is None
        assert stats.event_type_counts is None
        assert stats.as_dict() == {
            "events_dispatched": 0, "heap_length": 0,
        }

    def test_unprocessed_events_remain_in_heap_length(self, env):
        env.timeout(1.0)
        env.timeout(10.0)
        env.run(until=5.0)
        stats = env.kernel_stats()
        assert stats.events_dispatched == 1
        assert stats.heap_length == 1


class TestProfiledEnvironment:
    def test_heap_peak_tracks_maximum_population(self):
        env = ProfiledEnvironment()
        for _ in range(7):
            env.timeout(1.0)
        env.run()
        stats = env.kernel_stats()
        assert stats.heap_peak == 7
        assert stats.heap_length == 0

    def test_event_type_counts(self):
        env = ProfiledEnvironment()

        def proc(env):
            yield env.timeout(1.0)
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        counts = env.kernel_stats().event_type_counts
        assert counts["Timeout"] == 2
        assert counts["Initialize"] == 1
        assert counts["Process"] == 1
        assert env.events_dispatched == sum(counts.values())

    def test_run_seconds_and_rate_populated(self):
        env = ProfiledEnvironment()
        for _ in range(100):
            env.timeout(1.0)
        env.run()
        stats = env.kernel_stats()
        assert stats.run_seconds > 0
        assert stats.events_per_second > 0
        row = stats.as_dict()
        assert "heap_peak" in row and "event_type_counts" in row

    def test_profiled_run_matches_plain_run(self):
        def workload(env):
            log = []

            def proc(env, name):
                for _ in range(3):
                    yield env.timeout(1.5)
                    log.append((name, env.now))

            env.process(proc(env, "a"))
            env.process(proc(env, "b"))
            env.run()
            return log, env.now

        assert workload(Environment()) == workload(ProfiledEnvironment())


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def trace():
            env = Environment()
            log = []

            def proc(env, name):
                for _ in range(3):
                    yield env.timeout(1.5)
                    log.append((name, env.now))

            env.process(proc(env, "a"))
            env.process(proc(env, "b"))
            env.run()
            return log

        assert trace() == trace()
