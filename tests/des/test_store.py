"""Unit tests for the FIFO store."""

import pytest

from repro.des import Store


class TestStore:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_put_then_get_fifo(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        first = store.get()
        second = store.get()
        assert first.triggered and first.value == "a"
        assert second.triggered and second.value == "b"

    def test_get_waits_for_put(self, env):
        store = Store(env)
        get = store.get()
        assert not get.triggered
        store.put("late")
        assert get.triggered and get.value == "late"

    def test_bounded_put_waits_for_room(self, env):
        store = Store(env, capacity=1)
        first = store.put("a")
        second = store.put("b")
        assert first.triggered and not second.triggered
        got = store.get()
        assert got.value == "a"
        assert second.triggered
        assert store.items == ["b"]

    def test_len_tracks_buffered_items(self, env):
        store = Store(env)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2
        store.get()
        assert len(store) == 1

    def test_producer_consumer_processes(self, env):
        store = Store(env, capacity=2)
        consumed = []

        def producer(env):
            for i in range(5):
                yield store.put(i)
                yield env.timeout(1)

        def consumer(env):
            for _ in range(5):
                item = yield store.get()
                consumed.append((item, env.now))
                yield env.timeout(2)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert [item for item, _ in consumed] == [0, 1, 2, 3, 4]

    def test_multiple_getters_served_in_order(self, env):
        store = Store(env)
        gets = [store.get() for _ in range(3)]
        for item in ("x", "y", "z"):
            store.put(item)
        assert [g.value for g in gets] == ["x", "y", "z"]
