"""Unit tests for the preemptive-resume priority server."""

import pytest

from repro.des import Environment, Server


def run_until(env, event):
    return env.run(until=event)


class TestBasicService:
    def test_single_job_completes_after_demand(self, env):
        server = Server(env)
        done = server.submit(5)
        env.run(until=done)
        assert env.now == 5

    def test_fcfs_ordering(self, env):
        server = Server(env)
        finish_times = {}
        for name, demand in (("a", 3), ("b", 2), ("c", 1)):
            done = server.submit(demand)
            done.callbacks.append(
                lambda _e, n=name: finish_times.setdefault(n, env.now)
            )
        env.run()
        assert finish_times == {"a": 3, "b": 5, "c": 6}

    def test_zero_demand_completes_immediately(self, env):
        server = Server(env)
        done = server.submit(0)
        env.run(until=done)
        assert env.now == 0

    def test_negative_demand_rejected(self, env):
        server = Server(env)
        with pytest.raises(ValueError):
            server.submit(-1)

    def test_unknown_discipline_rejected(self, env):
        with pytest.raises(ValueError):
            Server(env, discipline="lifo")

    def test_queue_length_counts_waiting_only(self, env):
        server = Server(env)
        server.submit(10)
        server.submit(10)
        server.submit(10)
        assert server.queue_length == 2
        assert server.busy

    def test_idle_after_all_jobs(self, env):
        server = Server(env)
        server.submit(2)
        env.run()
        assert not server.busy
        assert server.queue_length == 0


class TestPreemption:
    def test_high_priority_preempts_and_victim_resumes(self, env):
        server = Server(env)
        victim_done = server.submit(10, priority=1, tag="txn")

        def intruder(env):
            yield env.timeout(4)
            done = server.submit(2, priority=0, tag="lock")
            yield done
            assert env.now == 6

        env.process(intruder(env))
        env.run(until=victim_done)
        # 4 served + 2 preempted + remaining 6 => finishes at 12.
        assert env.now == 12

    def test_equal_priority_does_not_preempt(self, env):
        server = Server(env)
        first = server.submit(5, priority=1)

        def second_arrival(env):
            yield env.timeout(1)
            done = server.submit(1, priority=1)
            yield done
            assert env.now == 6

        env.process(second_arrival(env))
        env.run(until=first)
        assert env.now == 5

    def test_nested_preemption(self, env):
        server = Server(env)
        low_done = server.submit(10, priority=2)

        def mid(env):
            yield env.timeout(2)
            done = server.submit(4, priority=1)
            yield done
            # mid was itself preempted by high for 1 unit: 2+4+1 = 7
            assert env.now == 7

        def high(env):
            yield env.timeout(3)
            done = server.submit(1, priority=0)
            yield done
            assert env.now == 4

        env.process(mid(env))
        env.process(high(env))
        env.run(until=low_done)
        assert env.now == 15

    def test_preemptor_arriving_at_completion_instant(self, env):
        # A preemption at the exact instant the victim finishes must
        # complete the victim rather than requeue a zero-work job.
        server = Server(env)
        victim_done = server.submit(3, priority=1)

        def intruder(env):
            yield env.timeout(3)
            yield server.submit(1, priority=0)

        env.process(intruder(env))
        env.run(until=victim_done)
        assert env.now <= 4  # victim must not wait behind the intruder


class TestAccounting:
    def test_busy_time_split_by_tag(self, env):
        server = Server(env)
        server.submit(10, priority=1, tag="txn")

        def intruder(env):
            yield env.timeout(3)
            yield server.submit(2, priority=0, tag="lock")

        env.process(intruder(env))
        env.run()
        assert server.busy_time("txn") == pytest.approx(10)
        assert server.busy_time("lock") == pytest.approx(2)
        assert server.busy_time() == pytest.approx(12)

    def test_busy_time_includes_in_progress_service(self, env):
        server = Server(env)
        server.submit(10, tag="txn")
        env.timeout(4)
        env.run(until=4)
        assert server.busy_time("txn") == pytest.approx(4)

    def test_jobs_served_counts(self, env):
        server = Server(env)
        for _ in range(3):
            server.submit(1, tag="a")
        server.submit(1, tag="b")
        env.run()
        assert server.jobs_served("a") == 3
        assert server.jobs_served("b") == 1
        assert server.jobs_served() == 4

    def test_demand_submitted_totals(self, env):
        server = Server(env)
        server.submit(2.5, tag="a")
        server.submit(1.5, tag="a")
        env.run()
        assert server.demand_submitted("a") == pytest.approx(4.0)

    def test_busy_never_exceeds_elapsed_time(self, env):
        server = Server(env)
        for i in range(5):
            server.submit(7, priority=i % 2, tag=str(i))
        env.run(until=11)
        assert server.busy_time() <= 11 + 1e-9


class TestSJF:
    def test_sjf_orders_waiting_jobs_by_demand(self, env):
        server = Server(env, discipline="sjf")
        finish = {}
        for name, demand in (("long", 5), ("short", 1), ("mid", 3)):
            done = server.submit(demand)
            done.callbacks.append(
                lambda _e, n=name: finish.setdefault(n, env.now)
            )
        env.run()
        # "long" occupies the server first (it arrived to an idle
        # server); then the queue drains shortest-first.
        assert finish == {"long": 5, "short": 6, "mid": 9}

    def test_sjf_respects_priority_levels(self, env):
        server = Server(env, discipline="sjf")
        server.submit(5, priority=1)
        finish = {}
        for name, demand, priority in (
            ("urgent-long", 4, 0),
            ("normal-short", 1, 1),
        ):
            done = server.submit(demand, priority=priority)
            done.callbacks.append(
                lambda _e, n=name: finish.setdefault(n, env.now)
            )
        env.run()
        assert finish["urgent-long"] < finish["normal-short"]


class TestStress:
    def test_many_jobs_conserve_work(self):
        env = Environment()
        server = Server(env)
        import random

        rng = random.Random(1)
        total = 0.0
        for _ in range(200):
            demand = rng.uniform(0.1, 2.0)
            total += demand
            server.submit(demand, priority=rng.choice([0, 1, 2]))
        env.run()
        assert env.now == pytest.approx(total)
        assert server.busy_time() == pytest.approx(total)
        assert server.jobs_served() == 200
