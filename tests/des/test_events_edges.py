"""Additional edge-case tests for events and conditions."""

import pytest

from repro.des import AllOf, AnyOf, Environment
from repro.des.errors import SimulationError


class TestConditionEdges:
    def test_any_of_with_one_already_failed_child(self, env):
        bad = env.event()
        bad.fail(RuntimeError("x"))
        bad.defuse()
        env.run()
        race = AnyOf(env, [bad, env.timeout(5)])
        race.defuse()
        env.run()
        # The already-failed child fails the race at construction.
        assert race.triggered
        assert not race.ok

    def test_all_of_mixed_processed_and_pending(self, env):
        done = env.timeout(0, value="early")
        env.run()
        late = env.timeout(3, value="late")
        join = AllOf(env, [done, late])
        values = env.run(until=join)
        assert sorted(values) == ["early", "late"]

    def test_nested_conditions(self, env):
        inner = env.all_of([env.timeout(1), env.timeout(2)])
        outer = env.any_of([inner, env.timeout(10)])
        env.run(until=outer)
        assert env.now == 2

    def test_condition_value_only_includes_succeeded(self, env):
        fast = env.timeout(1, value="fast")
        slow = env.timeout(9, value="slow")
        race = env.any_of([fast, slow])
        values = env.run(until=race)
        assert values == ["fast"]

    def test_any_of_empty_succeeds_immediately(self, env):
        race = env.any_of([])
        assert race.triggered

    def test_process_waits_on_condition_of_conditions(self, env):
        def proc(env):
            first = env.all_of([env.timeout(1), env.timeout(2)])
            second = env.all_of([env.timeout(4)])
            yield env.all_of([first, second])
            return env.now

        process = env.process(proc(env))
        assert env.run(until=process) == 4


class TestEventEdges:
    def test_callbacks_none_after_processing(self, env):
        event = env.timeout(0)
        env.run()
        assert event.callbacks is None

    def test_appending_callback_after_processing_fails(self, env):
        event = env.timeout(0)
        env.run()
        with pytest.raises(AttributeError):
            event.callbacks.append(lambda e: None)

    def test_succeed_with_priority_urgent_runs_first(self, env):
        order = []
        normal = env.event()
        normal.callbacks.append(lambda _e: order.append("n"))
        urgent = env.event()
        urgent.callbacks.append(lambda _e: order.append("u"))
        normal.succeed()
        urgent.succeed(priority=0)
        env.run()
        assert order == ["u", "n"]

    def test_environment_isolated_clocks(self):
        env_a = Environment()
        env_b = Environment(initial_time=100)
        env_a.timeout(5)
        env_a.run()
        assert env_a.now == 5
        assert env_b.now == 100

    def test_run_until_negative_event_error_message(self, env):
        never = env.event()
        with pytest.raises(Exception):
            env.run(until=never)

    def test_timeout_value_none_by_default(self, env):
        timeout = env.timeout(1)
        env.run()
        assert timeout.value is None

    def test_event_repr(self, env):
        assert "Event" in repr(env.event())

    def test_value_access_on_pending_condition(self, env):
        join = env.all_of([env.timeout(5)])
        with pytest.raises(SimulationError):
            _ = join.value
