"""Exporters: Prometheus text, JSON snapshots, the HTTP endpoint, and
the ``repro-locking top`` renderer.

The exposition format is a public contract (external scrapers parse
it), so the round-trip test goes through :func:`parse_prometheus_text`
— a real, quote-aware parser — rather than substring checks.
"""

import json
import math
import os
import urllib.request

from repro.obs.exporters import (
    MetricsServer,
    SnapshotWriter,
    json_snapshot,
    parse_prometheus_text,
    prometheus_text,
    read_snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.top import (
    TopMonitor,
    default_snapshot_path,
    read_journal,
    render_frame,
    run_top,
)


def _sample_registry():
    registry = MetricsRegistry()
    registry.counter(
        "repro_txn_commits_total", "Committed transactions."
    ).labels().inc(42)
    aborts = registry.counter(
        "repro_txn_aborts_total", "Aborts.", labels=("cause",)
    )
    aborts.labels("deadlock").inc(3)
    aborts.labels('we"ird\\cause\n').inc(1)
    hist = registry.histogram(
        "repro_lock_wait_time", "Lock waits.",
        labels=("ltot", "protocol"), buckets=(0.5, 1.0, 2.0),
    )
    series = hist.labels("20", "preclaim")
    for value in (0.1, 0.7, 0.7, 5.0):
        series.observe(value)
    registry.gauge("repro_sweep_occupancy", "Occupancy.").labels().set(0.75)
    return registry


# -- Prometheus text ------------------------------------------------------


def test_prometheus_text_round_trips_through_the_parser():
    text = prometheus_text(_sample_registry())
    parsed = parse_prometheus_text(text)
    samples = parsed["samples"]

    assert samples["repro_txn_commits_total"][frozenset()] == 42
    assert samples["repro_txn_aborts_total"][
        frozenset({("cause", "deadlock")})
    ] == 3
    # Escaped label value survives the round trip.
    assert samples["repro_txn_aborts_total"][
        frozenset({("cause", 'we"ird\\cause\n')})
    ] == 1
    assert parsed["meta"]["repro_txn_commits_total"]["type"] == "counter"
    assert parsed["meta"]["repro_lock_wait_time"]["type"] == "histogram"


def test_prometheus_histogram_buckets_are_cumulative_with_inf_last():
    text = prometheus_text(_sample_registry())
    bucket_lines = [
        line for line in text.splitlines()
        if line.startswith("repro_lock_wait_time_bucket")
    ]
    values = [float(line.rsplit(" ", 1)[1]) for line in bucket_lines]
    assert values == [1, 3, 3, 4]  # cumulative, le=+Inf covers all
    assert 'le="+Inf"' in bucket_lines[-1]
    # le is the last label pair on every bucket line.
    import re

    assert all(
        re.search(r',le="[^"]+"\} ', line) for line in bucket_lines
    )
    samples = parse_prometheus_text(text)["samples"]
    assert samples["repro_lock_wait_time_sum"][
        frozenset({("ltot", "20"), ("protocol", "preclaim")})
    ] == 6.5
    assert samples["repro_lock_wait_time_count"][
        frozenset({("ltot", "20"), ("protocol", "preclaim")})
    ] == 4


def test_prometheus_text_accepts_a_snapshot_dict():
    registry = _sample_registry()
    assert prometheus_text(registry.snapshot()) == prometheus_text(registry)


def test_prometheus_formats_non_finite_values():
    registry = MetricsRegistry()
    registry.gauge("g", "help").labels().set(math.inf)
    text = prometheus_text(registry)
    assert "g +Inf" in text


# -- JSON snapshots -------------------------------------------------------


def test_json_snapshot_shape_and_stability():
    registry = _sample_registry()
    first = json_snapshot(registry, exhibit="fig2")
    second = json_snapshot(registry, exhibit="fig2")
    assert first["schema"] == 1
    assert first["context"] == {"exhibit": "fig2"}
    # Deterministic apart from the generation timestamp.
    first.pop("generated_unixtime")
    second.pop("generated_unixtime")
    assert first == second
    # The metrics payload is exactly the registry snapshot.
    assert first["metrics"] == registry.snapshot()


def test_snapshot_writer_is_atomic_and_rate_limited(tmp_path):
    path = str(tmp_path / "metrics.json")
    registry = _sample_registry()
    writer = SnapshotWriter(path, registry, min_interval=3600.0)
    assert writer.maybe_write() is True
    # Within the interval: skipped...
    assert writer.maybe_write() is False
    # ...unless forced.
    assert writer.maybe_write(force=True) is True
    document = read_snapshot(path)
    assert document["metrics"] == registry.snapshot()
    # No temp files left behind.
    assert os.listdir(str(tmp_path)) == ["metrics.json"]


def test_read_snapshot_tolerates_missing_and_torn_files(tmp_path):
    assert read_snapshot(str(tmp_path / "nope.json")) is None
    torn = tmp_path / "torn.json"
    torn.write_text('{"schema": 1, "metrics": {')
    assert read_snapshot(str(torn)) is None


# -- HTTP endpoint --------------------------------------------------------


def test_metrics_server_serves_text_and_json():
    registry = _sample_registry()
    with MetricsServer(registry, port=0) as server:
        base = "http://{}:{}".format(server.host, server.port)
        with urllib.request.urlopen(base + "/metrics", timeout=5) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in resp.headers["Content-Type"]
            text = resp.read().decode()
        assert parse_prometheus_text(text)["samples"][
            "repro_txn_commits_total"
        ][frozenset()] == 42
        with urllib.request.urlopen(base + "/metrics.json", timeout=5) as resp:
            document = json.loads(resp.read().decode())
        assert document["metrics"]["repro_txn_commits_total"][
            "series"
        ][0]["value"] == 42


def test_metrics_server_404_for_unknown_paths():
    with MetricsServer(_sample_registry(), port=0) as server:
        url = "http://{}:{}/other".format(server.host, server.port)
        try:
            urllib.request.urlopen(url, timeout=5)
            raise AssertionError("expected HTTP 404")
        except urllib.error.HTTPError as error:
            assert error.code == 404


# -- top: journal parsing and rendering -----------------------------------


def _write_journal(path, done=3, analytic=1, cells=6, finished=False,
                   torn=False):
    lines = [json.dumps({"sweep": "abcd1234ef", "cells": cells,
                         "label": "fig2"})]
    for i in range(done - analytic):
        lines.append(json.dumps({"done": "cell-{}".format(i)}))
    for i in range(analytic):
        lines.append(json.dumps(
            {"done": "acell-{}".format(i), "provenance": "analytic"}
        ))
    if finished:
        lines.append(json.dumps({"finished": True}))
    text = "\n".join(lines) + "\n"
    if torn:
        text += '{"done": "torn-ce'  # mid-append crash
    path.write_text(text)
    return str(path)


def test_read_journal_counts_cells_and_tolerates_torn_tail(tmp_path):
    path = _write_journal(tmp_path / "s.journal", torn=True)
    state = read_journal(path)
    assert state == {
        "sweep": "abcd1234ef", "label": "fig2", "cells": 6,
        "done": 3, "analytic": 1, "finished": False,
    }


def test_read_journal_missing_file_is_empty_state(tmp_path):
    state = read_journal(str(tmp_path / "nope.journal"))
    assert state["cells"] is None
    assert state["done"] == 0


def test_render_frame_shows_progress_and_metrics():
    journal = {"sweep": "abcd1234ef", "label": "fig2", "cells": 10,
               "done": 4, "analytic": 1, "finished": False}
    metrics = _sample_registry().snapshot()
    frame = render_frame(journal, metrics, rate=2.0,
                         events_per_second=123456.0)
    assert "fig2" in frame
    assert "4/10" in frame
    assert "pruned 1" in frame
    assert "pending 6" in frame
    assert "ETA 3s" in frame  # 6 pending / 2 cells per second
    assert "123,456 ev/s" in frame
    assert "occupancy 75%" in frame
    assert "42 commits" in frame
    assert "deadlock=3" in frame
    assert "4 lock waits" in frame


def test_render_frame_without_metrics_points_at_the_flag():
    frame = render_frame({"label": "fig2", "cells": 4, "done": 0,
                          "analytic": 0, "finished": False})
    assert "--metrics" in frame


def test_run_top_once_renders_a_finished_sweep(tmp_path):
    import io

    journal = _write_journal(
        tmp_path / "s.journal", done=6, analytic=2, cells=6, finished=True
    )
    snapshot = default_snapshot_path(journal)
    SnapshotWriter(snapshot, _sample_registry()).maybe_write(force=True)
    stream = io.StringIO()
    state = run_top(journal, once=True, stream=stream)
    assert state["finished"] is True
    out = stream.getvalue()
    assert "FINISHED" in out
    assert "6/6" in out
    assert "42 commits" in out
    assert "\x1b[" not in out  # --once never clears the screen


def test_top_monitor_derives_rates_across_frames(tmp_path):
    journal_path = tmp_path / "s.journal"
    _write_journal(journal_path, done=2, cells=8, analytic=0)
    snapshot = default_snapshot_path(str(journal_path))
    registry = MetricsRegistry()
    events = registry.counter(
        "repro_kernel_events_total", "Events."
    ).labels()
    events.inc(1000)
    SnapshotWriter(snapshot, registry).maybe_write(force=True)

    monitor = TopMonitor(str(journal_path))
    monitor.frame(now=100.0)
    # Four more cells and 9000 more events over 2 wall seconds.
    _write_journal(journal_path, done=6, cells=8, analytic=0)
    events.inc(9000)
    SnapshotWriter(snapshot, registry).maybe_write(force=True)
    frame, state = monitor.frame(now=102.0)
    assert state["done"] == 6
    assert "4,500 ev/s" in frame
    # rate = 4 cells / 2s = 2/s; 2 pending -> ETA 1s.
    assert "ETA 1s" in frame
