"""The live metrics registry: semantics, overhead posture, neutrality.

Three contracts matter more than any individual counter:

* registry semantics — counters only go up, histograms bucket on the
  committed edges, label cardinality is capped;
* the disabled path is free — a disabled registry hands out one
  shared null instrument and never allocates per call;
* eid-stream neutrality — attaching a registry to a model changes
  *nothing* about the simulation: results are field-for-field
  identical and the content address (cache digest) does not move.
"""

import pytest

from repro.core import SimulationParameters
from repro.core.model import LockingGranularityModel
from repro.experiments.cache import cache_key
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    NULL_INSTRUMENT,
    OVERFLOW_LABEL,
    MetricsRegistry,
    RunInstruments,
    log_buckets,
    summarize_snapshot,
)
from tests.policies.test_cache_digests import GOLDEN_DIGEST

GOLDEN_PARAMS = dict(
    dbsize=500, ltot=20, ntrans=5, maxtransize=50, npros=4,
    tmax=200.0, seed=7,
)


# -- bucket layout -------------------------------------------------------


def test_log_buckets_double_from_start():
    assert log_buckets(start=0.01, factor=2.0, count=4) == (
        0.01, 0.02, 0.04, 0.08,
    )


def test_log_buckets_reject_degenerate_layouts():
    with pytest.raises(ValueError):
        log_buckets(start=0.0)
    with pytest.raises(ValueError):
        log_buckets(factor=1.0)


def test_default_time_buckets_cover_simulation_scales():
    assert DEFAULT_TIME_BUCKETS[0] == pytest.approx(0.01)
    assert len(DEFAULT_TIME_BUCKETS) == 16
    # Strictly increasing — required for bisect-based observation.
    assert all(
        a < b for a, b in zip(DEFAULT_TIME_BUCKETS, DEFAULT_TIME_BUCKETS[1:])
    )


def test_histogram_observations_land_in_the_right_buckets():
    registry = MetricsRegistry()
    series = registry.histogram("h", "help", buckets=(1.0, 2.0, 4.0)).labels()
    for value in (0.5, 1.0, 1.5, 3.0, 100.0):
        series.observe(value)
    # le=1 takes 0.5 and the boundary value 1.0; le=2 takes 1.5;
    # le=4 takes 3.0; 100 lands in the implicit +Inf slot.
    assert list(series.counts) == [2, 1, 1, 1]
    assert series.count == 5
    assert series.sum == pytest.approx(106.0)


def test_histogram_quantile_returns_bucket_upper_edges():
    registry = MetricsRegistry()
    series = registry.histogram("h", "help", buckets=(1.0, 2.0, 4.0)).labels()
    for value in (0.5, 0.6, 0.7, 3.0):
        series.observe(value)
    assert series.quantile(0.5) == 1.0
    assert series.quantile(0.99) == 4.0


# -- counter / gauge semantics -------------------------------------------


def test_counter_inc_and_monotonic_set():
    series = MetricsRegistry().counter("c", "help").labels()
    series.inc()
    series.inc(4)
    assert series.value == 5
    # set() syncs to an external monotonic count: it never goes back.
    series.set(100)
    series.set(40)
    assert series.value == 100


def test_gauge_moves_both_ways():
    series = MetricsRegistry().gauge("g", "help").labels()
    series.set(3.5)
    series.inc(-1.5)
    assert series.value == pytest.approx(2.0)


def test_labelled_series_are_distinct_and_sorted():
    family = MetricsRegistry().counter("c", "help", labels=("mode",))
    family.labels("X").inc(2)
    family.labels("S").inc(3)
    assert [
        (labels, series.value) for labels, series in family.items()
    ] == [(("S",), 3), (("X",), 2)]


def test_label_values_are_coerced_to_strings():
    family = MetricsRegistry().counter("c", "help", labels=("granule",))
    family.labels(7).inc()
    family.labels("7").inc()
    assert [labels for labels, _ in family.items()] == [("7",)]


def test_cardinality_guard_collapses_overflow_series():
    family = MetricsRegistry().counter(
        "c", "help", labels=("granule",), max_series=3
    )
    for granule in range(10):
        family.labels(granule).inc()
    labels = [key for key, _series in family.items()]
    assert (OVERFLOW_LABEL,) in labels
    assert len(labels) == 4  # 3 real series + the overflow bucket
    assert dict(family.items())[(OVERFLOW_LABEL,)].value == 7
    assert family.dropped == 7
    assert family.snapshot()["dropped"] == 7


# -- disabled path -------------------------------------------------------


def test_disabled_registry_hands_out_the_null_instrument():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("c", "help")
    hist = registry.histogram("h", "help")
    assert counter is NULL_INSTRUMENT
    assert hist is NULL_INSTRUMENT
    assert counter.labels("anything") is NULL_INSTRUMENT
    counter.inc()
    hist.observe(1.0)
    assert registry.snapshot() == {}


def test_null_instrument_calls_do_not_allocate():
    import gc
    import sys

    counter = MetricsRegistry(enabled=False).counter("c", "help")

    def exercise():
        for _ in range(1000):
            counter.inc()
            counter.labels("x").observe(2.0)

    # Warm-up pass first: the interpreter lazily materialises method
    # caches on the first calls, which is noise, not a leak.
    exercise()
    gc.collect()
    before = sys.getallocatedblocks()
    exercise()
    # 2000 instrument calls; anything near one block per call would
    # mean the null path allocates.  A handful of blocks is
    # interpreter jitter.
    assert sys.getallocatedblocks() - before <= 10


def test_registering_same_name_with_different_kind_raises():
    registry = MetricsRegistry()
    registry.counter("c", "help")
    with pytest.raises(ValueError):
        registry.gauge("c", "help")


# -- merge + summary -----------------------------------------------------


def test_merge_snapshot_sums_counters_and_histograms():
    worker = MetricsRegistry()
    worker.counter("c", "help").labels().inc(3)
    worker.gauge("g", "help").labels().set(7.0)
    worker.histogram("h", "help", buckets=(1.0, 2.0)).labels().observe(1.5)

    parent = MetricsRegistry()
    parent.merge_snapshot(worker.snapshot())
    parent.merge_snapshot(worker.snapshot())
    snap = parent.snapshot()
    assert snap["c"]["series"][0]["value"] == 6
    assert snap["g"]["series"][0]["value"] == 7.0  # gauges: last wins
    assert snap["h"]["series"][0]["count"] == 2
    assert snap["h"]["series"][0]["counts"] == [0, 2, 0]


def test_summarize_snapshot_flattens_names_and_quantiles():
    registry = MetricsRegistry()
    registry.counter("c", "help", labels=("kind",)).labels("x").inc(2)
    series = registry.histogram("h", "help", buckets=(1.0, 2.0, 4.0)).labels()
    series.observe(0.5)
    series.observe(3.0)
    flat = summarize_snapshot(registry.snapshot())
    assert flat["counters"] == {"c{kind=x}": 2}
    assert flat["histograms"]["h"]["count"] == 2
    assert flat["histograms"]["h"]["p50"] == 1.0
    assert flat["histograms"]["h"]["mean"] == pytest.approx(1.75)


# -- neutrality: metrics never change the simulation ---------------------


def test_golden_run_is_bit_identical_with_metrics_attached():
    params = SimulationParameters(**GOLDEN_PARAMS)
    plain = LockingGranularityModel(params).run()
    registry = MetricsRegistry()
    instrumented = LockingGranularityModel(
        params, metrics_registry=registry
    ).run()
    assert plain.as_dict() == instrumented.as_dict()
    # The golden totals of tests/test_regression_golden.py, re-pinned
    # here so this test fails loudly on its own if the physics move.
    assert instrumented.totcom == 129
    # And the instrumentation agrees with the result it watched.
    flat = summarize_snapshot(registry.snapshot())
    assert flat["counters"]["repro_txn_commits_total"] == 129
    assert flat["counters"]["repro_lock_requests_total"] == (
        plain.lock_requests
    )
    assert flat["counters"]["repro_lock_denials_total"] == plain.lock_denials


def test_cache_digest_does_not_move_with_metrics_enabled():
    # Instrumentation is harness state, not physics: the content
    # address that cache, journal and manifests key off must not see
    # it.
    params = SimulationParameters(**GOLDEN_PARAMS)
    assert cache_key(params) == GOLDEN_DIGEST
    LockingGranularityModel(
        params, metrics_registry=MetricsRegistry()
    ).run()
    assert cache_key(params) == GOLDEN_DIGEST


def test_explicit_engine_populates_lockmgr_and_wait_series():
    params = SimulationParameters(
        **dict(GOLDEN_PARAMS, tmax=100.0)
    ).replace(protocol="incremental", conflict_engine="explicit")
    registry = MetricsRegistry()
    LockingGranularityModel(params, metrics_registry=registry).run()
    flat = summarize_snapshot(registry.snapshot())
    grants = [
        value for name, value in flat["counters"].items()
        if name.startswith("repro_lockmgr_events_total{event=grant")
    ]
    assert sum(grants) > 0
    waits = [
        entry for name, entry in flat["histograms"].items()
        if name.startswith("repro_lock_wait_time")
    ]
    assert waits and sum(entry["count"] for entry in waits) > 0
    # Explicit-engine waits carry granule identity.
    assert any(
        name.startswith("repro_granule_waits_total")
        for name in flat["counters"]
    )


def test_run_instruments_abort_causes_are_labelled():
    registry = MetricsRegistry()
    instruments = RunInstruments(registry)
    instruments.note_abort("deadlock")
    instruments.note_abort("deadlock")
    instruments.note_abort("wounded")
    flat = summarize_snapshot(registry.snapshot())
    assert flat["counters"]["repro_txn_aborts_total{cause=deadlock}"] == 2
    assert flat["counters"]["repro_txn_aborts_total{cause=wounded}"] == 1


def test_multi_class_runs_populate_class_families():
    params = SimulationParameters(**GOLDEN_PARAMS).replace(
        workload="classes",
        txn_classes="oltp:0.8:20,batch:0.2:200",
    )
    registry = MetricsRegistry()
    result = LockingGranularityModel(
        params, metrics_registry=registry
    ).run()
    flat = summarize_snapshot(registry.snapshot())
    for name in result.value("totcom__oltp"), result.value("totcom__batch"):
        assert name > 0
    # Commit counters match the per-class result breakdown (the
    # instruments count every commit; the result only the measured
    # window, so the counters dominate).
    for entry in result.per_class:
        commits = flat["counters"][
            "repro_class_commits_total{{txn_class={}}}".format(
                entry["txn_class"]
            )
        ]
        assert commits >= entry["totcom"]
    # Response-time histograms exist per class.
    assert any(
        name.startswith("repro_class_response_time{txn_class=oltp}")
        for name in flat["histograms"]
    )


def test_single_class_runs_emit_no_class_series():
    registry = MetricsRegistry()
    LockingGranularityModel(
        SimulationParameters(**GOLDEN_PARAMS), metrics_registry=registry
    ).run()
    flat = summarize_snapshot(registry.snapshot())
    class_series = [
        name
        for group in ("counters", "histograms")
        for name in flat[group]
        if name.startswith("repro_class_")
    ]
    assert class_series == []
