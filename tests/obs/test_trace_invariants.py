"""Causal ordering invariants of exported traces.

These assertions go beyond the per-transaction *ordering* checks in
``tests/des/test_trace.py``: they state the causal preconditions of
each lifecycle transition — a grant needs a request, a join needs every
forked sub-transaction to have finished, a retry needs a prior denial
or abort — and they check them on the *exported* JSONL representation,
so the round trip through :class:`~repro.obs.sinks.JsonlTraceSink` and
:func:`~repro.obs.sinks.load_trace` is part of what is verified.
"""

from collections import defaultdict

import pytest

from repro.core.model import LockingGranularityModel
from repro.obs.sinks import JsonlTraceSink, load_trace


def _traced_records(params, tmp_path):
    """Run *params* with a JSONL sink and replay the file's records."""
    path = tmp_path / "run.jsonl"
    with JsonlTraceSink(path, params=params.as_dict()) as sink:
        LockingGranularityModel(params, trace=sink).run()
    return load_trace(path).records


@pytest.fixture(params=["preclaim", "incremental"])
def records(request, fast_params, tmp_path):
    if request.param == "incremental":
        params = fast_params.replace(
            conflict_engine="explicit", protocol="incremental"
        )
    else:
        params = fast_params
    return _traced_records(params, tmp_path)


def _per_txn(records):
    timelines = defaultdict(list)
    for record in records:
        if record.subject:  # skip system events (subject 0)
            timelines[record.subject].append(record)
    return timelines


def test_every_grant_preceded_by_request(records):
    """A lock_grant without an earlier lock_request is impossible."""
    granted = False
    requests = defaultdict(int)
    grants = defaultdict(int)
    for record in records:
        if record.kind == "lock_request":
            requests[record.subject] += 1
        elif record.kind == "lock_grant":
            granted = True
            grants[record.subject] += 1
            assert grants[record.subject] <= requests[record.subject], (
                "txn {} granted more often than it requested".format(
                    record.subject
                )
            )
            # The grant reports the attempt that won; that attempt must
            # have been requested.
            attempt = record.details.get("attempt")
            assert attempt is not None and attempt <= requests[record.subject]
    assert granted, "run produced no grants at all — fixture too small"


def test_every_join_preceded_by_all_forked_sub_completions(records):
    """A join may only fire once every forked sub-transaction ended."""
    forks = defaultdict(int)
    io_ends = defaultdict(int)
    cpu_ends = defaultdict(int)
    joined = False
    for record in records:
        tid = record.subject
        if record.kind == "fork":
            forks[tid] += 1
        elif record.kind == "io_end":
            io_ends[tid] += 1
        elif record.kind == "cpu_end":
            cpu_ends[tid] += 1
        elif record.kind == "join":
            joined = True
            assert record.details["subs"] == forks[tid], tid
            assert io_ends[tid] == forks[tid], (
                "txn {} joined with {} of {} sub I/O phases done".format(
                    tid, io_ends[tid], forks[tid]
                )
            )
            assert cpu_ends[tid] == forks[tid], (
                "txn {} joined with {} of {} sub CPU phases done".format(
                    tid, cpu_ends[tid], forks[tid]
                )
            )
    assert joined, "run produced no joins at all — fixture too small"


def test_every_retry_preceded_by_deny_or_abort(records):
    """Attempt N+1 requires attempt N to have been denied or aborted."""
    setbacks = defaultdict(int)  # denials + aborts seen so far, per txn
    for record in records:
        tid = record.subject
        if record.kind in ("lock_deny", "abort"):
            setbacks[tid] += 1
        elif record.kind == "lock_request":
            attempt = record.details["attempt"]
            assert attempt == setbacks[tid] + 1, (
                "txn {} attempt {} after only {} denials/aborts".format(
                    tid, attempt, setbacks[tid]
                )
            )


def test_commit_and_complete_are_terminal_and_paired(records):
    """Each completed transaction commits exactly once, then completes."""
    for tid, events in _per_txn(records).items():
        kinds = [record.kind for record in events]
        if "complete" not in kinds:
            continue  # cut off by tmax mid-flight
        assert kinds.count("commit") == 1, tid
        assert kinds.count("complete") == 1, tid
        assert kinds.index("commit") == len(kinds) - 2, tid
        assert kinds[-1] == "complete", tid


def test_exported_times_monotonic_per_transaction(records):
    for tid, events in _per_txn(records).items():
        times = [record.time for record in events]
        assert times == sorted(times), tid
