"""Unit tests for the telemetry report generator."""

import pytest

from repro.core.model import LockingGranularityModel
from repro.obs.report import (
    format_report,
    format_timeline,
    save_report_chart,
    sparkline,
    summarize_trace,
    timeline_chart,
)
from repro.obs.sinks import JsonlTraceSink, TraceFile, load_trace
from repro.obs.telemetry import Telemetry


@pytest.fixture
def tracefile(fast_params, tmp_path):
    """A real short run exported to JSONL and replayed."""
    path = tmp_path / "run.jsonl"
    sink = JsonlTraceSink(path, params=fast_params.as_dict())
    telemetry = Telemetry(sink=sink, sample_interval=20.0)
    LockingGranularityModel(fast_params, telemetry=telemetry).run()
    telemetry.finish()
    return load_trace(path)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_is_all_low(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_monotone_series_ends_high(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁" and line[-1] == "█"

    def test_respects_explicit_bounds(self):
        assert sparkline([5], lo=0, hi=10) != sparkline([5], lo=5, hi=5)


class TestSummarize:
    def test_counts_match_run(self, tracefile):
        summary = summarize_trace(tracefile)
        assert summary["events"] == len(tracefile.records)
        assert summary["completions"] == summary["counts"]["complete"]
        assert summary["completions"] > 0
        assert summary["mean_response"] > 0
        assert summary["max_response"] >= summary["mean_response"]
        assert summary["samples"] == len(tracefile.samples)

    def test_top_blockers_reference_denials(self, tracefile):
        # Uncapped: every preclaim denial contributes one lock_deny and
        # one block record, both naming the blocker.
        summary = summarize_trace(tracefile, top=len(tracefile.records))
        denials = summary["counts"].get("lock_deny", 0)
        blocked = sum(count for _tid, count in summary["top_blockers"])
        assert denials > 0
        assert blocked == 2 * denials

    def test_retries_are_later_attempts(self, tracefile):
        summary = summarize_trace(tracefile)
        requests = summary["counts"]["lock_request"]
        first_attempts = sum(
            1 for r in tracefile.records
            if r.kind == "lock_request" and r.details.get("attempt") == 1
        )
        assert summary["retries"] == requests - first_attempts

    def test_top_limits_list_length(self, tracefile):
        summary = summarize_trace(tracefile, top=2)
        assert len(summary["top_blockers"]) <= 2


class TestFormatting:
    def test_report_mentions_key_quantities(self, tracefile):
        text = format_report(tracefile)
        assert "Telemetry report" in text
        assert "completions" in text
        assert "events by kind" in text
        assert "Utilisation timeline" in text

    def test_timeline_without_samples(self):
        empty = TraceFile(header={"schema": 1}, records=[], samples=[])
        assert "no time-series samples" in format_timeline(empty.samples)

    def test_report_on_sample_free_file(self, fast_params, tmp_path):
        path = tmp_path / "nosamples.jsonl"
        with JsonlTraceSink(path) as sink:
            LockingGranularityModel(fast_params, trace=sink).run()
        text = format_report(load_trace(path))
        assert "no time-series samples" in text


class TestSvg:
    def test_chart_has_all_series(self, tracefile):
        svg = timeline_chart(tracefile).render()
        for label in ("cpu util", "disk util", "blocked", "active"):
            assert label in svg

    def test_save_writes_file(self, tracefile, tmp_path):
        path = tmp_path / "timeline.svg"
        saved = save_report_chart(tracefile, str(path))
        assert saved == str(path)
        assert path.read_text().startswith("<svg")
