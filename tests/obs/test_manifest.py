"""Unit tests for run provenance manifests."""

import json

from repro.core.model import MODEL_VERSION
from repro.experiments.cache import ResultCache, cache_key
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    load_manifest,
    write_manifest,
)


class TestBuild:
    def test_fields(self, fast_params):
        manifest = build_manifest(
            fast_params, cache_hit=False, wall_seconds=1.25
        )
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["params_hash"] == cache_key(fast_params)
        assert manifest["seed"] == fast_params.seed
        assert manifest["model_version"] == MODEL_VERSION
        assert manifest["cache_hit"] is False
        assert manifest["wall_seconds"] == 1.25
        assert manifest["python"]
        assert manifest["created_unix"] > 0

    def test_extra_fields_merged(self, fast_params):
        manifest = build_manifest(fast_params, exhibit="fig2")
        assert manifest["exhibit"] == "fig2"

    def test_explicit_model_version_changes_hash(self, fast_params):
        current = build_manifest(fast_params)
        pinned = build_manifest(fast_params, model_version=MODEL_VERSION + 1)
        assert pinned["model_version"] == MODEL_VERSION + 1
        assert pinned["params_hash"] != current["params_hash"]


class TestRoundTrip:
    def test_write_and_load(self, fast_params, tmp_path):
        path = tmp_path / "run.manifest"
        manifest = build_manifest(fast_params)
        assert write_manifest(str(path), manifest) == str(path)
        assert load_manifest(str(path)) == json.loads(json.dumps(manifest))

    def test_load_missing_returns_none(self, tmp_path):
        assert load_manifest(str(tmp_path / "absent.manifest")) is None

    def test_load_corrupt_returns_none(self, tmp_path):
        path = tmp_path / "bad.manifest"
        path.write_text("{{{not json")
        assert load_manifest(str(path)) is None

    def test_load_wrong_schema_returns_none(self, tmp_path):
        path = tmp_path / "future.manifest"
        path.write_text(json.dumps({"schema": MANIFEST_SCHEMA + 1}))
        assert load_manifest(str(path)) is None


class TestCacheIntegration:
    def test_manifest_stored_next_to_entry(self, fast_params, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        manifest = build_manifest(fast_params, wall_seconds=0.5)
        path = cache.put_manifest(fast_params, manifest)
        assert path.endswith(".manifest")
        loaded = cache.get_manifest(fast_params)
        assert loaded["params_hash"] == cache_key(fast_params)
        # Manifests must not count as cache entries.
        assert len(cache) == 0

    def test_get_manifest_missing_returns_none(self, fast_params, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        assert cache.get_manifest(fast_params) is None
