"""Unit tests for the sampled time-series recorder."""

import pytest

from repro.core.model import LockingGranularityModel
from repro.obs.sinks import JsonlTraceSink, load_trace
from repro.obs.telemetry import Telemetry
from repro.obs.timeseries import TimeSeriesRecorder


class TestRecorder:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(0)
        with pytest.raises(ValueError):
            TimeSeriesRecorder(-1.0)

    def test_samples_at_interval(self, fast_params):
        telemetry = Telemetry(sample_interval=10.0)
        model = LockingGranularityModel(fast_params, telemetry=telemetry)
        model.run()
        rows = telemetry.timeseries.rows
        # tmax=200 at interval 10: samples at t=10, 20, ..., 200.
        assert len(rows) == 20
        assert [row["t"] for row in rows] == [
            pytest.approx(10.0 * (i + 1)) for i in range(20)
        ]

    def test_row_shape(self, fast_params):
        telemetry = Telemetry(sample_interval=25.0)
        model = LockingGranularityModel(fast_params, telemetry=telemetry)
        model.run()
        row = telemetry.timeseries.rows[0]
        npros = fast_params.npros
        assert len(row["cpu_q"]) == npros
        assert len(row["disk_q"]) == npros
        assert len(row["cpu_util"]) == npros
        assert len(row["disk_util"]) == npros
        for util in row["cpu_util"] + row["disk_util"]:
            assert 0.0 <= util <= 1.0 + 1e-9
        for key in ("pending", "blocked", "active", "locks_held"):
            assert row[key] >= 0

    def test_some_activity_is_visible(self, fast_params):
        """A busy closed system must show non-zero utilisation."""
        telemetry = Telemetry(sample_interval=10.0)
        model = LockingGranularityModel(fast_params, telemetry=telemetry)
        model.run()
        rows = telemetry.timeseries.rows
        assert any(sum(row["disk_util"]) > 0 for row in rows)
        assert any(row["active"] > 0 for row in rows)


class TestBitIdentity:
    def test_sampling_does_not_change_results(self, fast_params):
        """The recorder reads state only: results stay bit-identical."""
        plain = LockingGranularityModel(fast_params).run()
        sampled = LockingGranularityModel(
            fast_params, telemetry=Telemetry(sample_interval=5.0)
        ).run()
        for field in (
            "totcom", "throughput", "response_time", "response_p50",
            "response_p95", "totcpus", "totios", "lockcpus", "lockios",
            "lock_requests", "lock_denials", "deadlock_aborts",
            "mean_blocked", "mean_active",
        ):
            assert getattr(plain, field) == getattr(sampled, field), field


class TestExport:
    def test_samples_flushed_into_jsonl(self, fast_params, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry = Telemetry(
            sink=JsonlTraceSink(path), sample_interval=20.0
        )
        LockingGranularityModel(fast_params, telemetry=telemetry).run()
        telemetry.finish(note="done")
        loaded = load_trace(path)
        assert len(loaded.samples) == 10
        assert loaded.footer["samples"] == 10
        assert loaded.footer["note"] == "done"
        assert loaded.samples[0]["t"] == pytest.approx(20.0)
        assert "blocked" in loaded.samples[0]
