"""Unit tests for the trace sinks and the JSONL replay loader."""

import json

import pytest

from repro.des.trace import Trace
from repro.obs.sinks import (
    TRACE_SCHEMA,
    JsonlTraceSink,
    MultiSink,
    RingBufferSink,
    TraceSchemaError,
    load_trace,
)


class TestRingBufferAlias:
    def test_alias_is_trace(self):
        assert RingBufferSink is Trace


class TestMultiSink:
    def test_fans_out_to_every_sink(self):
        a, b = Trace(), Trace()
        multi = MultiSink([a, b])
        multi.emit(1.0, "arrive", 7, nu=3)
        assert len(a) == 1 and len(b) == 1
        assert a.records()[0].details == {"nu": 3}


class TestJsonlRoundTrip:
    def test_records_survive_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(path, params={"seed": 1}, model_version=2) as sink:
            sink.emit(0.0, "arrive", 1, nu=5)
            sink.emit(1.5, "complete", 1, response=1.5)
            sink.emit_sample(5.0, {"blocked": 2})
        loaded = load_trace(path)
        assert loaded.header["schema"] == TRACE_SCHEMA
        assert loaded.header["model_version"] == 2
        assert loaded.params == {"seed": 1}
        assert len(loaded) == 2
        assert loaded.records[0].kind == "arrive"
        assert loaded.records[0].details == {"nu": 5}
        assert loaded.records[1].details["response"] == 1.5
        assert loaded.samples == [{"t": 5.0, "blocked": 2}]
        assert loaded.footer["events"] == 2
        assert loaded.footer["samples"] == 1

    def test_to_trace_rematerialises_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.emit(0.0, "arrive", 1)
            sink.emit(2.0, "complete", 1)
        trace = load_trace(path).to_trace()
        assert trace.timeline(1) == [("arrive", 0.0), ("complete", 2.0)]

    def test_footer_accepts_extra_fields(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path)
        sink.close(totcom=42)
        assert load_trace(path).footer["totcom"] == 42

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()  # second close must not append a second footer
        lines = (tmp_path / "t.jsonl").read_text().splitlines()
        assert sum('"footer"' in line for line in lines) == 1

    def test_truncated_file_loads_without_footer(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path)
        sink.emit(1.0, "arrive", 1)
        sink._handle.flush()  # simulate a crash: no close, no footer
        loaded = load_trace(path)
        assert loaded.footer is None
        assert len(loaded) == 1


class TestSchemaValidation:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceSchemaError):
            load_trace(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "record", "t": 0, "kind": "x", "txn": 1}\n')
        with pytest.raises(TraceSchemaError, match="header"):
            load_trace(path)

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"type": "header", "schema": TRACE_SCHEMA + 1}) + "\n"
        )
        with pytest.raises(TraceSchemaError, match="schema"):
            load_trace(path)

    def test_unparsable_line_rejected(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text(
            json.dumps({"type": "header", "schema": TRACE_SCHEMA})
            + "\nnot json{{{\n"
        )
        with pytest.raises(TraceSchemaError, match="unparsable"):
            load_trace(path)

    def test_unknown_line_type_rejected(self, tmp_path):
        path = tmp_path / "weird.jsonl"
        path.write_text(
            json.dumps({"type": "header", "schema": TRACE_SCHEMA})
            + "\n" + json.dumps({"type": "mystery"}) + "\n"
        )
        with pytest.raises(TraceSchemaError, match="unknown line type"):
            load_trace(path)
