"""Package-level quality gates: API surface and documentation."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    "repro",
    "repro.analytic",
    "repro.analytic.granularity",
    "repro.analytic.mva",
    "repro.analytic.queueing",
    "repro.analytic.yao",
    "repro.cli",
    "repro.core",
    "repro.core.conflict",
    "repro.core.hierarchy_engine",
    "repro.core.metrics",
    "repro.core.model",
    "repro.core.parameters",
    "repro.core.partitioning",
    "repro.core.placement",
    "repro.core.results",
    "repro.core.transaction",
    "repro.core.txnclass",
    "repro.core.workload",
    "repro.des",
    "repro.des.calendar",
    "repro.des.engine",
    "repro.des.errors",
    "repro.des.events",
    "repro.des.monitor",
    "repro.des.process",
    "repro.des.resource",
    "repro.des.rng",
    "repro.des.server",
    "repro.des.store",
    "repro.des.trace",
    "repro.engine",
    "repro.engine.cluster",
    "repro.engine.machine",
    "repro.engine.processor",
    "repro.engine.txn_scheduler",
    "repro.experiments",
    "repro.experiments.accelerator",
    "repro.experiments.cache",
    "repro.experiments.config",
    "repro.experiments.crossval",
    "repro.experiments.figures",
    "repro.experiments.journal",
    "repro.experiments.report",
    "repro.experiments.runner",
    "repro.experiments.search",
    "repro.experiments.sensitivity",
    "repro.experiments.storage",
    "repro.experiments.svg",
    "repro.faults",
    "repro.faults.backoff",
    "repro.faults.injector",
    "repro.faults.plan",
    "repro.lockmgr",
    "repro.lockmgr.deadlock",
    "repro.lockmgr.hierarchy",
    "repro.lockmgr.manager",
    "repro.lockmgr.modes",
    "repro.lockmgr.table",
    "repro.net",
    "repro.net.network",
    "repro.obs",
    "repro.obs.exporters",
    "repro.obs.manifest",
    "repro.obs.metrics",
    "repro.obs.report",
    "repro.obs.sinks",
    "repro.obs.telemetry",
    "repro.obs.timeseries",
    "repro.obs.top",
    "repro.policies",
    "repro.policies.admission",
    "repro.policies.arrival",
    "repro.policies.cc",
    "repro.policies.commit",
    "repro.policies.conflict",
    "repro.policies.placement",
    "repro.policies.registry",
    "repro.policies.workload",
    "repro.stats",
    "repro.stats.batchmeans",
    "repro.stats.student_t",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, "{} lacks a module docstring".format(name)


def test_module_list_is_complete():
    """Every module under repro/ must be listed (and hence checked)."""
    found = {"repro"}
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        found.add(info.name)
    assert found == set(MODULES)


def iter_public_callables(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_have_docstrings(name):
    module = importlib.import_module(name)
    undocumented = []
    for obj_name, obj in iter_public_callables(module):
        if not inspect.getdoc(obj):
            undocumented.append(obj_name)
        if inspect.isclass(obj):
            for member_name, member in vars(obj).items():
                if member_name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not inspect.getdoc(member):
                    undocumented.append(
                        "{}.{}".format(obj_name, member_name)
                    )
    assert not undocumented, "undocumented in {}: {}".format(
        name, undocumented
    )


class TestPublicAPI:
    def test_top_level_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)

    def test_headline_entry_points(self):
        from repro import SimulationParameters, simulate

        result = simulate(
            SimulationParameters(
                dbsize=100, ltot=5, ntrans=2, maxtransize=10, npros=2,
                tmax=50.0,
            )
        )
        assert result.totcom >= 0
