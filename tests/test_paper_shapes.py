"""Integration tests: the paper's qualitative findings must reproduce.

Each test encodes one claim from the paper's prose as an assertion on
short-horizon simulations.  Horizons are kept small (completions in
the hundreds) so the whole module stays in the tens of seconds; the
benchmark harness regenerates the full figures.
"""

import pytest

from repro.core import SimulationParameters, simulate


def sweep(params, ltots):
    return {ltot: simulate(params.replace(ltot=ltot)).throughput for ltot in ltots}


@pytest.fixture(scope="module")
def base():
    return SimulationParameters(tmax=400.0, seed=17)


class TestFigure2Claims:
    def test_throughput_increases_with_processors(self, base):
        by_npros = {
            npros: simulate(base.replace(npros=npros, ltot=50)).throughput
            for npros in (1, 5, 30)
        }
        assert by_npros[1] < by_npros[5] < by_npros[30]

    def test_convexity_optimum_between_extremes(self, base):
        curve = sweep(base.replace(npros=10), (1, 20, 5000))
        assert curve[20] > curve[1]
        assert curve[20] > curve[5000]

    def test_optimum_below_200_locks(self, base):
        curve = sweep(base.replace(npros=30), (1, 10, 50, 200, 1000, 5000))
        best = max(curve, key=curve.get)
        assert best <= 200

    def test_penalty_for_too_fine_grows_with_processors(self, base):
        # Relative throughput loss from optimum to ltot=5000 grows
        # with the processor count (absolute penalty certainly does).
        losses = {}
        for npros in (2, 30):
            curve = sweep(base.replace(npros=npros), (20, 5000))
            losses[npros] = curve[20] - curve[5000]
        assert losses[30] > losses[2]

    def test_response_time_decreases_with_processors(self, base):
        responses = {
            npros: simulate(base.replace(npros=npros, ltot=50)).response_time
            for npros in (1, 10, 30)
        }
        assert responses[1] > responses[10] > responses[30]


class TestFigure3Claims:
    def test_useful_io_convex_in_ltot(self, base):
        # Rises from the serial regime to the optimum, then collapses
        # as lock work steals the devices.
        params = base.replace(npros=10)
        useful = {
            ltot: simulate(params.replace(ltot=ltot)).usefulios
            for ltot in (1, 50, 5000)
        }
        assert useful[50] > useful[1]
        assert useful[50] > useful[5000]

    def test_small_systems_lose_more_useful_time_to_locks(self, base):
        # The paper's Fig 4 commentary: "systems with smaller number of
        # processors tend to spend more time on lock operations" — at
        # fine granularity the uniprocessor's useful time collapses.
        fine = {
            npros: simulate(base.replace(npros=npros, ltot=5000))
            for npros in (1, 30)
        }
        ratio_1 = fine[1].usefulios / base.tmax
        ratio_30 = fine[30].usefulios / base.tmax
        assert ratio_1 < ratio_30

    def test_useful_io_decreases_with_processors_at_coarse_granularity(
        self, base
    ):
        coarse = {
            npros: simulate(base.replace(npros=npros, ltot=1)).usefulios
            for npros in (1, 30)
        }
        assert coarse[30] < coarse[1]


class TestFigures4And5Claims:
    def test_lock_overhead_rises_steeply_past_200(self, base):
        params = base.replace(npros=10)
        coarse = simulate(params.replace(ltot=200)).lock_overhead
        fine = simulate(params.replace(ltot=5000)).lock_overhead
        assert fine > 3 * coarse

    def test_small_transactions_more_overhead_at_coarse_granularity(self, base):
        params = base.replace(npros=10, ltot=10)
        small = simulate(params.replace(maxtransize=50)).lock_overhead
        large = simulate(params.replace(maxtransize=500)).lock_overhead
        # Small transactions complete faster -> more requests -> more
        # lock overhead at low lock counts.
        assert small > large


class TestFigure6Claims:
    def test_smaller_transactions_much_higher_throughput(self, base):
        params = base.replace(npros=10, ltot=100)
        small = simulate(params.replace(maxtransize=50)).throughput
        large = simulate(params.replace(maxtransize=5000)).throughput
        assert small > 5 * large

    def test_optimum_shifts_right_for_smaller_transactions(self, base):
        params = base.replace(npros=10)
        grid = (1, 5, 20, 100, 500, 5000)
        small_curve = sweep(params.replace(maxtransize=50), grid)
        large_curve = sweep(params.replace(maxtransize=2500), grid)
        small_best = max(small_curve, key=small_curve.get)
        large_best = max(large_curve, key=large_curve.get)
        assert small_best >= large_best
        assert small_best <= 200


class TestFigure7Claims:
    def test_zero_lock_io_keeps_fine_granularity_harmless(self, base):
        params = base.replace(npros=10, liotime=0.0)
        curve = sweep(params, (100, 5000))
        # Flat extremum: within a few percent of each other.
        assert curve[5000] == pytest.approx(curve[100], rel=0.10)

    def test_finite_lock_io_punishes_fine_granularity(self, base):
        params = base.replace(npros=10, liotime=0.2)
        curve = sweep(params, (100, 5000))
        assert curve[5000] < 0.7 * curve[100]

    def test_memory_resident_lock_table_does_not_beat_optimum(self, base):
        # §3.3: even liotime=0 cannot push the maximum much above the
        # finite-cost optimum.
        with_io = sweep(base.replace(npros=10, liotime=0.2), (10, 100))
        without_io = sweep(base.replace(npros=10, liotime=0.0), (10, 100, 5000))
        assert max(without_io.values()) <= max(with_io.values()) * 1.15


class TestFigure8Claims:
    def test_horizontal_beats_random_partitioning(self, base):
        params = base.replace(npros=20, ltot=50)
        horizontal = simulate(params).throughput
        randomised = simulate(params.replace(partitioning="random")).throughput
        assert horizontal > randomised

    def test_processor_ordering_unchanged_by_partitioning(self, base):
        by_npros = {
            npros: simulate(
                base.replace(npros=npros, ltot=50, partitioning="random")
            ).throughput
            for npros in (2, 10, 30)
        }
        assert by_npros[2] < by_npros[10] < by_npros[30]


class TestFigures9And10Claims:
    def test_random_placement_trough_near_mean_size(self, base):
        params = base.replace(npros=30, maxtransize=500, placement="random")
        curve = sweep(params, (1, 250, 5000))
        assert curve[250] < curve[1]
        assert curve[250] < curve[5000]

    def test_worst_placement_below_random(self, base):
        params = base.replace(npros=30, maxtransize=500, ltot=250)
        worst = simulate(params.replace(placement="worst")).throughput
        randomised = simulate(params.replace(placement="random")).throughput
        assert worst <= randomised * 1.05

    def test_placements_agree_at_extremes(self, base):
        # At ltot=1 every placement needs the single lock; at
        # ltot=dbsize random degenerates to entity locks.
        params = base.replace(npros=30, maxtransize=50)
        for ltot in (1,):
            best = simulate(params.replace(placement="best", ltot=ltot))
            worst = simulate(params.replace(placement="worst", ltot=ltot))
            assert best.throughput == pytest.approx(worst.throughput, rel=0.05)

    def test_small_random_access_wants_fine_granularity(self, base):
        # §4: fine granularity desired for small random transactions —
        # within random placement, entity locks beat mid granularity.
        params = base.replace(npros=30, maxtransize=50, placement="random")
        curve = sweep(params, (50, 5000))
        assert curve[5000] > 1.5 * curve[50]


class TestFigure11Claims:
    def test_mixed_workload_between_extremes_and_dragged_down(self, base):
        params = base.replace(npros=30, ltot=5000)
        small = simulate(params.replace(maxtransize=50)).throughput
        large = simulate(params.replace(maxtransize=500)).throughput
        mixed = simulate(params.replace(workload="mixed")).throughput
        assert large < mixed < small
        # "even the presence of 20% large transactions substantially
        # affects system throughput": well below the small-only rate.
        assert mixed < 0.6 * small


class TestFigure12Claims:
    def test_heavy_load_prefers_coarse_granularity(self):
        params = SimulationParameters(
            ntrans=200, npros=20, maxtransize=500, tmax=400.0, seed=23
        )
        coarse = simulate(params.replace(ltot=1)).throughput
        fine = simulate(params.replace(ltot=5000)).throughput
        assert coarse > fine

    def test_lock_overhead_scales_with_population(self):
        light = simulate(
            SimulationParameters(ntrans=10, npros=20, ltot=5000, tmax=300.0, seed=3)
        )
        heavy = simulate(
            SimulationParameters(ntrans=200, npros=20, ltot=5000, tmax=300.0, seed=3)
        )
        assert heavy.lock_overhead > light.lock_overhead


class TestEngineAgreement:
    def test_probabilistic_and_explicit_agree_on_shape(self, base):
        grid = (1, 20, 5000)
        params = base.replace(npros=10, tmax=300.0)
        prob = sweep(params, grid)
        expl = {
            ltot: simulate(
                params.replace(conflict_engine="explicit", ltot=ltot)
            ).throughput
            for ltot in grid
        }
        # Same ordering of the three regimes.
        assert (prob[20] > prob[1]) == (expl[20] > expl[1])
        assert (prob[20] > prob[5000]) == (expl[20] > expl[5000])
