"""Tests for operational laws, including cross-validation vs the simulator."""

import pytest

from repro.analytic.queueing import (
    balanced_system_throughput,
    bottleneck_demand,
    response_time_lower_bound,
    service_demands,
    throughput_upper_bound,
    total_demand,
)
from repro.core import SimulationParameters, simulate


class TestDemands:
    def test_disk_dominates_with_table1_costs(self):
        # iotime = 4 x cputime and liotime = 20 x lcputime: the disk
        # is always the bottleneck.
        params = SimulationParameters()
        demands = service_demands(params)
        assert demands["disk"] > demands["cpu"]
        assert bottleneck_demand(params) == demands["disk"]

    def test_demands_scale_inversely_with_processors(self):
        small = service_demands(SimulationParameters(npros=2))
        large = service_demands(SimulationParameters(npros=20))
        assert small["disk"] == pytest.approx(10 * large["disk"])

    def test_lock_demand_grows_with_ltot(self):
        coarse = service_demands(SimulationParameters(ltot=10))
        fine = service_demands(SimulationParameters(ltot=5000))
        assert fine["disk"] > coarse["disk"]
        assert fine["cpu"] > coarse["cpu"]

    def test_total_demand_accounts_for_all_stations(self):
        params = SimulationParameters(npros=4)
        demands = service_demands(params)
        assert total_demand(params) == pytest.approx(
            4 * (demands["disk"] + demands["cpu"])
        )

    def test_explicit_nu_overrides_mean(self):
        params = SimulationParameters()
        small = service_demands(params, nu=10)
        large = service_demands(params, nu=1000)
        assert large["disk"] > small["disk"]


class TestBounds:
    def test_upper_bound_positive_finite(self):
        bound = throughput_upper_bound(SimulationParameters())
        assert 0 < bound < float("inf")

    def test_population_bound_active_for_single_customer(self):
        # With one customer there is no queueing: X <= 1 / R_min binds
        # below the bottleneck bound.
        params = SimulationParameters(ntrans=1, npros=10)
        assert throughput_upper_bound(params) == pytest.approx(
            1.0 / response_time_lower_bound(params)
        )
        assert throughput_upper_bound(params) < 1.0 / bottleneck_demand(params)

    def test_balanced_estimate_below_upper_bound(self):
        params = SimulationParameters()
        assert balanced_system_throughput(params) <= throughput_upper_bound(
            params
        ) * (1 + 1e-9)


class TestSimulatorObeysBounds:
    """The simulator can never beat the operational-law bounds."""

    @pytest.mark.parametrize(
        "changes",
        [
            {},
            {"ltot": 1},
            {"ltot": 5000},
            {"npros": 1},
            {"npros": 30},
            {"maxtransize": 50},
            {"ntrans": 50},
            {"placement": "worst", "ltot": 100},
            {"placement": "random", "ltot": 100},
        ],
    )
    def test_throughput_never_exceeds_upper_bound(self, changes):
        params = SimulationParameters(tmax=300.0, seed=9, **changes)
        result = simulate(params)
        bound = throughput_upper_bound(params)
        # 10% slack for finite-horizon edge effects (transactions in
        # flight at tmax) and the stochastic size distribution.
        assert result.throughput <= bound * 1.10, (changes, bound)

    @pytest.mark.parametrize(
        "changes",
        [{}, {"ltot": 1}, {"npros": 30}, {"maxtransize": 50}],
    )
    def test_response_time_never_beats_lower_bound(self, changes):
        params = SimulationParameters(tmax=300.0, seed=9, **changes)
        result = simulate(params)
        # The per-transaction service floor uses the smallest possible
        # transaction (nu = 1) to stay a true lower bound.
        floor = response_time_lower_bound(params, nu=1)
        assert result.response_time >= floor * 0.99, changes

    def test_bound_is_reasonably_tight_at_saturation(self):
        # In the I/O-saturated regime the simulator should achieve a
        # large fraction of the bottleneck bound.
        params = SimulationParameters(tmax=400.0, ltot=20, npros=10, seed=9)
        result = simulate(params)
        bound = throughput_upper_bound(params)
        assert result.throughput >= 0.5 * bound


class TestDegenerateCorners:
    """The laws stay finite and consistent at the parameter extremes."""

    def test_single_lock_database(self):
        # ltot=1: every transaction requires exactly one (whole-db)
        # lock, regardless of size or placement.
        params = SimulationParameters(ltot=1)
        demands = service_demands(params)
        base = service_demands(params, nu=1)
        nu = params.mean_transaction_size
        # Lock work is one granule's worth; exec work scales with nu.
        assert demands["disk"] == pytest.approx(
            (nu * params.iotime + params.liotime) / params.npros
        )
        assert base["disk"] < demands["disk"]
        assert 0 < throughput_upper_bound(params) < float("inf")

    def test_single_customer_population(self):
        # ntrans=1 (MPL 1): no queueing is possible, so the population
        # bound X = 1 / R_min is exact and binds.
        params = SimulationParameters(ntrans=1)
        bound = throughput_upper_bound(params)
        assert bound == pytest.approx(
            1.0 / response_time_lower_bound(params)
        )
        assert balanced_system_throughput(params) == pytest.approx(
            1.0 / total_demand(params)
        )

    def test_zero_lock_overhead(self):
        # lcputime = liotime = 0: demands reduce to pure transaction
        # work and granularity stops mattering to the bounds.
        coarse = SimulationParameters(lcputime=0.0, liotime=0.0, ltot=10)
        fine = coarse.replace(ltot=5000)
        assert service_demands(coarse) == service_demands(fine)
        assert throughput_upper_bound(coarse) == pytest.approx(
            throughput_upper_bound(fine)
        )
        nu = coarse.mean_transaction_size
        assert response_time_lower_bound(coarse) == pytest.approx(
            nu * (coarse.iotime + coarse.cputime) / coarse.npros
        )

    def test_single_processor_degenerate(self):
        # npros=1: no fork-join parallelism; per-station and total
        # demands coincide up to the two station types.
        params = SimulationParameters(npros=1)
        demands = service_demands(params)
        assert total_demand(params) == pytest.approx(
            demands["disk"] + demands["cpu"]
        )
        assert response_time_lower_bound(params) == pytest.approx(
            total_demand(params)
        )
        # And the simulator still respects the bound there.
        result = simulate(params.replace(tmax=300.0, seed=9))
        assert result.throughput <= throughput_upper_bound(params) * 1.10
