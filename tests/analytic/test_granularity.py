"""Unit tests for the closed-form granularity approximations."""

import pytest

from repro.analytic.granularity import (
    conflict_probability,
    expected_lock_overhead,
    locks_required,
    optimal_ltot_estimate,
    serial_throughput_bound,
)
from repro.core import SimulationParameters, simulate


class TestLocksRequired:
    def test_best(self):
        assert locks_required("best", 5000, 100, 500) == 10

    def test_worst(self):
        assert locks_required("worst", 5000, 100, 500) == 100

    def test_random_between(self):
        value = locks_required("random", 5000, 100, 50)
        assert locks_required("best", 5000, 100, 50) <= value
        assert value <= locks_required("worst", 5000, 100, 50)

    def test_unknown_placement(self):
        with pytest.raises(ValueError):
            locks_required("magic", 5000, 100, 50)


class TestConflictProbability:
    def test_zero_actives(self):
        assert conflict_probability("best", 5000, 100, 250, active=0) == 0.0

    def test_capped_at_one(self):
        assert conflict_probability("worst", 5000, 10, 5000, active=50) == 1.0

    def test_best_placement_roughly_ltot_invariant(self):
        # With best placement, LU scales with ltot, so the conflict
        # probability barely moves across moderate-to-fine ltot.
        values = [
            conflict_probability("best", 5000, ltot, 250, active=9)
            for ltot in (100, 500, 1000, 5000)
        ]
        assert max(values) - min(values) < 0.15

    def test_matches_simulation_denial_rate_roughly(self):
        params = SimulationParameters(tmax=400.0, ltot=100, npros=10, seed=3)
        result = simulate(params)
        predicted = conflict_probability(
            "best",
            params.dbsize,
            params.ltot,
            params.mean_transaction_size,
            active=result.mean_active,
        )
        assert result.denial_rate == pytest.approx(predicted, abs=0.15)


class TestOverheadAndBounds:
    def test_expected_lock_overhead_scales_with_ltot(self):
        params = SimulationParameters()
        coarse = expected_lock_overhead("best", params.replace(ltot=10))
        fine = expected_lock_overhead("best", params.replace(ltot=5000))
        assert fine > coarse

    def test_serial_bound_positive_and_finite(self):
        bound = serial_throughput_bound(SimulationParameters())
        assert 0 < bound < float("inf")

    def test_serial_bound_anchors_ltot1_simulation(self):
        # The ltot=1 simulated throughput cannot exceed the serial
        # bound by more than synchronisation noise.
        params = SimulationParameters(tmax=400.0, ltot=1, npros=10, seed=3)
        result = simulate(params)
        bound = serial_throughput_bound(params)
        assert result.throughput <= bound * 1.2


class TestOptimalEstimate:
    def test_best_placement_optimum_below_200(self):
        # The paper's headline conclusion for Table 1 settings.
        params = SimulationParameters(npros=30)
        assert optimal_ltot_estimate(params) <= 200

    def test_estimate_in_candidate_set(self):
        params = SimulationParameters()
        candidates = [1, 10, 100]
        assert optimal_ltot_estimate(params, candidates) in candidates

    def test_estimate_matches_simulated_optimum_region(self):
        params = SimulationParameters(tmax=400.0, npros=10, seed=3)
        estimate = optimal_ltot_estimate(params)
        sims = {
            ltot: simulate(params.replace(ltot=ltot)).throughput
            for ltot in (1, 10, 100, 1000, 5000)
        }
        best_sim = max(sims, key=sims.get)
        # Same order of magnitude (both well under 200 locks).
        assert estimate <= 200 and best_sim <= 200
