"""Unit tests for Yao's block-access formula."""

import math
from itertools import combinations

import pytest

from repro.analytic.yao import expected_granules_touched, yao_locks


def brute_force_expectation(dbsize, ltot, nu):
    """Exact expectation by enumerating all entity subsets (tiny cases)."""
    small = dbsize // ltot
    n_large = dbsize - small * ltot
    boundary = n_large * (small + 1)

    def granule_of(entity):
        if entity < boundary:
            return entity // (small + 1)
        return n_large + (entity - boundary) // small

    total = 0
    count = 0
    for subset in combinations(range(dbsize), nu):
        total += len({granule_of(e) for e in subset})
        count += 1
    return total / count


class TestFormula:
    def test_single_entity(self):
        assert expected_granules_touched(100, 10, 1) == pytest.approx(1.0)

    def test_zero_entities(self):
        assert expected_granules_touched(100, 10, 0) == 0.0

    def test_full_scan_touches_everything(self):
        assert expected_granules_touched(100, 10, 100) == pytest.approx(10.0)

    def test_one_granule_database(self):
        assert expected_granules_touched(100, 1, 37) == pytest.approx(1.0)

    def test_entity_granules_equal_nu(self):
        assert expected_granules_touched(100, 100, 37) == pytest.approx(37.0)

    @pytest.mark.parametrize(
        "dbsize,ltot,nu",
        [(6, 3, 2), (6, 2, 3), (8, 4, 3), (9, 3, 4), (10, 5, 2)],
    )
    def test_matches_brute_force_divisible(self, dbsize, ltot, nu):
        exact = brute_force_expectation(dbsize, ltot, nu)
        assert expected_granules_touched(dbsize, ltot, nu) == pytest.approx(exact)

    @pytest.mark.parametrize(
        "dbsize,ltot,nu",
        [(7, 3, 2), (7, 2, 3), (9, 4, 3), (11, 3, 5)],
    )
    def test_matches_brute_force_non_divisible(self, dbsize, ltot, nu):
        exact = brute_force_expectation(dbsize, ltot, nu)
        assert expected_granules_touched(dbsize, ltot, nu) == pytest.approx(exact)

    def test_monotone_in_nu(self):
        values = [expected_granules_touched(5000, 100, nu) for nu in
                  (1, 10, 50, 100, 500, 2500, 5000)]
        assert values == sorted(values)

    def test_bounds(self):
        for nu in (1, 10, 100, 1000):
            value = expected_granules_touched(5000, 50, nu)
            assert math.ceil(nu * 50 / 5000) <= value <= min(nu, 50)

    def test_large_arguments_stable(self):
        # No overflow or NaN on big inputs (lgamma path).
        value = expected_granules_touched(10**7, 10**4, 10**5)
        assert 0 < value <= 10**4
        assert not math.isnan(value)

    def test_paper_regime_nearly_whole_database(self):
        # 250 random entities with 50-entity granules leave almost no
        # granule untouched — the reason random placement throughput
        # collapses at mid ltot in Figs 9-10.
        value = expected_granules_touched(5000, 100, 250)
        assert value > 90

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_granules_touched(100, 0, 5)
        with pytest.raises(ValueError):
            expected_granules_touched(100, 101, 5)
        with pytest.raises(ValueError):
            expected_granules_touched(100, 10, 101)
        with pytest.raises(ValueError):
            expected_granules_touched(100, 10, -1)

    def test_alias(self):
        assert yao_locks(100, 10, 5) == expected_granules_touched(100, 10, 5)


class TestDegenerateCorners:
    def test_single_granule_for_every_size(self):
        # ltot=1 collapses the formula to the constant 1 for any
        # non-empty selection — the whole-database-lock regime.
        for nu in (1, 2, 50, 99, 100):
            assert expected_granules_touched(100, 1, nu) == pytest.approx(1.0)

    def test_granule_per_entity_is_identity(self):
        # ltot=dbsize: touching nu entities touches exactly nu granules.
        for nu in (1, 7, 500):
            assert expected_granules_touched(500, 500, nu) == pytest.approx(
                float(nu)
            )

    def test_pair_in_two_granules_exact(self):
        # dbsize=2, ltot=2, nu=2: both granules always touched.
        assert expected_granules_touched(2, 2, 2) == pytest.approx(2.0)

    def test_tiny_database_single_entity_selection(self):
        # nu=1 must touch exactly one granule no matter how uneven the
        # granule sizes are (dbsize not divisible by ltot).
        assert expected_granules_touched(7, 3, 1) == pytest.approx(1.0)
