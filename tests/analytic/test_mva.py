"""Tests for the analytic mean-value model (the sweep fast path)."""

import json
import math
import pathlib

import pytest

from repro.analytic.mva import (
    AnalyticPrediction,
    cc_semantics,
    predict,
    predict_grid,
    schweitzer_response_times,
    size_biased_transaction_size,
    uncertainty_score,
)
from repro.core.parameters import SimulationParameters

RESULTS = pathlib.Path(__file__).resolve().parents[2] / "results"

#: Cells whose simulated run completed fewer transactions are
#: transient-dominated at the committed tmax=600 horizon; comparing
#: against them tests the simulator's noise, not the model (the same
#: rule crossval applies).
MIN_COMPLETIONS = 25


def _params_from_row(row):
    names = SimulationParameters().as_dict()
    return SimulationParameters(
        **{name: row[name] for name in names if name in row}
    )


class TestPredictionSurface:
    """AnalyticPrediction mimics ReplicatedResult's read surface."""

    @pytest.fixture(scope="class")
    def prediction(self):
        return predict(SimulationParameters())

    def test_mean_matches_fields(self, prediction):
        assert prediction.mean("throughput") == prediction.throughput
        assert prediction.mean("response_time") == prediction.response_time
        assert prediction.mean("denial_rate") == prediction.blocking_prob
        assert prediction.mean("lock_overhead") == (
            prediction.lock_overhead_frac
        )

    def test_unmodelled_fields_are_nan(self, prediction):
        assert math.isnan(prediction.mean("deadlock_aborts"))
        assert math.isnan(prediction.mean("cpu_utilization"))

    def test_samples_single_element(self, prediction):
        assert prediction.samples("throughput") == [prediction.throughput]
        assert len(prediction) == 1

    def test_as_dict_carries_provenance_and_params(self, prediction):
        row = prediction.as_dict()
        assert row["provenance"] == "analytic"
        assert row["ltot"] == prediction.params.ltot
        assert row["throughput"] == prediction.throughput

    def test_provenance_is_fixed(self, prediction):
        assert prediction.provenance == "analytic"


class TestModelSanity:
    def test_converges_on_defaults(self):
        prediction = predict(SimulationParameters())
        assert prediction.converged
        assert prediction.throughput > 0
        assert 0 <= prediction.blocking_prob < 1
        assert prediction.attempts >= 1.0

    def test_deterministic(self):
        params = SimulationParameters(ltot=100, npros=10)
        assert predict(params) == predict(params)

    def test_granularity_tradeoff_has_interior_optimum(self):
        # The paper's central claim: too-coarse locking serializes,
        # too-fine locking drowns in lock overhead.
        grid = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)
        base = SimulationParameters(npros=10, tmax=600.0)
        values = [predict(base.replace(ltot=l)).throughput for l in grid]
        best = values.index(max(values))
        assert 0 < best < len(grid) - 1
        assert values[best] > values[0]
        assert values[best] > values[-1]

    def test_coarse_locking_blocks_more(self):
        base = SimulationParameters(npros=10)
        coarse = predict(base.replace(ltot=2))
        fine = predict(base.replace(ltot=2000))
        assert coarse.blocking_prob > fine.blocking_prob

    def test_fine_locking_costs_more_overhead(self):
        base = SimulationParameters(npros=10)
        coarse = predict(base.replace(ltot=10))
        fine = predict(base.replace(ltot=5000))
        assert fine.lock_overhead_frac > coarse.lock_overhead_frac

    def test_more_processors_more_throughput_at_moderate_ltot(self):
        base = SimulationParameters(ltot=100)
        assert (
            predict(base.replace(npros=30)).throughput
            > predict(base.replace(npros=10)).throughput
        )

    def test_single_lock_hits_serialization_ceiling(self):
        params = SimulationParameters(ltot=1, ntrans=10)
        prediction = predict(params)
        assert prediction.blocking_prob == pytest.approx(0.9)
        assert prediction.uncertainty >= 0.5

    def test_predict_grid_order(self):
        base = SimulationParameters()
        configs = [base.replace(ltot=l) for l in (10, 100, 1000)]
        grid = predict_grid(configs)
        assert [p.params.ltot for p in grid] == [10, 100, 1000]


class TestSemantics:
    def test_preclaim_is_blocking(self):
        assert cc_semantics(SimulationParameters()) == "blocking"

    def test_no_waiting_is_restart(self):
        params = SimulationParameters(protocol="no-waiting")
        assert cc_semantics(params) == "restart"

    def test_incremental_protocols(self):
        for name in ("incremental", "wound-wait"):
            params = SimulationParameters(
                protocol=name, conflict_engine="explicit"
            )
            assert cc_semantics(params) == "incremental"

    def test_semantics_change_the_prediction(self):
        base = SimulationParameters(ltot=100, npros=10)
        blocking = predict(base)
        restart = predict(base.replace(protocol="no-waiting"))
        incremental = predict(
            base.replace(protocol="incremental", conflict_engine="explicit")
        )
        assert blocking.semantics == "blocking"
        assert restart.semantics == "restart"
        assert incremental.semantics == "incremental"
        assert len({blocking.throughput, restart.throughput,
                    incremental.throughput}) == 3


class TestSizeBias:
    def test_uniform_workload(self):
        params = SimulationParameters(maxtransize=25)
        assert size_biased_transaction_size(params) == pytest.approx(17.0)

    def test_fixed_workload_is_unbiased(self):
        params = SimulationParameters(workload="fixed", maxtransize=25)
        assert size_biased_transaction_size(params) == 25.0

    def test_bias_never_below_mean(self):
        for workload in ("uniform", "fixed", "mixed"):
            params = SimulationParameters(workload=workload)
            assert (
                size_biased_transaction_size(params)
                >= params.mean_transaction_size * 0.999
            )


class TestSchweitzer:
    def test_single_customer_no_queueing(self):
        demands = [2.0, 1.0]
        assert schweitzer_response_times(demands, 1.0) == pytest.approx(
            demands
        )

    def test_zero_population(self):
        assert schweitzer_response_times([2.0, 1.0], 0.0) == [2.0, 1.0]

    def test_responses_grow_with_population(self):
        demands = [2.0, 1.0]
        small = schweitzer_response_times(demands, 2.0)
        large = schweitzer_response_times(demands, 10.0)
        assert all(b > a for a, b in zip(small, large))

    def test_throughput_approaches_bottleneck_bound(self):
        demands = [2.0, 1.0]
        responses = schweitzer_response_times(demands, 50.0)
        throughput = 50.0 / sum(responses)
        assert throughput == pytest.approx(1.0 / 2.0, rel=0.05)


class TestUncertainty:
    def test_defaults_are_trusted(self):
        prediction = predict(SimulationParameters(ltot=100, npros=10))
        assert prediction.uncertainty < 0.5

    def test_unconverged_is_max_uncertainty(self):
        prediction = predict(SimulationParameters())
        doubted = AnalyticPrediction(
            params=prediction.params,
            throughput=prediction.throughput,
            blocking_prob=prediction.blocking_prob,
            lock_overhead_frac=prediction.lock_overhead_frac,
            effective_mpl=prediction.effective_mpl,
            response_time=prediction.response_time,
            attempts=prediction.attempts,
            semantics=prediction.semantics,
            converged=False,
        )
        assert uncertainty_score(doubted) == 1.0

    def test_near_serial_mpl_is_flagged(self):
        prediction = predict(SimulationParameters(ntrans=1, ltot=100))
        assert prediction.effective_mpl <= 1.0
        assert prediction.uncertainty >= 0.5


class TestCalibrationInvariant:
    """The frozen model still fits the committed simulation curves.

    This is the drift detector behind the CI crossval gate: if a model
    or simulator change moves either side, the committed results pin
    the truth.
    """

    @pytest.fixture(scope="class")
    def fig2_rows(self):
        path = RESULTS / "fig2.json"
        if not path.exists():
            pytest.skip("committed results/fig2.json not present")
        return json.loads(path.read_text())["rows"]

    def test_mean_error_within_bound_on_valid_cells(self, fig2_rows):
        errors = []
        for row in fig2_rows:
            if row["totcom"] < MIN_COMPLETIONS or row["throughput"] == 0:
                continue
            prediction = predict(_params_from_row(row))
            errors.append(
                abs(prediction.throughput - row["throughput"])
                / row["throughput"]
            )
        assert len(errors) >= 20
        assert sum(errors) / len(errors) <= 0.15

    def test_optimum_location_agrees_per_series(self, fig2_rows):
        # The model must point at (or next to) the simulated optimum —
        # that is what the accelerator's pruning rule relies on.
        series = {}
        for row in fig2_rows:
            if row["npros"] < 5:
                continue  # near-serial curves are excluded by design
            series.setdefault(row["npros"], []).append(row)
        assert series
        for rows in series.values():
            rows.sort(key=lambda r: r["ltot"])
            simulated = [r["throughput"] for r in rows]
            predicted = [
                predict(_params_from_row(r)).throughput for r in rows
            ]
            sim_best = simulated.index(max(simulated))
            model_best = predicted.index(max(predicted))
            assert abs(sim_best - model_best) <= 1


class TestMultiClassPrediction:
    MULTI = SimulationParameters(
        dbsize=2000, ltot=50, ntrans=10, maxtransize=60, npros=4,
        tmax=400.0, seed=3,
        workload="classes", txn_classes="oltp:0.8:20,batch:0.2:200",
    )

    def test_single_class_predictions_have_no_breakdown(self):
        prediction = predict(
            SimulationParameters(dbsize=2000, ltot=50, ntrans=10,
                                 maxtransize=60, npros=4, tmax=400.0)
        )
        assert prediction.per_class == ()

    def test_breakdown_covers_every_class(self):
        prediction = predict(self.MULTI)
        assert [e["txn_class"] for e in prediction.per_class] == [
            "oltp", "batch"
        ]

    def test_class_throughputs_sum_to_aggregate(self):
        prediction = predict(self.MULTI)
        assert sum(
            e["throughput"] for e in prediction.per_class
        ) == pytest.approx(prediction.throughput)

    def test_heavier_class_is_slower(self):
        prediction = predict(self.MULTI)
        oltp, batch = prediction.per_class
        assert batch["response_time"] > oltp["response_time"]
        assert batch["throughput"] < oltp["throughput"]

    def test_mean_supports_suffixed_fields(self):
        prediction = predict(self.MULTI)
        assert prediction.mean("throughput__oltp") == (
            prediction.per_class[0]["throughput"]
        )
        absent = prediction.mean("throughput__absent")
        assert absent != absent  # nan

    def test_as_dict_carries_class_columns(self):
        row = predict(self.MULTI).as_dict()
        assert "throughput__batch" in row
        assert row["provenance"] == "analytic"

    def test_size_biased_size_uses_mixture_moments(self):
        from repro.analytic.mva import size_biased_transaction_size

        mix = self.MULTI.workload_mix
        assert size_biased_transaction_size(self.MULTI) == pytest.approx(
            mix.second_moment_size / mix.mean_size
        )

    def test_per_class_throughput_error_within_gate(self):
        # The multi-class split must stay inside the same 15% band the
        # aggregate crossval gate enforces, on a small ltot grid.
        from repro.core.model import simulate

        errors = []
        for ltot in (10, 50, 100):
            params = self.MULTI.replace(ltot=ltot)
            result = simulate(params)
            prediction = predict(params)
            for entry in prediction.per_class:
                sim = next(
                    e for e in result.per_class
                    if e["txn_class"] == entry["txn_class"]
                )
                errors.append(
                    abs(entry["throughput"] - sim["throughput"])
                    / sim["throughput"]
                )
        assert sum(errors) / len(errors) <= 0.15
