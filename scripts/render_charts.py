"""Render SVG charts from previously saved exhibit rows.

Reads ``results/<exhibit>.json`` files written by
``run_all_exhibits.py`` and emits ``results/<exhibit>_<field>.svg``
without re-running any simulation.

Usage::

    python scripts/render_charts.py [--dir results] [exhibit ...]
"""

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.figures import EXHIBITS
from repro.experiments.svg import SvgChart


def render(key, directory):
    path = directory / "{}.json".format(key)
    if not path.exists():
        print("{}: no data file, skipped".format(key))
        return []
    with open(path) as handle:
        rows = json.load(handle)["rows"]
    spec = EXHIBITS[key]()
    written = []
    for y_field in spec.y_fields:
        chart = SvgChart(
            "{}: {}".format(key, spec.title),
            x_label=spec.x_field,
            y_label=y_field,
            log_x=spec.x_field == "ltot",
        )
        curves = {}
        for row in rows:
            label = ", ".join(
                "{}={}".format(name, row[name]) for name in spec.series_fields
            ) or "all"
            value = row.get(y_field)
            if value is None:
                continue
            curves.setdefault(label, []).append((row[spec.x_field], value))
        for label, points in sorted(curves.items()):
            chart.add_series(label, points)
        out = directory / "{}_{}.svg".format(key, y_field)
        chart.save(out)
        written.append(out)
    return written


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default="results")
    parser.add_argument("exhibits", nargs="*", default=[])
    args = parser.parse_args(argv)
    directory = Path(args.dir)
    keys = args.exhibits or list(EXHIBITS)
    total = 0
    for key in keys:
        written = render(key, directory)
        total += len(written)
    print("wrote {} charts into {}".format(total, directory))
    return 0


if __name__ == "__main__":
    sys.exit(main())
