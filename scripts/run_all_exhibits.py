"""Regenerate every exhibit's data (the EXPERIMENTS.md source).

Runs all exhibits at a configurable horizon and writes one CSV and one
JSON per exhibit under ``results/``, plus a combined summary JSON.
Figures 2–4 share one configuration grid, so their sweep is executed
once and reused.

With ``--jobs N`` (N > 1) every selected exhibit is batched into ONE
global work queue (:func:`repro.experiments.runner.run_experiments`):
all (cell, replication) jobs across all exhibits are deduplicated by
content address, ordered longest-first and packed onto one worker
pool, so cores never idle at exhibit boundaries.

Usage::

    python scripts/run_all_exhibits.py [--tmax 600] [--out results]
        [--npros-grid 1,10,30] [--only fig7,fig9] [--jobs 8]
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments.figures import EXHIBITS
from repro.experiments.runner import run_experiment, run_experiments
from repro.experiments.storage import save_rows_csv, save_rows_json

#: Exhibits whose sweep equals fig2's (same base, same grid): their
#: data comes from the same runs, just different reported columns.
SHARES_FIG2_GRID = ("fig3", "fig4")


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tmax", type=float, default=600.0)
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--npros-grid", default="1,10,30",
        help="comma list replacing the npros sweep of figs 2-5 and 8",
    )
    parser.add_argument(
        "--only", default="",
        help="comma list of exhibit keys to run (default: all)",
    )
    parser.add_argument(
        "--svg", action="store_true",
        help="also write one SVG chart per exhibit y-field",
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes per sweep (0 = inline)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache entirely",
    )
    parser.add_argument(
        "--refresh", action="store_true",
        help="ignore cached results, re-simulate and overwrite them",
    )
    parser.add_argument(
        "--watchdog", type=float, default=None, metavar="SECONDS",
        help="per-replication wall-clock watchdog (stalled cells are "
        "killed and retried)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume interrupted sweeps from their journals",
    )
    return parser.parse_args(argv)


def _write_exhibit(key, spec, result, elapsed, out_dir, summary, svg):
    """Persist one exhibit's rows, series and summary entry."""
    rows = result.rows()
    save_rows_csv(rows, out_dir / "{}.csv".format(key))
    save_rows_json(
        rows,
        out_dir / "{}.json".format(key),
        metadata={
            "exhibit": key,
            "title": spec.title,
            "tmax": spec.base.tmax,
            "elapsed_seconds": round(elapsed, 1),
            "cache_hits": result.stats.cache_hits if result.stats else None,
            "simulated_runs": result.stats.runs if result.stats else None,
        },
    )
    series = {
        y: {
            label: points
            for label, points in result.series(y).items()
        }
        for y in spec.y_fields
    }
    summary[key] = {
        "title": spec.title,
        "series": series,
        "elapsed_seconds": round(elapsed, 1),
    }
    if svg:
        from repro.experiments.svg import save_result_charts

        save_result_charts(result, str(out_dir), prefix=key)


def _run_batched(selected, args, out_dir, summary):
    """Run every selected exhibit through one global work queue."""
    started = time.time()
    try:
        results = run_experiments(
            [spec for _, spec in selected],
            jobs=args.jobs,
            cache=False if args.no_cache else None,
            refresh=args.refresh,
            journals=[
                str(out_dir / ".journals" / (key + ".journal"))
                for key, _ in selected
            ],
            resume=args.resume,
            watchdog=args.watchdog,
            drain_signals=True,
            cell_progress=lambda done, total, info: print(
                "\r  {} {}/{} cells [{}: {}]   ".format(
                    info["spec"], done, total, info["source"], info["label"]
                ),
                end="", file=sys.stderr, flush=True,
            ),
        )
    except KeyboardInterrupt:
        print(file=sys.stderr)
        print(
            "interrupted; progress journalled per exhibit — rerun "
            "with --resume to continue"
        )
        return 130
    print(file=sys.stderr)
    elapsed = time.time() - started
    for (key, spec), result in zip(selected, results):
        _write_exhibit(key, spec, result, elapsed, out_dir, summary, args.svg)
        print(
            "done {} ({})".format(key, result.stats.summary())
        )
    stats = results[0].stats
    print(
        "global queue: {} workers, occupancy {:.0%}, {:.0f}s wall".format(
            stats.workers, stats.occupancy, elapsed
        )
    )
    return 0


def main(argv=None):
    args = parse_args(argv)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    npros_grid = tuple(int(x) for x in args.npros_grid.split(","))
    only = {key.strip() for key in args.only.split(",") if key.strip()}

    summary_path = out_dir / "summary.json"
    if summary_path.exists():
        with open(summary_path) as handle:
            summary = json.load(handle)
    else:
        summary = {}

    selected = []
    for key, builder in EXHIBITS.items():
        if only and key not in only:
            continue
        spec = builder().scaled(tmax=args.tmax)
        if "npros" in spec.sweeps and len(spec.sweeps["npros"]) > 3:
            spec = spec.scaled(replace_sweeps={"npros": npros_grid})
        selected.append((key, spec))

    if args.jobs > 1 and len(selected) > 1:
        # Batched path: one global queue over every exhibit's cells.
        # Exhibits sharing a grid (figs 2-4) dedupe at the cell level,
        # so the explicit fig2 reuse below is only needed inline.
        code = _run_batched(selected, args, out_dir, summary)
        if code:
            return code
        with open(summary_path, "w") as handle:
            json.dump(summary, handle, indent=1, sort_keys=True)
        print("wrote {}/summary.json".format(out_dir))
        return 0

    fig2_result = None
    for key, spec in selected:
        started = time.time()
        if key in SHARES_FIG2_GRID and fig2_result is not None and not only:
            result = fig2_result
            result = type(result)(spec, result.outcomes)
            note = "(reused fig2 runs)"
        else:
            try:
                result = run_experiment(
                    spec,
                    jobs=args.jobs,
                    cache=False if args.no_cache else None,
                    refresh=args.refresh,
                    # One crash-safe journal per exhibit: an
                    # interrupted regeneration resumes with --resume.
                    journal=str(out_dir / ".journals" / (key + ".journal")),
                    resume=args.resume,
                    watchdog=args.watchdog,
                    drain_signals=True,
                    # Live per-replication progress: every resolved cell
                    # (cache hit or finished run) updates the line, so
                    # parallel sweeps are never silent between configs.
                    cell_progress=lambda done, total, info, key=key: print(
                        "\r  {} {}/{} cells [{}: {}]   ".format(
                            key, done, total, info["source"], info["label"]
                        ),
                        end="", file=sys.stderr, flush=True,
                    ),
                )
            except KeyboardInterrupt:
                print(file=sys.stderr)
                print(
                    "interrupted during {}; progress journalled — rerun "
                    "with --resume to continue".format(key)
                )
                return 130
            print(file=sys.stderr)
            note = "({})".format(result.stats.summary())
        if key == "fig2":
            fig2_result = result
        elapsed = time.time() - started
        _write_exhibit(key, spec, result, elapsed, out_dir, summary, args.svg)
        print("done {} in {:.0f}s {}".format(key, elapsed, note))
    with open(summary_path, "w") as handle:
        json.dump(summary, handle, indent=1, sort_keys=True)
    print("wrote {}/summary.json".format(out_dir))
    return 0


if __name__ == "__main__":
    sys.exit(main())
