"""Print per-exhibit key numbers from results/*.json (EXPERIMENTS.md helper).

Usage::

    python scripts/summarize_results.py [--dir results] [exhibit ...]
"""

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.figures import EXHIBITS


def series_from_rows(rows, spec, y_field):
    """Rebuild label -> {x: y} curves from persisted rows."""
    curves = {}
    for row in rows:
        label = ", ".join(
            "{}={}".format(name, row[name]) for name in spec.series_fields
        ) or "all"
        curves.setdefault(label, {})[row[spec.x_field]] = row[y_field]
    return curves


def describe(key, directory):
    path = directory / "{}.json".format(key)
    if not path.exists():
        print("{}: no data file".format(key))
        return
    with open(path) as handle:
        rows = json.load(handle)["rows"]
    spec = EXHIBITS[key]()
    print("== {} ==".format(key))
    for y_field in spec.y_fields:
        curves = series_from_rows(rows, spec, y_field)
        for label, curve in sorted(curves.items()):
            values = {x: y for x, y in curve.items() if y is not None}
            if not values:
                continue
            best_x = max(values, key=values.get)
            worst_x = min(values, key=values.get)
            xs = sorted(values)
            print(
                "  {:12s} {:28s} first({}={:.4g}) best({}={:.4g}) "
                "worst({}={:.4g}) last({}={:.4g})".format(
                    y_field, label,
                    xs[0], values[xs[0]],
                    best_x, values[best_x],
                    worst_x, values[worst_x],
                    xs[-1], values[xs[-1]],
                )
            )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default="results")
    parser.add_argument("exhibits", nargs="*", default=[])
    args = parser.parse_args(argv)
    directory = Path(args.dir)
    keys = args.exhibits or list(EXHIBITS)
    for key in keys:
        describe(key, directory)
    return 0


if __name__ == "__main__":
    sys.exit(main())
