"""Command-line interface: reproduce any exhibit from a terminal.

Examples
--------
List everything reproducible::

    repro-locking list

Reproduce Figure 2 quickly, with an ASCII plot and a CSV dump::

    repro-locking run fig2 --quick --plot --save fig2.csv

Run a single configuration::

    repro-locking simulate --ltot 100 --npros 10 --tmax 2000
"""

import argparse
import sys
import time

from repro.core.model import simulate
from repro.core.parameters import SimulationParameters
from repro.core.results import RESULT_FIELDS
from repro.experiments.figures import EXHIBITS, get_exhibit
from repro.experiments.report import ascii_plot, format_series_table, summarize_optima
from repro.experiments.runner import run_experiment
from repro.experiments.storage import save_rows_csv, save_rows_json

#: Reduced grid used by ``--quick``.
QUICK_LTOT_GRID = (1, 10, 100, 1000, 5000)
QUICK_TMAX = 400.0

#: Short aliases for policy-selecting parameter flags: ``--cc`` is
#: ``--protocol``, ``--admission`` is ``--txn-policy``.
_FLAG_ALIASES = {"protocol": "--cc", "txn_policy": "--admission"}


def _parameter_names():
    """Every overridable parameter name, flag-order.

    ``as_dict`` omits ``txn_classes`` when empty (digest neutrality),
    so the default instance's dict misses it; append it explicitly so
    the flag and every override-collection site still see it.
    """
    names = list(SimulationParameters().as_dict())
    names.append("txn_classes")
    return names


def _add_parameter_flags(parser, skip=()):
    """Add one ``--<name>`` option per simulation parameter.

    Every subcommand that accepts a full configuration (simulate,
    trace, faults, tune, sensitivity) shares this generator, so new
    parameters and policy aliases appear everywhere at once.
    """
    defaults = SimulationParameters().as_dict()
    defaults.setdefault("txn_classes", "")
    for name in _parameter_names():
        if name in skip:
            continue
        value = defaults[name]
        kind = type(value)
        flags = ["--{}".format(name.replace("_", "-"))]
        if name in _FLAG_ALIASES:
            flags.append(_FLAG_ALIASES[name])
        help_text = "default: {!r}".format(value)
        if name == "txn_classes":
            help_text = (
                "comma-separated class specs name:fraction:maxtransize"
                "[:key=val]* (keys: dist, write, gran, prio, backoff, "
                "skew); requires --workload classes"
            )
        parser.add_argument(
            *flags,
            dest=name,
            type=kind if kind in (int, float) else str,
            default=None,
            help=help_text,
        )


def build_parser():
    """The argparse parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-locking",
        description="Reproduce 'Locking Granularity in Multiprocessor "
        "Database Systems' (Dandamudi & Au, ICDE 1991).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible exhibits")

    policies = sub.add_parser(
        "policies",
        help="list the pluggable policy layers and registered names",
    )
    policies.add_argument(
        "layer", nargs="?", default=None,
        help="only this layer (cc, admission, workload, arrival, "
        "placement, partitioning, conflict)",
    )

    run = sub.add_parser("run", help="run one exhibit's full sweep")
    run.add_argument("exhibit", help="table1, fig2..fig12, 2..12, or an ablation key")
    run.add_argument("--tmax", type=float, default=None, help="override horizon")
    run.add_argument(
        "--replications", type=int, default=1, help="replications per point"
    )
    run.add_argument("--jobs", type=int, default=0, help="worker processes")
    run.add_argument(
        "--quick", action="store_true", help="small grid and short horizon"
    )
    run.add_argument("--plot", action="store_true", help="ASCII plot per y field")
    run.add_argument("--save", default=None, help="write rows to CSV path")
    run.add_argument("--json", default=None, help="write rows to JSON path")
    run.add_argument(
        "--svg", default=None, metavar="DIR",
        help="write one SVG chart per y field into DIR",
    )
    run.add_argument("--seed", type=int, default=None, help="override master seed")
    run.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache entirely (no reads, no writes)",
    )
    run.add_argument(
        "--refresh", action="store_true",
        help="ignore cached results, re-simulate and overwrite them",
    )
    run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache location (default results/.cache, or "
        "$REPRO_CACHE_DIR)",
    )
    run.add_argument(
        "--journal", default=None, metavar="PATH",
        help="record completed cells to this crash-safe journal "
        "(default with --resume: <cache>/journals/<exhibit>.journal)",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep from its journal + cache",
    )
    run.add_argument(
        "--watchdog", type=float, default=None, metavar="SECONDS",
        help="per-replication wall-clock watchdog; stalled cells are "
        "killed and retried",
    )
    run.add_argument(
        "--watchdog-retries", type=int, default=2, metavar="N",
        help="retries per stalled cell before the sweep fails (default 2)",
    )
    run.add_argument(
        "--accelerator", default=None, choices=("analytic",),
        help="prune the sweep with the analytic mean-value model: "
        "simulate only curve endpoints, the predicted optimum and "
        "flagged cells; fill the rest from predictions (journalled "
        "with provenance 'analytic', never cached)",
    )
    run.add_argument(
        "--metrics", action="store_true",
        help="collect live metrics (lock-wait histograms, abort "
        "causes, sweep progress); results stay bit-identical",
    )
    run.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also serve /metrics (Prometheus text) and /metrics.json "
        "on this port while the sweep runs (implies --metrics; 0 "
        "picks a free port)",
    )
    run.add_argument(
        "--metrics-snapshot", default=None, metavar="PATH",
        help="periodic JSON metrics snapshot file (default with "
        "--journal: <journal>.metrics.json — where 'top' looks)",
    )

    top = sub.add_parser(
        "top",
        help="live dashboard for a running journalled sweep "
        "(progress, ev/s, hot granules, ETA)",
    )
    top.add_argument("journal", help="the sweep's --journal path to tail")
    top.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="metrics snapshot file (default: <journal>.metrics.json)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh period (default 1s)",
    )
    top.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="stop after N refreshes (default: until the sweep finishes)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (scriptable; no ANSI)",
    )
    top.add_argument(
        "--follow", action="store_true",
        help="keep refreshing after the journal records a clean finish",
    )

    predict = sub.add_parser(
        "predict",
        help="analytic prediction of one configuration (no simulation)",
    )
    predict.add_argument(
        "--ltot-grid", default=None, metavar="L1,L2,...",
        help="predict a whole granularity curve instead of one cell",
    )
    predict.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the prediction rows to a JSON file",
    )
    _add_parameter_flags(predict)

    crossval = sub.add_parser(
        "crossval",
        help="validate the analytic model against the simulator",
    )
    crossval.add_argument(
        "exhibit", nargs="?", default="ablation_analytic",
        help="exhibit grid to validate on (default ablation_analytic; "
        "use fig2 for the thorough run)",
    )
    crossval.add_argument("--tmax", type=float, default=None)
    crossval.add_argument(
        "--replications", type=int, default=1,
        help="simulation replications per configuration",
    )
    crossval.add_argument("--jobs", type=int, default=0)
    crossval.add_argument(
        "--field", default="throughput", help="output field compared"
    )
    crossval.add_argument(
        "--cc", dest="protocol", default=None,
        help="override the cc protocol (granule-level protocols "
        "switch the conflict engine to 'explicit' automatically)",
    )
    crossval.add_argument(
        "--npros-grid", default=None, metavar="N1,N2,...",
        help="override the spec's npros sweep",
    )
    crossval.add_argument(
        "--ltot-grid", default=None, metavar="L1,L2,...",
        help="override the spec's ltot sweep",
    )
    crossval.add_argument(
        "--max-mean-error", type=float, default=None, metavar="FRAC",
        help="exit with status 1 if the mean relative error exceeds "
        "this fraction (the CI gate)",
    )
    crossval.add_argument(
        "--min-completions", type=float, default=None, metavar="N",
        help="flag cells with fewer completed transactions as "
        "low-sample and exclude them from the mean (default 25)",
    )
    crossval.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the per-cell comparison to a JSON file",
    )
    crossval.add_argument(
        "--svg", default=None, metavar="PATH",
        help="write the sim-vs-analytic overlay chart",
    )
    crossval.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache entirely",
    )
    crossval.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache location",
    )

    faults = sub.add_parser(
        "faults",
        help="availability-vs-granularity sweep under injected faults",
    )
    faults.add_argument(
        "--ltot-grid", default="10,100,1000", metavar="L1,L2,...",
        help="lock-count grid to sweep (default 10,100,1000)",
    )
    faults.add_argument(
        "--mttf", type=float, default=None, metavar="T",
        help="mean time to processor failure (enables crash injection)",
    )
    faults.add_argument(
        "--mttr", type=float, default=10.0, metavar="T",
        help="mean time to processor repair (default 10)",
    )
    faults.add_argument(
        "--first-failure-after", type=float, default=0.0, metavar="T",
        help="no crash before this simulation time (default 0)",
    )
    faults.add_argument(
        "--disk-mtbf", type=float, default=None, metavar="T",
        help="mean time between disk-slowdown windows (enables them)",
    )
    faults.add_argument(
        "--disk-duration", type=float, default=10.0, metavar="T",
        help="mean disk-slowdown window length (default 10)",
    )
    faults.add_argument(
        "--disk-factor", type=float, default=2.0, metavar="F",
        help="disk service-time inflation inside a window (default 2)",
    )
    faults.add_argument(
        "--stall-mtbf", type=float, default=None, metavar="T",
        help="mean time between lock-manager stalls (enables them)",
    )
    faults.add_argument(
        "--stall-duration", type=float, default=5.0, metavar="T",
        help="mean lock-manager stall length (default 5)",
    )
    faults.add_argument(
        "--stall-factor", type=float, default=4.0, metavar="F",
        help="lock-overhead inflation during a stall (default 4)",
    )
    faults.add_argument(
        "--partition-mtbf", type=float, default=None, metavar="T",
        help="mean time between network partitions (enables them; "
        "needs --nnodes >= 2)",
    )
    faults.add_argument(
        "--partition-duration", type=float, default=10.0, metavar="T",
        help="mean partition length (default 10)",
    )
    faults.add_argument(
        "--partition-first-after", type=float, default=0.0, metavar="T",
        help="no partition before this simulation time (default 0)",
    )
    faults.add_argument(
        "--link-delay-mtbf", type=float, default=None, metavar="T",
        help="mean time between link-delay windows (enables them)",
    )
    faults.add_argument(
        "--link-delay-duration", type=float, default=10.0, metavar="T",
        help="mean link-delay window length (default 10)",
    )
    faults.add_argument(
        "--link-delay-extra", type=float, default=0.5, metavar="T",
        help="extra per-message latency inside a window (default 0.5)",
    )
    from repro.faults.backoff import POLICIES as _BACKOFF

    faults.add_argument(
        "--backoff", default="uniform", choices=_BACKOFF,
        help="retry backoff policy (default uniform)",
    )
    faults.add_argument(
        "--fault-seed", type=int, default=None, metavar="S",
        help="dedicated fault-schedule seed (default: the run seed)",
    )
    faults.add_argument(
        "--commit-grid", default=None, metavar="P1,P2,...",
        help="also sweep commit protocols (e.g. 2pc,primary-copy; "
        "needs --nnodes >= 2) — the availability-under-partition table",
    )
    faults.add_argument(
        "--replications", type=int, default=3,
        help="replications per grid point (default 3)",
    )
    faults.add_argument("--jobs", type=int, default=0, help="worker processes")
    faults.add_argument(
        "--journal", default=None, metavar="PATH",
        help="record completed cells (with their inline results) to "
        "this crash-safe journal",
    )
    faults.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted faulted sweep from its journal "
        "(results are read back inline; bit-identical)",
    )
    faults.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve /metrics (Prometheus text) and /metrics.json on "
        "this port while the sweep runs (0 picks a free port)",
    )
    faults.add_argument("--save", default=None, help="write rows to CSV path")
    faults.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the table as JSON (to PATH, or stdout when the "
        "flag is given bare) — same shape as 'report --json': a "
        "document with the plan, its digest and the rows",
    )
    _add_parameter_flags(faults, skip=("ltot",))

    one = sub.add_parser("simulate", help="run a single configuration")
    _add_parameter_flags(one)
    one.add_argument(
        "--trace", type=int, default=0, metavar="N",
        help="print the first N transaction lifecycle events",
    )

    tune = sub.add_parser(
        "tune", help="adaptively search for the optimal lock granularity"
    )
    tune.add_argument("--objective", default="throughput")
    tune.add_argument("--minimize", action="store_true")
    tune.add_argument("--replications", type=int, default=2)
    tune.add_argument("--tmax", type=float, default=400.0)
    _add_parameter_flags(tune, skip=("ltot", "tmax"))

    sensitivity = sub.add_parser(
        "sensitivity",
        help="elasticity of an output w.r.t. each numeric parameter",
    )
    sensitivity.add_argument("--output", default="throughput")
    sensitivity.add_argument("--delta", type=float, default=0.25)
    sensitivity.add_argument("--replications", type=int, default=2)
    sensitivity.add_argument("--tmax", type=float, default=300.0)
    _add_parameter_flags(sensitivity, skip=("tmax",))

    trace = sub.add_parser(
        "trace",
        help="run one configuration with full telemetry exported to JSONL",
    )
    trace.add_argument(
        "--out", default="telemetry.jsonl", metavar="PATH",
        help="telemetry JSONL output path (default: telemetry.jsonl)",
    )
    trace.add_argument(
        "--sample-interval", type=float, default=5.0, metavar="DT",
        help="simulated time between time-series samples (0 disables)",
    )
    trace.add_argument(
        "--print", type=int, default=0, metavar="N", dest="print_events",
        help="also print the first N lifecycle events",
    )
    _add_parameter_flags(trace)

    report = sub.add_parser(
        "report", help="summarise a telemetry JSONL file"
    )
    report.add_argument("telemetry", help="telemetry JSONL path (from 'trace')")
    report.add_argument(
        "--top", type=int, default=10,
        help="rows in the top-blockers / hot-granules tables",
    )
    report.add_argument(
        "--svg", default=None, metavar="PATH",
        help="also write the utilisation timeline as an SVG chart",
    )
    report.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the report as JSON instead of text (to PATH, or "
        "stdout when the flag is given bare)",
    )

    compare = sub.add_parser(
        "compare", help="diff two result CSVs (e.g. before/after a change)"
    )
    compare.add_argument("baseline", help="baseline CSV path")
    compare.add_argument("candidate", help="candidate CSV path")
    compare.add_argument(
        "--field", default="throughput", help="output field to compare"
    )
    compare.add_argument(
        "--threshold", type=float, default=0.05,
        help="relative change flagged as a regression/improvement",
    )
    return parser


def _command_list(_args):
    print("Reproducible exhibits:")
    for key in EXHIBITS:
        spec = EXHIBITS[key]()
        points = len(spec.configurations())
        print("  {:22s} {:4d} configs  {}".format(key, points, spec.title))
    return 0


def _command_policies(args):
    """List the policy registry, layer by layer."""
    import difflib

    from repro.policies import PARAM_FIELDS, registry

    loaded = registry.load_entry_points()
    layers = registry.layers()
    if args.layer is not None and args.layer not in layers:
        message = "unknown policy layer {!r}; layers: {}".format(
            args.layer, ", ".join(layers)
        )
        close = difflib.get_close_matches(args.layer, layers, n=1, cutoff=0.5)
        if close:
            message += ". Did you mean {!r}?".format(close[0])
        print(message, file=sys.stderr)
        return 2
    for layer in layers if args.layer is None else (args.layer,):
        field = PARAM_FIELDS.get(layer)
        selector = (
            " (selected by --{}{})".format(
                field.replace("_", "-"),
                " / " + _FLAG_ALIASES[field] if field in _FLAG_ALIASES else "",
            )
            if field
            else ""
        )
        print("{}{}".format(layer, selector))
        for _layer, name, doc in registry.describe(layer):
            print("  {:14s} {}".format(name, doc))
    if loaded:
        print("({} policies loaded from entry points)".format(loaded))
    return 0


def _command_run(args):
    spec = get_exhibit(args.exhibit)
    changes = {}
    if args.seed is not None:
        changes["seed"] = args.seed
    if args.quick:
        spec = spec.scaled(
            tmax=args.tmax or QUICK_TMAX, ltot_grid=QUICK_LTOT_GRID, **changes
        )
    elif args.tmax is not None or changes:
        spec = spec.scaled(tmax=args.tmax, **changes)

    total = len(spec.configurations())
    print(
        "Running {} ({} configurations, tmax={}, replications={})".format(
            spec.key, total, spec.base.tmax, args.replications
        )
    )

    started = time.perf_counter()

    def cell_progress(done, of, info):
        sys.stderr.write(
            "\r  {}/{} cells  [{}: {}{}]  {:.1f}s elapsed   ".format(
                done, of, info["source"], info["label"],
                ""
                if info["seconds"] is None
                else " in {:.2f}s".format(info["seconds"]),
                time.perf_counter() - started,
            )
        )
        sys.stderr.flush()
        if done == of:
            sys.stderr.write("\n")

    if args.no_cache:
        cache = False
    elif args.cache_dir:
        from repro.experiments.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    else:
        cache = None  # default on-disk cache (REPRO_CACHE=0 disables)
    journal = args.journal
    if journal is None and args.resume:
        import os

        from repro.experiments.cache import default_cache_dir

        root = args.cache_dir or default_cache_dir()
        journal = os.path.join(root, "journals", spec.key + ".journal")

    # Live metrics are purely additive: the registry never schedules
    # events or draws randomness, so --metrics cannot change results.
    metrics = None
    metrics_server = None
    metrics_snapshot = args.metrics_snapshot
    if args.metrics or args.metrics_port is not None:
        from repro.obs.exporters import MetricsServer
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.top import default_snapshot_path

        metrics = MetricsRegistry()
        if metrics_snapshot is None and journal is not None:
            metrics_snapshot = default_snapshot_path(journal)
        if args.metrics_port is not None:
            metrics_server = MetricsServer(metrics, port=args.metrics_port)
            metrics_server.start()
            print(
                "Serving metrics at http://{}:{}/metrics "
                "(and /metrics.json)".format(
                    metrics_server.host, metrics_server.port
                )
            )
        if metrics_snapshot is not None:
            print("Metrics snapshots -> {}".format(metrics_snapshot))
    try:
        result = run_experiment(
            spec,
            replications=args.replications,
            jobs=args.jobs,
            cell_progress=cell_progress,
            cache=cache,
            refresh=args.refresh,
            journal=journal,
            resume=args.resume,
            watchdog=args.watchdog,
            watchdog_retries=args.watchdog_retries,
            accelerator=args.accelerator,
            drain_signals=True,
            metrics=metrics,
            metrics_snapshot=metrics_snapshot,
        )
    except KeyboardInterrupt:
        sys.stderr.write("\n")
        print("Interrupted; progress drained to the journal and cache.")
        if journal is not None:
            print(
                "Resume with: repro-locking run {} --resume --journal {}".format(
                    args.exhibit, journal
                )
            )
        else:
            print(
                "Re-running the same command will reuse cached cells; "
                "pass --journal/--resume for journalled progress."
            )
        return 130
    finally:
        if metrics_server is not None:
            metrics_server.stop()
    print(result.stats.summary())
    if metrics is not None:
        from repro.obs.metrics import summarize_snapshot

        flat = summarize_snapshot(metrics.snapshot())
        counters = flat["counters"]
        commits = counters.get("repro_txn_commits_total", 0)
        if commits:
            aborts = sum(
                value for name, value in counters.items()
                if name.startswith("repro_txn_aborts_total")
            )
            print(
                "Metrics: {:.0f} commits, {:.0f} aborts, "
                "{:.0f} lock waits across the sweep.".format(
                    commits, aborts,
                    sum(
                        entry["count"]
                        for name, entry in flat["histograms"].items()
                        if name.startswith("repro_lock_wait_time")
                    ),
                )
            )
    from repro.experiments.report import accelerator_note

    note = accelerator_note(result.stats)
    if note:
        print(note)
    if result.stats.resumed:
        print(
            "Resumed {} previously completed cells from the journal.".format(
                result.stats.resumed
            )
        )
    if result.stats.watchdog_restarts:
        print(
            "Watchdog killed and retried {} stalled cells.".format(
                result.stats.watchdog_restarts
            )
        )
    for y_field in spec.y_fields:
        print()
        print(format_series_table(result, y_field))
        print()
        print(summarize_optima(result, y_field))
        if args.plot:
            print()
            print(ascii_plot(result, y_field))
    if spec.expected_shape:
        print()
        print("Paper's expected shape: {}".format(spec.expected_shape))
    if args.save:
        save_rows_csv(result.rows(), args.save)
        print("Rows written to {}".format(args.save))
    if args.json:
        save_rows_json(
            result.rows(), args.json, metadata={"exhibit": spec.key}
        )
        print("Rows written to {}".format(args.json))
    if args.svg:
        import os

        from repro.experiments.svg import save_result_charts

        os.makedirs(args.svg, exist_ok=True)
        for path in save_result_charts(result, args.svg):
            print("Chart written to {}".format(path))
    return 0


def _command_predict(args):
    """Analytic prediction(s) — milliseconds, no simulation."""
    from repro.analytic.mva import predict

    overrides = {
        name: getattr(args, name)
        for name in _parameter_names()
        if getattr(args, name, None) is not None
    }
    base = SimulationParameters(**overrides)
    if args.ltot_grid:
        ltots = [int(v) for v in args.ltot_grid.split(",") if v.strip()]
        configs = [base.replace(ltot=ltot) for ltot in ltots]
    else:
        configs = [base]
    fields = (
        "throughput", "response_time", "blocking_prob",
        "lock_overhead_frac", "effective_mpl", "attempts",
    )
    print(
        "{:>8s}".format("ltot")
        + "".join("{:>20s}".format(f) for f in fields)
        + "  {}".format("flags")
    )
    rows = []
    for params in configs:
        prediction = predict(params)
        flags = []
        if not prediction.converged:
            flags.append("not converged")
        if prediction.uncertainty >= 0.5:
            flags.append("uncertain ({:.2f})".format(prediction.uncertainty))
        print(
            "{:>8d}".format(params.ltot)
            + "".join(
                "{:>20.6g}".format(getattr(prediction, f)) for f in fields
            )
            + "  {}".format(", ".join(flags))
        )
        for entry in prediction.per_class:
            print(
                "{:>8s}  class {}: throughput={:.6g} "
                "response_time={:.6g} attempts={:.6g}".format(
                    "", entry["txn_class"], entry["throughput"],
                    entry["response_time"], entry["mean_attempts"],
                )
            )
        rows.append(prediction.as_dict())
    print(
        "(semantics: {}; analytic mean-value model — validate with "
        "'repro-locking crossval')".format(prediction.semantics)
    )
    if args.json:
        save_rows_json(rows, args.json, metadata={"provenance": "analytic"})
        print("Predictions written to {}".format(args.json))
    return 0


def _command_crossval(args):
    """Validate the analytic model against the simulator on a grid."""
    import json

    from repro.experiments.crossval import (
        MIN_COMPLETIONS,
        cross_validate_analytic,
        save_crossval_chart,
    )

    spec = get_exhibit(args.exhibit)
    base_changes = {}
    if args.protocol:
        from repro.policies import registry

        base_changes["protocol"] = args.protocol
        if getattr(registry.resolve("cc", args.protocol), "needs_granules", False):
            base_changes["conflict_engine"] = "explicit"
    replace_sweeps = {}
    if args.npros_grid and "npros" in spec.sweeps:
        replace_sweeps["npros"] = tuple(
            int(v) for v in args.npros_grid.split(",") if v.strip()
        )
    if args.tmax is not None or base_changes or replace_sweeps or args.ltot_grid:
        spec = spec.scaled(
            tmax=args.tmax,
            ltot_grid=(
                tuple(int(v) for v in args.ltot_grid.split(",") if v.strip())
                if args.ltot_grid
                else None
            ),
            replace_sweeps=replace_sweeps or None,
            **base_changes
        )
    if args.no_cache:
        cache = False
    elif args.cache_dir:
        from repro.experiments.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    else:
        cache = None
    print(
        "Cross-validating {} ({} configurations, tmax={}) against the "
        "analytic model...".format(
            spec.key, len(spec.configurations()), spec.base.tmax
        )
    )
    crossval, _result = cross_validate_analytic(
        spec,
        field=args.field,
        replications=args.replications,
        min_completions=(
            args.min_completions
            if args.min_completions is not None
            else MIN_COMPLETIONS
        ),
        jobs=args.jobs,
        cache=cache,
    )
    print(crossval.format())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(crossval.as_dict(), handle, indent=2)
        print("Comparison written to {}".format(args.json))
    if args.svg:
        save_crossval_chart(crossval, args.svg)
        print("Overlay chart written to {}".format(args.svg))
    if args.max_mean_error is not None:
        if not crossval.passes(args.max_mean_error):
            print(
                "FAIL: mean relative error {:.1%} exceeds the {:.1%} "
                "bound".format(
                    crossval.mean_relative_error, args.max_mean_error
                )
            )
            return 1
        print(
            "PASS: mean relative error {:.1%} within the {:.1%} "
            "bound".format(crossval.mean_relative_error, args.max_mean_error)
        )
    return 0


def _command_faults(args):
    """Availability-vs-granularity sweep under an injected fault plan.

    Faulted runs are *not* cached: the fault plan is harness input
    that deliberately stays outside the content address, so results
    go straight from the model to the table (and are reproducible
    from the seeds alone).  With ``--journal``/``--resume`` each
    cell's outputs are journalled inline instead, which is what an
    interrupted faulted sweep resumes from, bit-identically.
    """
    import json as json_module
    from dataclasses import asdict

    from repro.experiments.config import ExperimentSpec
    from repro.faults import (
        CrashSpec,
        FaultPlan,
        LinkDelaySpec,
        PartitionSpec,
        SlowdownSpec,
        StallSpec,
        make_backoff_policy,
    )

    crashes = ()
    if args.mttf is not None:
        crashes = (
            CrashSpec(
                mttf=args.mttf,
                mttr=args.mttr,
                first_failure_after=args.first_failure_after,
            ),
        )
    slowdowns = ()
    if args.disk_mtbf is not None:
        slowdowns = (
            SlowdownSpec(
                mtbf=args.disk_mtbf,
                duration=args.disk_duration,
                factor=args.disk_factor,
            ),
        )
    stalls = ()
    if args.stall_mtbf is not None:
        stalls = (
            StallSpec(
                mtbf=args.stall_mtbf,
                duration=args.stall_duration,
                factor=args.stall_factor,
            ),
        )
    partitions = ()
    if args.partition_mtbf is not None:
        partitions = (
            PartitionSpec(
                mtbf=args.partition_mtbf,
                duration=args.partition_duration,
                first_after=args.partition_first_after,
            ),
        )
    link_delays = ()
    if args.link_delay_mtbf is not None:
        link_delays = (
            LinkDelaySpec(
                mtbf=args.link_delay_mtbf,
                duration=args.link_delay_duration,
                extra=args.link_delay_extra,
            ),
        )
    plan = FaultPlan(
        crashes=crashes,
        disk_slowdowns=slowdowns,
        lock_stalls=stalls,
        partitions=partitions,
        link_delays=link_delays,
        seed=args.fault_seed,
    )
    if not plan.enabled():
        print(
            "No fault source enabled (pass --mttf, --disk-mtbf, "
            "--stall-mtbf, --partition-mtbf or --link-delay-mtbf); "
            "running fault-free baseline."
        )
    backoff = make_backoff_policy(args.backoff)
    overrides = {
        name: getattr(args, name)
        for name in _parameter_names()
        if name != "ltot" and getattr(args, name, None) is not None
    }
    ltots = tuple(int(v) for v in args.ltot_grid.split(",") if v.strip())
    sweeps = {}
    series_fields = ()
    if args.commit_grid:
        protocols = tuple(
            v.strip() for v in args.commit_grid.split(",") if v.strip()
        )
        nnodes = overrides.get("nnodes", SimulationParameters().nnodes)
        if nnodes < 2 and any(p != "local" for p in protocols):
            print(
                "error: --commit-grid with distributed protocols needs "
                "--nnodes >= 2",
                file=sys.stderr,
            )
            return 2
        sweeps["commit_protocol"] = protocols
        series_fields = ("commit_protocol",)
    sweeps["ltot"] = ltots
    distributed = (
        overrides.get("nnodes", 1) > 1 or bool(args.commit_grid)
    )
    fields = (
        "throughput",
        "availability",
        "failure_aborts",
        "degraded_throughput",
        "response_time",
    )
    if distributed:
        fields += (
            "commit_aborts",
            "commit_latency",
            "messages_sent",
            "messages_dropped",
            "partition_time",
        )
    try:
        spec = ExperimentSpec(
            key="faults",
            title="Availability vs granularity under injected faults",
            base=SimulationParameters(**overrides),
            sweeps=sweeps,
            series_fields=series_fields,
            y_fields=("availability", "throughput"),
        )
        configs = spec.configurations()
    except ValueError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    print(
        "Faulted sweep: ltot in {}, {} replications, backoff={}{}".format(
            list(ltots), args.replications, args.backoff,
            ", commit in {}".format(list(sweeps["commit_protocol"]))
            if "commit_protocol" in sweeps else "",
        )
    )
    metrics = None
    metrics_server = None
    if args.metrics_port is not None:
        from repro.obs.exporters import MetricsServer
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        metrics_server = MetricsServer(metrics, port=args.metrics_port)
        metrics_server.start()
        print(
            "Serving metrics at http://{}:{}/metrics "
            "(and /metrics.json)".format(
                metrics_server.host, metrics_server.port
            )
        )
    try:
        result = run_experiment(
            spec,
            replications=args.replications,
            jobs=args.jobs,
            cache=False,
            journal=args.journal,
            resume=args.resume,
            drain_signals=True,
            fault_plan=plan,
            backoff=backoff,
            metrics=metrics,
        )
    except KeyboardInterrupt:
        print("Interrupted; progress drained to the journal.")
        if args.journal is not None:
            print(
                "Resume by re-running the same command with --resume "
                "--journal {}".format(args.journal)
            )
        return 130
    finally:
        if metrics_server is not None:
            metrics_server.stop()
    if result.stats.resumed:
        print(
            "Resumed {} previously completed cells from the "
            "journal.".format(result.stats.resumed)
        )
    label_width = max(
        (len(spec.series_label(c)) for c in configs), default=0
    )
    header = "{:>8s}".format("ltot") + "".join(
        "{:>20s}".format(f) for f in fields
    )
    if series_fields:
        header = "{:<{w}s}".format("series", w=label_width + 2) + header
    print(header)
    rows = []
    for outcome in result.outcomes:
        row = {}
        for name in series_fields:
            row[name] = getattr(outcome.params, name)
        row["ltot"] = outcome.params.ltot
        for f in fields:
            row[f] = outcome.mean(f)
        rows.append(row)
        line = "{:>8d}".format(row["ltot"]) + "".join(
            "{:>20.6g}".format(row[f]) for f in fields
        )
        if series_fields:
            line = "{:<{w}s}".format(
                spec.series_label(outcome.params), w=label_width + 2
            ) + line
        print(line)
    if args.save:
        save_rows_csv(rows, args.save)
        print("Rows written to {}".format(args.save))
    if args.json is not None:
        document = {
            "plan": asdict(plan),
            "plan_digest": plan.digest(),
            "backoff": args.backoff,
            "replications": args.replications,
            "rows": rows,
        }
        if args.json == "-":
            json_module.dump(document, sys.stdout, indent=1, sort_keys=True)
            print()
        else:
            with open(args.json, "w") as handle:
                json_module.dump(document, handle, indent=1, sort_keys=True)
            print("JSON table written to {}".format(args.json))
    return 0


def _command_simulate(args):
    overrides = {
        name: getattr(args, name)
        for name in _parameter_names()
        if getattr(args, name) is not None
    }
    if args.trace:
        from repro.core.model import LockingGranularityModel
        from repro.des.trace import Trace

        trace = Trace()
        model = LockingGranularityModel(
            SimulationParameters(**overrides), trace=trace
        )
        result = model.run()
        print(trace.format(limit=args.trace))
        print("({} events total)".format(len(trace)))
    else:
        result = simulate(**overrides)
    print("Parameters:")
    for key, value in sorted(result.params.as_dict().items()):
        print("  {:24s} {}".format(key, value))
    print("Outputs:")
    for name in RESULT_FIELDS:
        print("  {:24s} {}".format(name, getattr(result, name)))
    for entry in result.per_class:
        print("Class {}:".format(entry["txn_class"]))
        for key, value in entry.items():
            if key != "txn_class":
                print("  {:24s} {}".format(key, value))
    return 0


def _command_tune(args):
    from repro.experiments.search import find_optimal_ltot

    overrides = {
        name: getattr(args, name)
        for name in _parameter_names()
        if hasattr(args, name) and getattr(args, name) is not None
    }
    overrides["tmax"] = args.tmax
    params = SimulationParameters(**overrides)
    outcome = find_optimal_ltot(
        params,
        objective=args.objective,
        maximize=not args.minimize,
        replications=args.replications,
    )
    print("Evaluated {} granularities:".format(len(outcome.evaluations)))
    for ltot in sorted(outcome.evaluations):
        marker = "  <-- best" if ltot == outcome.best_ltot else ""
        print("  ltot={:>6d}  {}={:.6g}{}".format(
            ltot, args.objective, outcome.evaluations[ltot], marker))
    print("Optimal granularity: ltot = {} ({} = {:.6g})".format(
        outcome.best_ltot, args.objective, outcome.best_value))
    return 0


def _command_sensitivity(args):
    from repro.experiments.sensitivity import (
        analyze_sensitivity,
        format_sensitivities,
    )

    overrides = {
        name: getattr(args, name)
        for name in _parameter_names()
        if hasattr(args, name) and getattr(args, name) is not None
    }
    overrides["tmax"] = args.tmax
    params = SimulationParameters(**overrides)
    results = analyze_sensitivity(
        params,
        output=args.output,
        delta=args.delta,
        replications=args.replications,
    )
    print(
        "Elasticity of {} to ±{:.0%} parameter changes:".format(
            args.output, args.delta
        )
    )
    print(format_sensitivities(results))
    return 0


def _command_trace(args):
    from repro.core.model import MODEL_VERSION, LockingGranularityModel
    from repro.obs import JsonlTraceSink, Telemetry, build_manifest, write_manifest

    overrides = {
        name: getattr(args, name)
        for name in _parameter_names()
        if getattr(args, name) is not None
    }
    params = SimulationParameters(**overrides)
    sink = JsonlTraceSink(
        args.out,
        params=params.as_dict(),
        model_version=MODEL_VERSION,
        seed=params.seed,
    )
    telemetry = Telemetry(sink=sink, sample_interval=args.sample_interval)
    started = time.perf_counter()
    result = LockingGranularityModel(params, telemetry=telemetry).run()
    wall = time.perf_counter() - started
    telemetry.finish(
        totcom=result.totcom,
        throughput=result.throughput,
        wall_seconds=round(wall, 4),
    )
    manifest_path = args.out + ".manifest"
    write_manifest(
        manifest_path,
        build_manifest(params, cache_hit=False, wall_seconds=wall),
    )
    if args.print_events:
        from repro.obs import load_trace

        print(load_trace(args.out).to_trace().format(limit=args.print_events))
    print(
        "Telemetry written to {} ({} events, {} samples) "
        "+ manifest {}".format(
            args.out, sink.events, sink.samples, manifest_path
        )
    )
    print(
        "Run: totcom={} throughput={:.4g} in {:.2f}s".format(
            result.totcom, result.throughput, wall
        )
    )
    return 0


def _command_report(args):
    from repro.obs import format_report, load_trace, report_json, save_report_chart

    tracefile = load_trace(args.telemetry)
    if args.json is not None:
        import json

        document = report_json(tracefile, top=args.top)
        if args.json == "-":
            json.dump(document, sys.stdout, indent=1, sort_keys=True)
            print()
        else:
            with open(args.json, "w") as handle:
                json.dump(document, handle, indent=1, sort_keys=True)
            print("JSON report written to {}".format(args.json))
    else:
        print(format_report(tracefile, top=args.top))
    if args.svg:
        path = save_report_chart(tracefile, args.svg)
        print()
        print("Timeline chart written to {}".format(path))
    return 0


def _command_top(args):
    from repro.obs.top import run_top

    try:
        journal = run_top(
            args.journal,
            snapshot_path=args.snapshot,
            interval=args.interval,
            frames=args.frames,
            once=args.once,
            follow=args.follow,
        )
    except KeyboardInterrupt:
        print()
        return 130
    return 0 if journal.get("cells") is not None else 1


def _command_compare(args):
    from repro.experiments.storage import load_rows_csv

    def key_of(row):
        return tuple(
            (name, row.get(name))
            for name in ("ltot", "npros", "placement", "maxtransize",
                         "partitioning", "ntrans", "liotime")
            if name in row
        )

    baseline = {key_of(row): row for row in load_rows_csv(args.baseline)}
    candidate = {key_of(row): row for row in load_rows_csv(args.candidate)}
    shared = [key for key in baseline if key in candidate]
    if not shared:
        print("No overlapping configurations between the two files.")
        return 1
    flagged = 0
    print("{:>60s}  {:>10s}  {:>10s}  {:>8s}".format(
        "configuration", "baseline", "candidate", "delta"))
    for key in shared:
        base_value = baseline[key].get(args.field)
        cand_value = candidate[key].get(args.field)
        if base_value in (None, 0) or cand_value is None:
            continue
        delta = (cand_value - base_value) / abs(base_value)
        label = ", ".join("{}={}".format(k, v) for k, v in key)
        mark = ""
        if abs(delta) >= args.threshold:
            flagged += 1
            mark = "  <-- {}".format("improved" if delta > 0 else "regressed")
        print("{:>60s}  {:>10.4g}  {:>10.4g}  {:>+7.1%}{}".format(
            label[-60:], base_value, cand_value, delta, mark))
    print("{} of {} shared configurations changed by >= {:.0%} in {}.".format(
        flagged, len(shared), args.threshold, args.field))
    return 0


def main(argv=None):
    """Entry point of the ``repro-locking`` console script.

    An unknown policy name (``--cc wond-wait``) exits with status 2
    and the registry's close-match suggestions instead of a traceback.
    """
    from repro.policies import UnknownPolicyError

    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except UnknownPolicyError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        print(
            "Run 'repro-locking policies' to list every registered "
            "policy.",
            file=sys.stderr,
        )
        return 2


def _dispatch(args):
    if args.command == "list":
        return _command_list(args)
    if args.command == "policies":
        return _command_policies(args)
    if args.command == "run":
        return _command_run(args)
    if args.command == "predict":
        return _command_predict(args)
    if args.command == "crossval":
        return _command_crossval(args)
    if args.command == "faults":
        return _command_faults(args)
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "tune":
        return _command_tune(args)
    if args.command == "sensitivity":
        return _command_sensitivity(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "top":
        return _command_top(args)
    if args.command == "compare":
        return _command_compare(args)
    raise AssertionError("unreachable: {!r}".format(args.command))


if __name__ == "__main__":
    sys.exit(main())
