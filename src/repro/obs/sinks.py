"""Trace sinks: pluggable backends for structured trace export.

The simulation model emits lifecycle events through whatever object is
passed as its ``trace`` — anything implementing the :class:`TraceSink`
protocol (an ``emit(time, kind, subject, **details)`` method).  Two
backends are provided:

* :class:`~repro.des.trace.Trace` — the in-memory ring buffer
  (re-exported here as :data:`RingBufferSink`), for tests and
  interactive inspection;
* :class:`JsonlTraceSink` — a schema-versioned JSON-Lines file, for
  export, replay and offline reporting.

A telemetry file is a sequence of single-line JSON objects:

* exactly one ``{"type": "header", "schema": ..., ...}`` first line
  carrying the schema version, the model version and the run's
  parameters;
* any number of ``{"type": "record", "t": ..., "kind": ...,
  "txn": ..., "d": {...}}`` event lines, in emission order;
* any number of ``{"type": "sample", "t": ..., "data": {...}}``
  time-series lines (see :mod:`repro.obs.timeseries`);
* optionally one final ``{"type": "footer", ...}`` line with closing
  totals.

:func:`load_trace` replays such a file back into
:class:`~repro.des.trace.TraceRecord` objects, refusing files written
under an unknown schema version.
"""

import json

from repro.des.trace import Trace, TraceRecord

#: Version of the telemetry file layout.  Bump on any incompatible
#: change to the line format; :func:`load_trace` refuses other
#: versions instead of guessing.
TRACE_SCHEMA = 1

#: The in-memory ring-buffer backend of the sink protocol.
RingBufferSink = Trace


class TraceSchemaError(ValueError):
    """A telemetry file is malformed or from an unknown schema."""


class TraceSink:
    """Protocol stub: the interface the model emits through.

    Any object with this ``emit`` signature works as a sink; this
    class only documents the contract (duck typing is used
    throughout — :class:`~repro.des.trace.Trace` does not inherit from
    it).
    """

    def emit(self, time, kind, subject, **details):
        """Record one event."""
        raise NotImplementedError


class MultiSink:
    """Fan one emit stream out to several sinks."""

    def __init__(self, sinks):
        self.sinks = list(sinks)

    def emit(self, time, kind, subject, **details):
        """Forward the record to every sink."""
        for sink in self.sinks:
            sink.emit(time, kind, subject, **details)


class JsonlTraceSink:
    """Streamed JSON-Lines trace file.

    The header line is written on construction, so even a run that
    crashes mid-way leaves a loadable (footer-less) file.  Use as a
    context manager or call :meth:`close` to append the footer.

    Parameters
    ----------
    path:
        Output file path (created/truncated).
    params:
        Optional run parameters dict stored in the header.
    model_version:
        Optional simulator version stored in the header.
    meta:
        Extra header fields (seed, exhibit key, ...).
    """

    def __init__(self, path, params=None, model_version=None, **meta):
        self.path = str(path)
        self.events = 0
        self.samples = 0
        self._handle = open(self.path, "w")
        header = {"type": "header", "schema": TRACE_SCHEMA}
        if model_version is not None:
            header["model_version"] = model_version
        if params is not None:
            header["params"] = dict(params)
        header.update(meta)
        self._write(header)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def _write(self, document):
        self._handle.write(json.dumps(document, sort_keys=True))
        self._handle.write("\n")

    def emit(self, time, kind, subject, **details):
        """Append one event record line."""
        line = {"type": "record", "t": time, "kind": kind, "txn": subject}
        if details:
            line["d"] = details
        self._write(line)
        self.events += 1

    def emit_sample(self, time, data):
        """Append one time-series sample line."""
        self._write({"type": "sample", "t": time, "data": data})
        self.samples += 1

    def close(self, **footer):
        """Write the footer (event totals plus *footer*) and close."""
        if self._handle.closed:
            return
        line = {"type": "footer", "events": self.events, "samples": self.samples}
        line.update(footer)
        self._write(line)
        self._handle.close()


class TraceFile:
    """A replayed telemetry file.

    Attributes
    ----------
    header:
        The header dict (``schema``, ``model_version``, ``params``, ...).
    records:
        Event :class:`~repro.des.trace.TraceRecord` list, in file order.
    samples:
        Time-series sample dicts (each with ``t`` plus the recorded
        signals), in file order.
    footer:
        The footer dict, or ``None`` for a truncated file.
    """

    def __init__(self, header, records, samples, footer=None):
        self.header = header
        self.records = records
        self.samples = samples
        self.footer = footer

    def __len__(self):
        return len(self.records)

    def to_trace(self):
        """The records re-materialised as an in-memory :class:`Trace`."""
        trace = Trace()
        for record in self.records:
            trace.emit(record.time, record.kind, record.subject, **record.details)
        return trace

    @property
    def params(self):
        """The run's parameter dict from the header (may be ``None``)."""
        return self.header.get("params")


def load_trace(path):
    """Replay a telemetry JSONL file into a :class:`TraceFile`.

    Raises
    ------
    TraceSchemaError
        When the file is empty, does not start with a header, carries
        an unknown schema version, or contains an unparsable line.
    """
    header = None
    footer = None
    records = []
    samples = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except ValueError as error:
                raise TraceSchemaError(
                    "{}:{}: unparsable line ({})".format(path, line_no, error)
                ) from None
            kind = document.get("type")
            if line_no == 1:
                if kind != "header":
                    raise TraceSchemaError(
                        "{}: first line must be a header, got {!r}".format(
                            path, kind
                        )
                    )
                if document.get("schema") != TRACE_SCHEMA:
                    raise TraceSchemaError(
                        "{}: unsupported trace schema {!r} "
                        "(this reader understands {})".format(
                            path, document.get("schema"), TRACE_SCHEMA
                        )
                    )
                header = document
            elif kind == "record":
                records.append(
                    TraceRecord(
                        document["t"],
                        document["kind"],
                        document["txn"],
                        document.get("d", {}),
                    )
                )
            elif kind == "sample":
                sample = {"t": document["t"]}
                sample.update(document.get("data", {}))
                samples.append(sample)
            elif kind == "footer":
                footer = document
            else:
                raise TraceSchemaError(
                    "{}:{}: unknown line type {!r}".format(path, line_no, kind)
                )
    if header is None:
        raise TraceSchemaError("{}: empty telemetry file".format(path))
    return TraceFile(header, records, samples, footer)
