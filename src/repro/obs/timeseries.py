"""Sampled time-series telemetry for simulation runs.

The paper's conclusions are about *regimes* — which populations grow,
which devices saturate — yet an end-of-run aggregate cannot show when a
run entered a regime.  :class:`TimeSeriesRecorder` runs as an ordinary
simulation process, waking every ``interval`` simulated time units and
snapshotting:

* per-processor CPU / disk queue depth and utilisation over the last
  interval (busy-time delta divided by the interval);
* the pending / blocked / active transaction populations;
* lock-table occupancy (locks currently held).

The recorder only *reads* model state — it touches no random stream
and mutates nothing — so enabling it leaves simulation results
bit-identical; it merely interleaves extra timeout events in the
heap.
"""


class TimeSeriesRecorder:
    """Periodic sampler of machine and population state.

    Parameters
    ----------
    interval:
        Simulated time between samples (must be positive).

    Attributes
    ----------
    rows:
        One dict per sample, in time order.  Keys: ``t``, ``cpu_q``,
        ``disk_q``, ``cpu_util``, ``disk_util`` (per-processor lists),
        ``pending``, ``blocked``, ``active``, ``locks_held``.
    """

    def __init__(self, interval=5.0):
        if interval <= 0:
            raise ValueError("interval must be > 0, got {}".format(interval))
        self.interval = float(interval)
        self.rows = []

    def install(self, model):
        """Start sampling *model* (a ``LockingGranularityModel``)."""
        model.env.process(self._sample_loop(model))

    def _sample_loop(self, model):
        env = model.env
        machine = model.machine
        metrics = model.metrics
        conflicts = model.conflicts
        npros = len(machine)
        prev_cpu = [0.0] * npros
        prev_disk = [0.0] * npros
        interval = self.interval
        while True:
            yield interval  # bare-delay sleep: no Timeout allocated
            cpu_busy = [p.cpu.busy_time() for p in machine.processors]
            disk_busy = [p.disk.busy_time() for p in machine.processors]
            self.rows.append({
                "t": env.now,
                "cpu_q": [p.cpu.queue_length for p in machine.processors],
                "disk_q": [p.disk.queue_length for p in machine.processors],
                "cpu_util": [
                    (now - prev) / interval
                    for now, prev in zip(cpu_busy, prev_cpu)
                ],
                "disk_util": [
                    (now - prev) / interval
                    for now, prev in zip(disk_busy, prev_disk)
                ],
                "pending": metrics.pending.level,
                "blocked": metrics.blocked.level,
                "active": conflicts.active_count,
                "locks_held": conflicts.locks_held,
            })
            prev_cpu = cpu_busy
            prev_disk = disk_busy

    def __len__(self):
        return len(self.rows)

    def export(self, sink):
        """Write every sample into *sink* (a JSONL sink)."""
        for row in self.rows:
            data = {key: value for key, value in row.items() if key != "t"}
            sink.emit_sample(row["t"], data)
