"""The telemetry bundle a model run carries.

One :class:`Telemetry` object groups everything observability-related
for a run: the trace sink lifecycle events go to, and the optional
sampled time-series recorder.  The model accepts it as
``LockingGranularityModel(params, telemetry=...)``; with no telemetry
(the default) every emit site reduces to a single ``None`` check and
results are bit-identical to an uninstrumented run.
"""

from repro.obs.timeseries import TimeSeriesRecorder


class Telemetry:
    """Telemetry configuration and collected state for one run.

    Parameters
    ----------
    sink:
        Optional trace sink (``emit(time, kind, subject, **details)``);
        receives every lifecycle event.
    sample_interval:
        Simulated time between time-series samples; ``0`` disables
        sampling.
    """

    def __init__(self, sink=None, sample_interval=0.0):
        self.sink = sink
        self.timeseries = (
            TimeSeriesRecorder(sample_interval) if sample_interval > 0 else None
        )

    def install(self, model):
        """Attach the samplers to *model* (called by ``model.run``)."""
        if self.timeseries is not None:
            self.timeseries.install(model)

    def finish(self, **footer):
        """Flush samples into the sink and close it (if closable)."""
        sink = self.sink
        if sink is None:
            return
        if self.timeseries is not None and hasattr(sink, "emit_sample"):
            self.timeseries.export(sink)
        if hasattr(sink, "close"):
            sink.close(**footer)
