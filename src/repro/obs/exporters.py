"""Metrics exporters: Prometheus text exposition, JSON snapshots,
periodic snapshot files, and a stdlib HTTP scrape endpoint.

Everything here consumes the plain-dict snapshots produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`, so exporters work
identically on a live registry, on a worker snapshot merged
parent-side, and on a snapshot file read back from disk.

The HTTP server (:class:`MetricsServer`) is a daemon-threaded
``http.server`` — no third-party dependency — serving:

``GET /metrics``
    Prometheus text exposition format v0.0.4.
``GET /metrics.json``
    The JSON snapshot document (same schema as the periodic snapshot
    files written next to sweep journals).
"""

import json
import math
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import time as wall_time

#: Schema tag stamped into JSON snapshot documents.
SNAPSHOT_SCHEMA = 1


# -- Prometheus text exposition v0.0.4 -----------------------------------


def _escape_help(text):
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value):
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        return repr(value)
    return str(value)


def _label_pairs(label_names, values, extra=()):
    """Rendered ``name="value"`` pairs; ``le``/extra pairs come last."""
    pairs = [
        '{}="{}"'.format(name, _escape_label(value))
        for name, value in zip(label_names, values)
    ]
    pairs.extend(
        '{}="{}"'.format(name, _escape_label(value)) for name, value in extra
    )
    return "{{{}}}".format(",".join(pairs)) if pairs else ""


def _bucket_edge(edge):
    return _format_value(float(edge))


def prometheus_text(source):
    """Render a registry or snapshot dict as exposition format v0.0.4.

    Histograms emit cumulative ``_bucket`` series (``le`` label last,
    as Prometheus expects), then ``_sum`` and ``_count``.
    """
    snapshot = source.snapshot() if hasattr(source, "snapshot") else source
    lines = []
    for name, doc in snapshot.items():
        kind = doc.get("type", "untyped")
        label_names = doc.get("label_names", ())
        lines.append("# HELP {} {}".format(name, _escape_help(doc.get("help", ""))))
        lines.append("# TYPE {} {}".format(name, kind))
        for entry in doc.get("series", ()):
            values = entry.get("labels", ())
            if kind == "histogram":
                cumulative = 0
                edges = doc.get("buckets", ())
                counts = entry.get("counts", ())
                for edge, count in zip(edges, counts):
                    cumulative += count
                    lines.append(
                        "{}_bucket{} {}".format(
                            name,
                            _label_pairs(
                                label_names, values,
                                extra=(("le", _bucket_edge(edge)),),
                            ),
                            cumulative,
                        )
                    )
                lines.append(
                    "{}_bucket{} {}".format(
                        name,
                        _label_pairs(
                            label_names, values, extra=(("le", "+Inf"),)
                        ),
                        entry.get("count", cumulative),
                    )
                )
                lines.append(
                    "{}_sum{} {}".format(
                        name,
                        _label_pairs(label_names, values),
                        _format_value(entry.get("sum", 0.0)),
                    )
                )
                lines.append(
                    "{}_count{} {}".format(
                        name,
                        _label_pairs(label_names, values),
                        entry.get("count", 0),
                    )
                )
            else:
                lines.append(
                    "{}{} {}".format(
                        name,
                        _label_pairs(label_names, values),
                        _format_value(entry.get("value", 0)),
                    )
                )
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text):
    """Parse exposition text back into ``{sample_name: {labels: value}}``.

    A deliberately small scrape-side parser used by the round-trip
    tests and the CI smoke job: ``# HELP``/``# TYPE`` comments index
    into a ``_meta`` entry, every sample line becomes
    ``result[name][frozenset(label_pairs)] = float(value)``.
    """
    samples = {}
    meta = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] in ("HELP", "TYPE"):
                meta.setdefault(parts[2], {})[parts[1].lower()] = parts[3]
            continue
        if line.endswith("{"):
            raise ValueError("malformed sample line: {!r}".format(raw))
        name, labels, value = _parse_sample(line)
        samples.setdefault(name, {})[labels] = value
    return {"samples": samples, "meta": meta}


def _parse_sample(line):
    if "{" in line:
        name, rest = line.split("{", 1)
        label_blob, _, value_text = rest.rpartition("}")
        labels = []
        for piece in _split_labels(label_blob):
            key, _, quoted = piece.partition("=")
            if not (quoted.startswith('"') and quoted.endswith('"')):
                raise ValueError("bad label in {!r}".format(line))
            labels.append(
                (
                    key.strip(),
                    quoted[1:-1]
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\"),
                )
            )
        return name.strip(), frozenset(labels), float(value_text)
    name, _, value_text = line.rpartition(" ")
    return name.strip(), frozenset(), float(value_text)


def _split_labels(blob):
    """Split ``a="x",b="y"`` on commas outside quotes."""
    pieces = []
    current = []
    in_quotes = False
    escaped = False
    for ch in blob:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            pieces.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        pieces.append("".join(current))
    return [p for p in (piece.strip() for piece in pieces) if p]


# -- JSON snapshots ------------------------------------------------------


def json_snapshot(source, **extra):
    """The JSON snapshot document for a registry or snapshot dict.

    ``extra`` keys (e.g. sweep progress for ``repro-locking top``) are
    stored under ``"context"``.
    """
    snapshot = source.snapshot() if hasattr(source, "snapshot") else source
    document = {
        "schema": SNAPSHOT_SCHEMA,
        "generated_unixtime": round(wall_time(), 3),
        "metrics": snapshot,
    }
    if extra:
        document["context"] = extra
    return document


def read_snapshot(path):
    """Load a snapshot file; ``None`` when absent, partial or unreadable."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict) or "metrics" not in document:
        return None
    return document


class SnapshotWriter:
    """Periodically writes JSON snapshot files next to a journal.

    Writes are atomic (tmp file + ``os.replace``) so a concurrent
    ``repro-locking top`` never reads a torn document, and rate-limited
    by ``min_interval`` wall seconds so high-frequency cell completions
    don't turn into fsync storms.
    """

    def __init__(self, path, registry, min_interval=0.5, context=None):
        self.path = str(path)
        self.registry = registry
        self.min_interval = min_interval
        self.context = context or {}
        self._last_write = 0.0

    def maybe_write(self, force=False, **context):
        """Write a snapshot if *force* or the interval elapsed."""
        now = wall_time()
        if not force and now - self._last_write < self.min_interval:
            return False
        self._last_write = now
        merged = dict(self.context)
        merged.update(context)
        document = json_snapshot(self.registry, **merged)
        tmp = "{}.tmp.{}".format(self.path, os.getpid())
        try:
            with open(tmp, "w") as handle:
                json.dump(document, handle)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True


# -- HTTP scrape endpoint ------------------------------------------------


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "repro-locking-metrics/1"

    def do_GET(self):  # noqa: N802 - http.server API
        registry = self.server.registry
        context = self.server.context_fn
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = prometheus_text(registry).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            extra = context() if context is not None else {}
            body = json.dumps(json_snapshot(registry, **extra)).encode("utf-8")
            content_type = "application/json"
        else:
            self.send_error(404, "try /metrics or /metrics.json")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass  # scrapes must not spam the sweep's progress output


class MetricsServer:
    """Daemon-threaded scrape endpoint for a live registry.

    ``port=0`` binds an ephemeral port (useful in tests); the bound
    port is available as :attr:`port` after :meth:`start`.
    """

    def __init__(self, registry, port, host="127.0.0.1", context_fn=None):
        self.registry = registry
        self.host = host
        self.port = port
        self.context_fn = context_fn
        self._httpd = None
        self._thread = None

    def start(self):
        """Bind the socket and serve from a daemon thread."""
        httpd = ThreadingHTTPServer((self.host, self.port), _MetricsHandler)
        httpd.daemon_threads = True
        httpd.registry = self.registry
        httpd.context_fn = self.context_fn
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self):
        """Shut the server down and join its thread."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()
