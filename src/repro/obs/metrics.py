"""Low-overhead live metrics: registry, instruments, and layer wiring.

This is the always-on observability backend the offline trace/report
pipeline cannot provide: counters, gauges and fixed-bucket histograms
that a running sweep exports *while it runs* (Prometheus text or JSON
snapshots, see :mod:`repro.obs.exporters`) instead of after the fact.

Design rules, in priority order:

1. **Results are untouched.**  No instrument ever schedules an event,
   draws from a random stream or consumes a kernel event id, so runs
   are bit-identical with metrics on or off (pinned by
   ``tests/obs/test_metrics.py``).
2. **Disabled means free.**  A disabled registry hands every caller
   the same shared no-op instrument, and every instrumentation site in
   the model guards with a single ``is not None`` branch — the 692k
   ev/s pooled process path is preserved (gated by
   ``benchmarks/bench_suite.py``).
3. **The kernel inner loop is never instrumented.**  Kernel quantities
   (events dispatched, heap depth, pool hit rate) are *polled* by
   registered collectors at snapshot/scrape time, costing zero inside
   :meth:`repro.des.engine.Environment.run`.

Quick tour::

    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    cells = registry.counter("sweep_cells_total", "Cells done.",
                             labels=("source",))
    cells.labels("cache").inc()
    wait = registry.histogram("lock_wait_time", "Lock waits.")
    wait.labels().observe(0.7)
    snapshot = registry.snapshot()   # JSON-able, deterministic order

Snapshots from worker processes merge back into a parent registry with
:meth:`MetricsRegistry.merge_snapshot` — counters and histogram
buckets add, gauges take the latest value — which is how a sweep's
per-cell lock-wait histograms (labelled by granularity) aggregate
parent-side.
"""

import math
import os
from bisect import bisect_left

#: Default cap on distinct label sets per metric family.  Beyond it,
#: new label sets collapse into one shared ``_other`` series and the
#: family counts the drop — an unbounded-cardinality workload (e.g.
#: per-granule counters with ``ltot=5000``) cannot exhaust memory.
DEFAULT_MAX_SERIES = 64

#: Label value used by the cardinality-overflow series.
OVERFLOW_LABEL = "_other"


def log_buckets(start=0.01, factor=2.0, count=16):
    """Fixed log-scaled histogram bucket edges.

    ``count`` finite edges at ``start * factor**i``; observations above
    the last edge land in the implicit ``+Inf`` bucket.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor ** i for i in range(count))


#: Default edges for simulated-time quantities (lock waits, response
#: times): 0.01 .. ~327 time units, factor-2 log scale.
DEFAULT_TIME_BUCKETS = log_buckets(0.01, 2.0, 16)

#: Default edges for small counts (attempts, chain lengths).
DEFAULT_COUNT_BUCKETS = log_buckets(1.0, 2.0, 12)


def metrics_enabled(environ=None):
    """True when ``REPRO_METRICS`` requests instrumentation."""
    env = os.environ if environ is None else environ
    return env.get("REPRO_METRICS", "") not in ("", "0")


class _NullInstrument:
    """Shared no-op stand-in for every instrument of a disabled registry.

    All mutators are empty methods and :meth:`labels` returns the same
    singleton, so the disabled path allocates nothing per call.
    """

    __slots__ = ()

    def labels(self, *values, **kv):
        return self

    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


NULL_INSTRUMENT = _NullInstrument()


class CounterSeries:
    """One monotonically increasing sample."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        """Add *amount* (must not be negative for true counters)."""
        self.value += amount

    def set(self, value):
        """Sync to an externally tracked monotonic count (collectors)."""
        if value > self.value:
            self.value = value


class GaugeSeries:
    """One sample that can go up and down."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        """Replace the sample."""
        self.value = value

    def inc(self, amount=1):
        """Adjust the sample by ``amount`` (may be negative)."""
        self.value += amount


class HistogramSeries:
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    ``counts`` has ``len(edges) + 1`` slots; the last is the implicit
    ``+Inf`` bucket.  Counts are stored per-bucket (not cumulative);
    the Prometheus exporter accumulates on the way out.
    """

    __slots__ = ("edges", "counts", "sum", "count")

    def __init__(self, edges):
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        """Record ``value`` in its bucket and the running sum/count."""
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, counts, total, count):
        """Fold another series' (counts, sum, count) into this one."""
        mine = self.counts
        for i, c in enumerate(counts[: len(mine)]):
            mine[i] += c
        self.sum += total
        self.count += count

    def quantile(self, q):
        """Approximate *q*-quantile from the bucket counts.

        Returns the upper edge of the bucket holding the ``q``-th
        observation (the last finite edge for the ``+Inf`` bucket),
        ``nan`` when empty — the same estimate a Prometheus
        ``histogram_quantile`` would bound.
        """
        if self.count == 0:
            return math.nan
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                if i < len(self.edges):
                    return self.edges[i]
                return self.edges[-1] if self.edges else math.inf
        return self.edges[-1] if self.edges else math.inf


_SERIES_TYPES = {
    "counter": CounterSeries,
    "gauge": GaugeSeries,
    "histogram": HistogramSeries,
}


class MetricFamily:
    """All series of one named metric (a Prometheus metric family).

    Obtained from the registry factories; call :meth:`labels` with the
    family's label values (positionally or by name) to get the series
    to update.  An unlabelled family's single series is
    ``family.labels()``, which the registry hands out for hot sites to
    hold directly.
    """

    __slots__ = (
        "name", "help", "kind", "label_names", "buckets",
        "max_series", "dropped", "_series", "_overflow",
    )

    def __init__(self, name, help_text, kind, label_names=(),
                 buckets=None, max_series=DEFAULT_MAX_SERIES):
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets) if buckets is not None else None
        self.max_series = max_series
        self.dropped = 0
        self._series = {}
        self._overflow = None

    def _new_series(self):
        if self.kind == "histogram":
            return HistogramSeries(self.buckets)
        return _SERIES_TYPES[self.kind]()

    def labels(self, *values, **by_name):
        """The series for one label-value tuple (created on first use)."""
        if by_name:
            values = values + tuple(
                by_name[name] for name in self.label_names[len(values):]
            )
        if len(values) != len(self.label_names):
            raise ValueError(
                "{} expects labels {}, got {!r}".format(
                    self.name, self.label_names, values
                )
            )
        key = tuple(str(v) for v in values)
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                # Cardinality guard: collapse into one shared series.
                self.dropped += 1
                if self._overflow is None:
                    self._overflow = self._new_series()
                    self._series[
                        (OVERFLOW_LABEL,) * len(self.label_names)
                    ] = self._overflow
                return self._overflow
            series = self._new_series()
            self._series[key] = series
        return series

    def items(self):
        """(label_values, series) pairs, sorted for stable export."""
        return sorted(self._series.items())

    def snapshot(self):
        """JSON-able dict of this family's state."""
        doc = {
            "type": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
        }
        if self.kind == "histogram":
            doc["buckets"] = list(self.buckets)
            doc["series"] = [
                {
                    "labels": list(key),
                    "counts": list(series.counts),
                    "sum": series.sum,
                    "count": series.count,
                }
                for key, series in self.items()
            ]
        else:
            doc["series"] = [
                {"labels": list(key), "value": series.value}
                for key, series in self.items()
            ]
        if self.dropped:
            doc["dropped"] = self.dropped
        return doc


class MetricsRegistry:
    """Holds metric families and the collectors that refresh them.

    Parameters
    ----------
    enabled:
        ``False`` turns every factory into a :data:`NULL_INSTRUMENT`
        dispenser — the zero-cost path for instrumented code that runs
        without metrics.
    """

    def __init__(self, enabled=True):
        self.enabled = enabled
        self._families = {}
        self._collectors = []

    def __contains__(self, name):
        return name in self._families

    def family(self, name):
        """The registered :class:`MetricFamily`, or ``None``."""
        return self._families.get(name)

    def _register(self, name, help_text, kind, labels, buckets, max_series):
        if not self.enabled:
            return NULL_INSTRUMENT
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    "metric {!r} already registered as {}".format(
                        name, family.kind
                    )
                )
            return family
        family = MetricFamily(
            name, help_text, kind, labels, buckets, max_series
        )
        self._families[name] = family
        return family

    def counter(self, name, help_text="", labels=(),
                max_series=DEFAULT_MAX_SERIES):
        """Register (or fetch) a counter family."""
        return self._register(name, help_text, "counter", labels, None,
                              max_series)

    def gauge(self, name, help_text="", labels=(),
              max_series=DEFAULT_MAX_SERIES):
        """Register (or fetch) a gauge family."""
        return self._register(name, help_text, "gauge", labels, None,
                              max_series)

    def histogram(self, name, help_text="", labels=(),
                  buckets=DEFAULT_TIME_BUCKETS,
                  max_series=DEFAULT_MAX_SERIES):
        """Register (or fetch) a histogram family with fixed buckets."""
        return self._register(name, help_text, "histogram", labels,
                              buckets, max_series)

    # -- collectors ------------------------------------------------------

    def add_collector(self, fn):
        """Register *fn* to be called before every snapshot/scrape.

        Collectors poll state that is too hot to instrument inline
        (the kernel loop, the lock table) and push it into gauges.
        """
        if self.enabled:
            self._collectors.append(fn)

    def collect(self):
        """Run every collector; a failing collector never fails a scrape."""
        for fn in self._collectors:
            try:
                fn()
            except Exception:  # noqa: BLE001 - observability must not raise
                pass

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self):
        """Deterministic JSON-able dict: family name → family snapshot.

        Families appear in registration order (the order is part of
        the snapshot-stability contract tested in
        ``tests/obs/test_exporters.py``).
        """
        self.collect()
        return {
            name: family.snapshot()
            for name, family in self._families.items()
        }

    def merge_snapshot(self, metrics):
        """Fold a :meth:`snapshot` dict (e.g. from a worker) into this.

        Counters and histogram buckets add; gauges take the incoming
        value.  Unknown families are created with the snapshot's
        declared type, labels and buckets, so a parent registry can
        start empty.  Histogram series with mismatched bucket edges
        are skipped rather than corrupted.
        """
        if not self.enabled or not metrics:
            return
        for name, doc in metrics.items():
            kind = doc.get("type")
            if kind not in _SERIES_TYPES:
                continue
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    name,
                    doc.get("help", ""),
                    kind,
                    doc.get("label_names", ()),
                    doc.get("buckets"),
                )
                self._families[name] = family
            if family.kind != kind:
                continue
            for entry in doc.get("series", ()):
                series = family.labels(*entry.get("labels", ()))
                if kind == "histogram":
                    if tuple(doc.get("buckets", ())) != family.buckets:
                        continue
                    series.merge(
                        entry.get("counts", ()),
                        entry.get("sum", 0.0),
                        entry.get("count", 0),
                    )
                elif kind == "counter":
                    series.inc(entry.get("value", 0))
                else:
                    series.set(entry.get("value", 0))
            family.dropped += doc.get("dropped", 0)

    def summary(self):
        """Compact summary (see :func:`summarize_snapshot`)."""
        return summarize_snapshot(self.snapshot())


def _flatten_label(name, label_names, values):
    if not label_names:
        return name
    return "{}{{{}}}".format(
        name,
        ",".join(
            "{}={}".format(k, v) for k, v in zip(label_names, values)
        ),
    )


def summarize_snapshot(metrics):
    """Compact manifest-friendly summary of a snapshot dict.

    Counters and gauges flatten to ``name{label=value}`` → number;
    histograms to ``{count, sum, mean, p50, p95}``.  This is the
    ``metrics`` block recorded in run manifests
    (:func:`repro.obs.manifest.build_manifest`).
    """
    summary = {"counters": {}, "gauges": {}, "histograms": {}}
    for name, doc in (metrics or {}).items():
        kind = doc.get("type")
        label_names = doc.get("label_names", ())
        for entry in doc.get("series", ()):
            key = _flatten_label(name, label_names, entry.get("labels", ()))
            if kind == "histogram":
                series = HistogramSeries(tuple(doc.get("buckets", ())))
                series.merge(
                    entry.get("counts", ()),
                    entry.get("sum", 0.0),
                    entry.get("count", 0),
                )
                count = series.count
                summary["histograms"][key] = {
                    "count": count,
                    "sum": round(series.sum, 6),
                    "mean": round(series.sum / count, 6) if count else None,
                    "p50": _finite(series.quantile(0.5)),
                    "p95": _finite(series.quantile(0.95)),
                }
            elif kind == "counter":
                summary["counters"][key] = entry.get("value", 0)
            else:
                summary["gauges"][key] = entry.get("value", 0)
    return summary


def _finite(value):
    if value is None or isinstance(value, float) and not math.isfinite(value):
        return None
    return value


# -- model wiring --------------------------------------------------------


class RunInstruments:
    """The per-run instrument bundle the simulation layers update.

    One instance is built per :class:`LockingGranularityModel` run when
    a registry is supplied; every layer holds pre-resolved series so a
    hot site costs one ``None`` check plus one method call.  The
    lock-wait histogram is labelled with the run's granularity
    (``ltot``), which is what makes merged sweep snapshots comparable
    *per granularity*.
    """

    def __init__(self, registry, params=None):
        self.registry = registry
        ltot = "" if params is None else str(params.ltot)
        protocol = "" if params is None else str(params.protocol)
        counter = registry.counter
        gauge = registry.gauge
        self.commits = counter(
            "repro_txn_commits_total", "Committed transactions."
        ).labels()
        self.restarts = counter(
            "repro_txn_restarts_total",
            "Lock-phase attempts beyond each transaction's first.",
        ).labels()
        self._aborts = counter(
            "repro_txn_aborts_total",
            "Aborted transaction attempts by cause "
            "(conflict, deadlock, wounded, no-waiting, fault).",
            labels=("cause",),
        )
        self.lock_requests = counter(
            "repro_lock_requests_total", "Lock requests issued."
        ).labels()
        self.lock_denials = counter(
            "repro_lock_denials_total", "Lock requests denied."
        ).labels()
        self.response = registry.histogram(
            "repro_txn_response_time",
            "Transaction response time (simulated time units).",
            labels=("ltot",),
        ).labels(ltot)
        self._lock_wait = registry.histogram(
            "repro_lock_wait_time",
            "Time spent blocked waiting for a lock, per granularity "
            "(simulated time units).",
            labels=("ltot", "protocol"),
        ).labels(ltot, protocol)
        self._granule_waits = counter(
            "repro_granule_waits_total",
            "Lock waits per granule (explicit engines only).",
            labels=("granule",),
            max_series=128,
        )
        self._granule_wait_time = counter(
            "repro_granule_wait_time_total",
            "Summed lock-wait time per granule (simulated time units).",
            labels=("granule",),
            max_series=128,
        )
        self._lock_events = counter(
            "repro_lockmgr_events_total",
            "Lock-manager transitions by event (grant, queue, promote, "
            "cancel, deny) and mode.",
            labels=("event", "mode"),
        )
        self.lock_holders = gauge(
            "repro_lock_holders", "Granted (owner, granule) pairs."
        ).labels()
        self.lock_waiters = gauge(
            "repro_lock_waiters", "Requests queued in the lock table."
        ).labels()
        self._faults = counter(
            "repro_fault_events_total",
            "Injected fault transitions by kind.",
            labels=("kind",),
        )
        self._messages = counter(
            "repro_net_messages_total",
            "Cluster messages sent, by message kind.",
            labels=("kind",),
        )
        self._messages_dropped = counter(
            "repro_net_messages_dropped_total",
            "Cluster messages dropped at a partition boundary, by kind.",
            labels=("kind",),
        )
        self._commit_events = counter(
            "repro_commit_events_total",
            "Distributed-commit outcomes by event "
            "(commit, abort, degraded, election).",
            labels=("event",),
        )
        self._commit_latency = registry.histogram(
            "repro_commit_latency",
            "Distributed commit decision latency, per protocol "
            "(simulated time units).",
            labels=("protocol",),
        ).labels("" if params is None else str(params.commit_protocol))
        # Per-transaction-class instruments (multi-class runs).  These
        # are *new* families labelled with txn_class — the pinned
        # single-class families above keep their names and labels, so
        # existing dashboards and tests are untouched; the class
        # families simply stay empty in single-class runs.
        self._class_commits = counter(
            "repro_class_commits_total",
            "Committed transactions by transaction class.",
            labels=("txn_class",),
        )
        self._class_restarts = counter(
            "repro_class_restarts_total",
            "Lock-phase attempts beyond the first, by transaction class.",
            labels=("txn_class",),
        )
        self._class_aborts = counter(
            "repro_class_aborts_total",
            "Aborted transaction attempts by transaction class and cause.",
            labels=("txn_class", "cause"),
        )
        self._class_response = registry.histogram(
            "repro_class_response_time",
            "Transaction response time by transaction class "
            "(simulated time units).",
            labels=("txn_class",),
        )
        self._class_lock_wait = registry.histogram(
            "repro_class_lock_wait_time",
            "Time spent blocked waiting for a lock, by transaction "
            "class (simulated time units).",
            labels=("txn_class",),
        )
        self._kernel_events = counter(
            "repro_kernel_events_total", "DES kernel events dispatched."
        ).labels()
        self.kernel_heap = gauge(
            "repro_kernel_heap_depth", "Scheduled events on the kernel heap."
        ).labels()
        self._pool_hit_rate = gauge(
            "repro_kernel_pool_hit_rate",
            "Fraction of Timeout/Event factory calls served from the "
            "free lists.",
        ).labels()

    # -- hooks called by the layers (single-branch guarded call sites) --

    def note_abort(self, cause):
        """One aborted attempt, by cause string."""
        self._aborts.labels(cause).inc()

    def note_class_abort(self, txn_class, cause):
        """One aborted attempt of a classed transaction."""
        self._class_aborts.labels(txn_class, cause).inc()

    def note_class_completion(self, txn_class, restarts, response):
        """A classed transaction committed (with its restart count)."""
        self._class_commits.labels(txn_class).inc()
        if restarts > 0:
            self._class_restarts.labels(txn_class).inc(restarts)
        self._class_response.labels(txn_class).observe(response)

    def observe_lock_wait(self, wait, granule=None, txn_class=None):
        """One completed lock wait of *wait* simulated time units."""
        self._lock_wait.observe(wait)
        if granule is not None:
            key = str(granule)
            self._granule_waits.labels(key).inc()
            self._granule_wait_time.labels(key).inc(wait)
        if txn_class is not None:
            self._class_lock_wait.labels(txn_class).observe(wait)

    def note_lock_event(self, event, mode):
        """A lock-manager transition (called by :class:`LockManager`)."""
        self._lock_events.labels(event, mode).inc()

    def note_fault(self, kind):
        """An injected fault transition (called by the injector)."""
        self._faults.labels(kind).inc()

    def note_message(self, kind):
        """One cluster message sent (called by :class:`Network`)."""
        self._messages.labels(kind).inc()

    def note_message_dropped(self, kind):
        """One message dropped at a partition boundary."""
        self._messages_dropped.labels(kind).inc()

    def note_commit_event(self, event):
        """A distributed-commit outcome (commit, abort, degraded, ...)."""
        self._commit_events.labels(event).inc()

    def observe_commit_latency(self, latency):
        """One distributed commit decided after *latency* time units."""
        self._commit_latency.observe(latency)

    # -- collectors (polled at snapshot time; never in the hot loop) ----

    def attach_kernel(self, env):
        """Poll kernel counters (dispatch count, heap, pool) on scrape."""

        def collect():
            self._kernel_events.set(env.events_dispatched)
            self.kernel_heap.set(env.heap_depth)
            pool = env.pool_stats()
            reused = pool["timeout_reused"] + pool["event_reused"]
            created = pool.get("timeout_created", 0) + pool.get(
                "event_created", 0
            )
            total = reused + created
            self._pool_hit_rate.set(reused / total if total else 0.0)

        self.registry.add_collector(collect)

    def attach_lock_table(self, manager):
        """Poll holder/waiter populations from the lock table on scrape."""
        table = manager.table

        def collect():
            holders = 0
            waiters = 0
            for granule in table.locked_granules():
                state = table.peek(granule)
                if state is not None:
                    holders += len(state.holders)
                    waiters += len(state.waiters)
            self.lock_holders.set(holders)
            self.lock_waiters.set(waiters)

        self.registry.add_collector(collect)


class SweepInstruments:
    """Harness-side instruments for one ``run_experiments`` call.

    Updated from the sweep driver (parent process): queue state, cell
    completions by source, cache traffic, worker heartbeat and journal
    lag.  Per-cell simulation metrics merge in separately via
    :meth:`MetricsRegistry.merge_snapshot`.
    """

    def __init__(self, registry):
        counter = registry.counter
        gauge = registry.gauge
        self._cells = counter(
            "repro_sweep_cells_total",
            "Sweep cells resolved, by source "
            "(run, shared, cache, analytic).",
            labels=("source",),
        )
        self.cells_done = gauge(
            "repro_sweep_cells_done", "Sweep cells resolved so far."
        ).labels()
        self.cells_pending = gauge(
            "repro_sweep_cells_pending", "Sweep cells not yet resolved."
        ).labels()
        self.cells_total = gauge(
            "repro_sweep_cells", "Total cells in the sweep."
        ).labels()
        self.queue_depth = gauge(
            "repro_sweep_queue_depth",
            "Unique jobs still owed to the global work queue.",
        ).labels()
        self.workers = gauge(
            "repro_sweep_workers", "Worker processes executing the queue."
        ).labels()
        self.occupancy = gauge(
            "repro_sweep_occupancy",
            "Fraction of worker capacity kept busy so far.",
        ).labels()
        self.heartbeat = gauge(
            "repro_sweep_last_cell_unixtime",
            "Wall-clock time the latest cell resolved (worker heartbeat).",
        ).labels()
        self.journal_lag = gauge(
            "repro_sweep_journal_lag_cells",
            "Cells resolved but not yet journalled (0 when in sync).",
        ).labels()
        self.cache_hits = counter(
            "repro_sweep_cache_hits_total", "Cells answered from the cache."
        ).labels()
        self.cache_misses = counter(
            "repro_sweep_cache_misses_total",
            "Cells that had to be simulated.",
        ).labels()

    def note_cell(self, source, done, pending, heartbeat):
        """One cell resolved from *source*; refresh progress gauges."""
        self._cells.labels(source).inc()
        self.cells_done.set(done)
        self.cells_pending.set(pending)
        self.heartbeat.set(heartbeat)
