"""Offline analysis of telemetry files: the ``repro report`` verb.

Turns a :class:`~repro.obs.sinks.TraceFile` into the quantities a
granularity analyst actually asks about — who blocked whom, which
granules are hot, how utilisation and the blocked population evolved —
as text (with unicode sparkline timelines) and, via
:mod:`repro.experiments.svg`, as SVG charts.
"""

import math
from collections import Counter

from repro.experiments.svg import SvgChart

#: Sparkline glyphs, lowest to highest.
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values, lo=None, hi=None):
    """Render *values* as a unicode sparkline string."""
    values = list(values)
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(values)
    top = len(_SPARK) - 1
    return "".join(
        _SPARK[min(top, int((value - lo) / span * top))] for value in values
    )


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def summarize_trace(tracefile, top=10):
    """Aggregate a telemetry file into a report-friendly dict.

    Keys: ``events``, ``counts`` (kind → n), ``completions``,
    ``mean_response``, ``max_response``, ``retries`` (lock requests
    beyond a transaction's first), ``aborts``, ``top_blockers``
    (transactions most often named as the blocker of a denied or
    queued request), ``hot_granules`` (granules most often waited on;
    empty for the probabilistic engine, which has no granule
    identity), ``samples``.
    """
    counts = Counter(record.kind for record in tracefile.records)
    blockers = Counter()
    granules = Counter()
    responses = []
    retries = 0
    for record in tracefile.records:
        details = record.details
        if record.kind in ("lock_deny", "block"):
            blocker = details.get("blocker")
            if blocker is not None:
                blockers[blocker] += 1
            granule = details.get("granule")
            if granule is not None:
                granules[granule] += 1
        elif record.kind == "complete":
            response = details.get("response")
            if response is not None:
                responses.append(response)
        elif record.kind == "lock_request" and details.get("attempt", 1) > 1:
            retries += 1
    return {
        "events": len(tracefile.records),
        "counts": dict(counts),
        "completions": counts.get("complete", 0),
        "mean_response": _mean(responses) if responses else None,
        "max_response": max(responses) if responses else None,
        "retries": retries,
        "aborts": counts.get("abort", 0),
        "top_blockers": blockers.most_common(top),
        "hot_granules": granules.most_common(top),
        "samples": len(tracefile.samples),
    }


def _percentile(sorted_values, q):
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def contention_diagnosis(tracefile, top=5, max_chain=8):
    """Diagnose *why* a run was slow from its lifecycle trace.

    Pairs every ``block`` with the same transaction's next resumption
    (``wake`` for preclaim, ``lock_promote`` for the table-backed
    protocols, ``abort`` when the waiter was killed instead) into wait
    episodes, then aggregates three views:

    ``granule_waits``
        Per-granule wait-time percentiles (nearest-rank p50/p95),
        sorted hottest-first, at most *top* granules.  Empty for the
        probabilistic engine and for preclaim, whose waits have no
        granule identity — those runs still populate ``wait_times``.
    ``abort_causes``
        ``abort`` events bucketed by their ``reason`` detail
        (``deadlock``, ``wounded``, ``denied``, fault retries...).
    ``chains``
        The longest blocking chains, reconstructed by following each
        transaction's most-frequent named blocker (``block`` /
        ``lock_deny`` details) transitively, cycle-safe and capped at
        *max_chain* hops.  A chain ``[7, 3, 1]`` reads "7 waited on 3,
        which waited on 1".
    """
    blocked_at = {}
    episodes = []  # (wait, granule-or-None)
    abort_causes = Counter()
    edges = {}  # waiter tid -> Counter of blocker tids
    for record in tracefile.records:
        kind, tid, details = record.kind, record.subject, record.details
        if kind == "block":
            blocked_at[tid] = (record.time, details.get("granule"))
            blocker = details.get("blocker")
            if blocker is not None:
                edges.setdefault(tid, Counter())[blocker] += 1
        elif kind == "lock_deny":
            blocker = details.get("blocker")
            if blocker is not None:
                edges.setdefault(tid, Counter())[blocker] += 1
        elif kind in ("wake", "lock_promote", "abort"):
            started = blocked_at.pop(tid, None)
            if started is not None:
                episodes.append((record.time - started[0], started[1]))
            if kind == "abort":
                abort_causes[details.get("reason", "unknown")] += 1

    by_granule = {}
    for wait, granule in episodes:
        if granule is not None:
            by_granule.setdefault(granule, []).append(wait)
    granule_waits = []
    for granule, waits in by_granule.items():
        waits.sort()
        granule_waits.append({
            "granule": granule,
            "waits": len(waits),
            "total_wait": sum(waits),
            "p50": _percentile(waits, 0.50),
            "p95": _percentile(waits, 0.95),
            "max": waits[-1],
        })
    granule_waits.sort(key=lambda row: -row["total_wait"])

    # Blocking chains: follow each waiter's dominant blocker edge.
    chains = []
    for start in edges:
        chain = [start]
        seen = {start}
        while chain[-1] in edges and len(chain) < max_chain:
            nxt = edges[chain[-1]].most_common(1)[0][0]
            if nxt in seen:
                break  # cycle (deadlock candidate) — stop, don't loop
            chain.append(nxt)
            seen.add(nxt)
        chains.append(chain)
    chains.sort(key=len, reverse=True)
    # Drop chains that are strict prefixes/suffixes of a longer one.
    kept = []
    for chain in chains:
        if not any(set(chain) <= set(other) for other in kept):
            kept.append(chain)

    all_waits = sorted(wait for wait, _granule in episodes)
    return {
        "wait_episodes": len(all_waits),
        "wait_times": {
            "total": sum(all_waits),
            "p50": _percentile(all_waits, 0.50),
            "p95": _percentile(all_waits, 0.95),
            "max": all_waits[-1] if all_waits else None,
        },
        "granule_waits": granule_waits[:top],
        "abort_causes": dict(abort_causes),
        "chains": kept[:top],
        "longest_chain": len(kept[0]) if kept else 0,
    }


def format_diagnosis(diagnosis):
    """Text rendering of a :func:`contention_diagnosis` dict."""
    lines = ["Contention diagnosis:"]
    episodes = diagnosis["wait_episodes"]
    if not episodes:
        lines.append("  no lock waits recorded — the run was conflict-free")
        return "\n".join(lines)
    times = diagnosis["wait_times"]
    lines.append(
        "  lock waits: {}   total {:.4g}   p50 {:.4g}   p95 {:.4g}   "
        "max {:.4g}".format(
            episodes, times["total"], times["p50"], times["p95"], times["max"]
        )
    )
    if diagnosis["granule_waits"]:
        lines.append("  hottest granules by time spent waiting:")
        for row in diagnosis["granule_waits"]:
            lines.append(
                "    granule {:<6} {:3d} waits  total {:>8.4g}  "
                "p50 {:>8.4g}  p95 {:>8.4g}".format(
                    row["granule"], row["waits"], row["total_wait"],
                    row["p50"], row["p95"],
                )
            )
    if diagnosis["abort_causes"]:
        lines.append(
            "  aborts by cause: "
            + "  ".join(
                "{}={}".format(cause, count)
                for cause, count in sorted(diagnosis["abort_causes"].items())
            )
        )
    if diagnosis["longest_chain"] > 1:
        lines.append("  longest blocking chains (waiter -> ... -> holder):")
        for chain in diagnosis["chains"]:
            if len(chain) < 2:
                continue
            lines.append(
                "    " + " -> ".join("txn#{}".format(tid) for tid in chain)
            )
    return "\n".join(lines)


def report_json(tracefile, top=10):
    """The full report as one JSON-serialisable document.

    This is the machine-readable twin of :func:`format_report` —
    ``repro-locking report --json`` emits it, and the metrics
    exporters reuse the same shape for their snapshot context.
    """
    summary = summarize_trace(tracefile, top=top)
    return {
        "header": dict(tracefile.header),
        "summary": summary,
        "diagnosis": contention_diagnosis(tracefile, top=top),
        "timeline": {
            "samples": len(tracefile.samples),
            "t_first": tracefile.samples[0]["t"] if tracefile.samples else None,
            "t_last": tracefile.samples[-1]["t"] if tracefile.samples else None,
        },
    }


def _timeline_rows(samples):
    """(label, values) pairs for the timeline signals of *samples*."""
    return [
        ("cpu util", [_mean(s.get("cpu_util", ())) for s in samples]),
        ("disk util", [_mean(s.get("disk_util", ())) for s in samples]),
        ("blocked", [s.get("blocked", 0) for s in samples]),
        ("active", [s.get("active", 0) for s in samples]),
        ("locks held", [s.get("locks_held", 0) for s in samples]),
    ]


def format_timeline(samples, width=60):
    """Text sparkline timeline of the sampled signals."""
    if not samples:
        return "(no time-series samples in this telemetry file)"
    # Down-sample to at most *width* points by striding.
    stride = max(1, len(samples) // width)
    windowed = samples[::stride]
    lines = [
        "Utilisation timeline ({} samples, t={:g}..{:g}):".format(
            len(samples), samples[0]["t"], samples[-1]["t"]
        )
    ]
    for label, values in _timeline_rows(windowed):
        lo, hi = min(values), max(values)
        lines.append(
            "  {:<10s} {}  [{:.3g} .. {:.3g}]".format(
                label, sparkline(values), lo, hi
            )
        )
    return "\n".join(lines)


def format_report(tracefile, top=10):
    """The full text report for one telemetry file."""
    summary = summarize_trace(tracefile, top=top)
    header = tracefile.header
    lines = ["Telemetry report"]
    if header.get("params"):
        params = header["params"]
        lines.append(
            "  run: ltot={} npros={} ntrans={} seed={} "
            "engine={} protocol={}".format(
                params.get("ltot"), params.get("npros"),
                params.get("ntrans"), params.get("seed"),
                params.get("conflict_engine"), params.get("protocol"),
            )
        )
    lines.append("  events: {}".format(summary["events"]))
    lines.append(
        "  completions: {}   retries: {}   aborts: {}".format(
            summary["completions"], summary["retries"], summary["aborts"]
        )
    )
    if summary["mean_response"] is not None:
        lines.append(
            "  response: mean {:.4g}, max {:.4g}".format(
                summary["mean_response"], summary["max_response"]
            )
        )
    lines.append("  events by kind:")
    for kind in sorted(summary["counts"]):
        lines.append("    {:<14s} {}".format(kind, summary["counts"][kind]))
    if summary["top_blockers"]:
        lines.append("  top blockers (txn: times blocking others):")
        for tid, count in summary["top_blockers"]:
            lines.append("    txn#{:<8d} {}".format(tid, count))
    if summary["hot_granules"]:
        lines.append("  lock hot-spots (granule: waits):")
        for granule, count in summary["hot_granules"]:
            lines.append("    granule {:<6} {}".format(granule, count))
    lines.append("")
    lines.append(format_diagnosis(contention_diagnosis(tracefile, top=top)))
    lines.append("")
    lines.append(format_timeline(tracefile.samples))
    return "\n".join(lines)


def timeline_chart(tracefile, title=None):
    """An :class:`SvgChart` of the sampled utilisation timeline."""
    chart = SvgChart(
        title or "Utilisation timeline",
        x_label="simulated time",
        y_label="utilisation / population",
        log_x=False,
    )
    samples = tracefile.samples
    times = [s["t"] for s in samples]
    for label, values in _timeline_rows(samples):
        chart.add_series(label, list(zip(times, values)))
    return chart


def save_report_chart(tracefile, path, title=None):
    """Write the utilisation timeline SVG to *path*; returns the path."""
    return timeline_chart(tracefile, title=title).save(path)
