"""Offline analysis of telemetry files: the ``repro report`` verb.

Turns a :class:`~repro.obs.sinks.TraceFile` into the quantities a
granularity analyst actually asks about — who blocked whom, which
granules are hot, how utilisation and the blocked population evolved —
as text (with unicode sparkline timelines) and, via
:mod:`repro.experiments.svg`, as SVG charts.
"""

from collections import Counter

from repro.experiments.svg import SvgChart

#: Sparkline glyphs, lowest to highest.
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values, lo=None, hi=None):
    """Render *values* as a unicode sparkline string."""
    values = list(values)
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(values)
    top = len(_SPARK) - 1
    return "".join(
        _SPARK[min(top, int((value - lo) / span * top))] for value in values
    )


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def summarize_trace(tracefile, top=10):
    """Aggregate a telemetry file into a report-friendly dict.

    Keys: ``events``, ``counts`` (kind → n), ``completions``,
    ``mean_response``, ``max_response``, ``retries`` (lock requests
    beyond a transaction's first), ``aborts``, ``top_blockers``
    (transactions most often named as the blocker of a denied or
    queued request), ``hot_granules`` (granules most often waited on;
    empty for the probabilistic engine, which has no granule
    identity), ``samples``.
    """
    counts = Counter(record.kind for record in tracefile.records)
    blockers = Counter()
    granules = Counter()
    responses = []
    retries = 0
    for record in tracefile.records:
        details = record.details
        if record.kind in ("lock_deny", "block"):
            blocker = details.get("blocker")
            if blocker is not None:
                blockers[blocker] += 1
            granule = details.get("granule")
            if granule is not None:
                granules[granule] += 1
        elif record.kind == "complete":
            response = details.get("response")
            if response is not None:
                responses.append(response)
        elif record.kind == "lock_request" and details.get("attempt", 1) > 1:
            retries += 1
    return {
        "events": len(tracefile.records),
        "counts": dict(counts),
        "completions": counts.get("complete", 0),
        "mean_response": _mean(responses) if responses else None,
        "max_response": max(responses) if responses else None,
        "retries": retries,
        "aborts": counts.get("abort", 0),
        "top_blockers": blockers.most_common(top),
        "hot_granules": granules.most_common(top),
        "samples": len(tracefile.samples),
    }


def _timeline_rows(samples):
    """(label, values) pairs for the timeline signals of *samples*."""
    return [
        ("cpu util", [_mean(s.get("cpu_util", ())) for s in samples]),
        ("disk util", [_mean(s.get("disk_util", ())) for s in samples]),
        ("blocked", [s.get("blocked", 0) for s in samples]),
        ("active", [s.get("active", 0) for s in samples]),
        ("locks held", [s.get("locks_held", 0) for s in samples]),
    ]


def format_timeline(samples, width=60):
    """Text sparkline timeline of the sampled signals."""
    if not samples:
        return "(no time-series samples in this telemetry file)"
    # Down-sample to at most *width* points by striding.
    stride = max(1, len(samples) // width)
    windowed = samples[::stride]
    lines = [
        "Utilisation timeline ({} samples, t={:g}..{:g}):".format(
            len(samples), samples[0]["t"], samples[-1]["t"]
        )
    ]
    for label, values in _timeline_rows(windowed):
        lo, hi = min(values), max(values)
        lines.append(
            "  {:<10s} {}  [{:.3g} .. {:.3g}]".format(
                label, sparkline(values), lo, hi
            )
        )
    return "\n".join(lines)


def format_report(tracefile, top=10):
    """The full text report for one telemetry file."""
    summary = summarize_trace(tracefile, top=top)
    header = tracefile.header
    lines = ["Telemetry report"]
    if header.get("params"):
        params = header["params"]
        lines.append(
            "  run: ltot={} npros={} ntrans={} seed={} "
            "engine={} protocol={}".format(
                params.get("ltot"), params.get("npros"),
                params.get("ntrans"), params.get("seed"),
                params.get("conflict_engine"), params.get("protocol"),
            )
        )
    lines.append("  events: {}".format(summary["events"]))
    lines.append(
        "  completions: {}   retries: {}   aborts: {}".format(
            summary["completions"], summary["retries"], summary["aborts"]
        )
    )
    if summary["mean_response"] is not None:
        lines.append(
            "  response: mean {:.4g}, max {:.4g}".format(
                summary["mean_response"], summary["max_response"]
            )
        )
    lines.append("  events by kind:")
    for kind in sorted(summary["counts"]):
        lines.append("    {:<14s} {}".format(kind, summary["counts"][kind]))
    if summary["top_blockers"]:
        lines.append("  top blockers (txn: times blocking others):")
        for tid, count in summary["top_blockers"]:
            lines.append("    txn#{:<8d} {}".format(tid, count))
    if summary["hot_granules"]:
        lines.append("  lock hot-spots (granule: waits):")
        for granule, count in summary["hot_granules"]:
            lines.append("    granule {:<6} {}".format(granule, count))
    lines.append("")
    lines.append(format_timeline(tracefile.samples))
    return "\n".join(lines)


def timeline_chart(tracefile, title=None):
    """An :class:`SvgChart` of the sampled utilisation timeline."""
    chart = SvgChart(
        title or "Utilisation timeline",
        x_label="simulated time",
        y_label="utilisation / population",
        log_x=False,
    )
    samples = tracefile.samples
    times = [s["t"] for s in samples]
    for label, values in _timeline_rows(samples):
        chart.add_series(label, list(zip(times, values)))
    return chart


def save_report_chart(tracefile, path, title=None):
    """Write the utilisation timeline SVG to *path*; returns the path."""
    return timeline_chart(tracefile, title=title).save(path)
