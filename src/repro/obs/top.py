"""``repro-locking top``: a live terminal dashboard for running sweeps.

The monitor is a pure *reader*: it tails the sweep's crash-safe
journal (cells done / pruned / pending) and, when present, the
periodic metrics snapshot file written next to it
(``<journal>.metrics.json`` by default) for the live counters — events
dispatched, worker occupancy, queue depth, lock-wait quantiles, top
contended granules, abort causes.  It never touches the sweep process,
so attaching or detaching it is always safe.

Rendering is split from looping for testability:
:func:`render_frame` is a pure function of ``(journal state, snapshot
state, derived rates)`` returning the frame string; :func:`run_top`
owns the refresh loop, the ANSI clear-and-home redraw and the
rate/ETA estimation.
"""

import json
import math
from time import sleep
from time import time as wall_time

from repro.obs.exporters import read_snapshot

#: Clear screen + cursor home (ANSI); used when refreshing in place.
_CLEAR = "\x1b[2J\x1b[H"

#: Exponential smoothing factor for the cells/second rate estimate.
_RATE_ALPHA = 0.3


def default_snapshot_path(journal_path):
    """Where a metrics-enabled sweep writes snapshots for this journal."""
    return "{}.metrics.json".format(journal_path)


def read_journal(path):
    """Tolerantly parse a sweep journal into a progress dict.

    Returns ``{"sweep", "label", "cells", "done", "analytic",
    "finished"}`` (``cells`` may be ``None`` for a missing/foreign
    header).  Torn trailing lines — the normal state of a journal
    being appended to — are skipped, exactly as the resume loader
    does.
    """
    state = {
        "sweep": None,
        "label": None,
        "cells": None,
        "done": 0,
        "analytic": 0,
        "finished": False,
    }
    try:
        with open(path) as handle:
            lines = handle.read().splitlines()
    except OSError:
        return state
    for index, line in enumerate(lines):
        try:
            entry = json.loads(line)
        except ValueError:
            continue  # torn mid-append write
        if not isinstance(entry, dict):
            continue
        if index == 0 and "sweep" in entry:
            state["sweep"] = entry.get("sweep")
            state["label"] = entry.get("label")
            state["cells"] = entry.get("cells")
            continue
        if "done" in entry:
            state["done"] += 1
            if entry.get("provenance") == "analytic":
                state["analytic"] += 1
        if entry.get("finished"):
            state["finished"] = True
    return state


# -- snapshot accessors --------------------------------------------------


def _series_value(metrics, name, labels=None):
    """A counter/gauge sample from a snapshot dict, or ``None``."""
    doc = (metrics or {}).get(name)
    if doc is None:
        return None
    for entry in doc.get("series", ()):
        if labels is None or entry.get("labels") == list(labels):
            return entry.get("value")
    return None


def _label_totals(metrics, name, label_index=0):
    """Sum a labelled counter family by one label position."""
    doc = (metrics or {}).get(name)
    totals = {}
    if doc is None:
        return totals
    for entry in doc.get("series", ()):
        labels = entry.get("labels", ())
        key = labels[label_index] if len(labels) > label_index else ""
        totals[key] = totals.get(key, 0) + entry.get("value", 0)
    return totals


def _wait_quantiles(metrics):
    """(count, p50, p95) of the merged lock-wait histogram, or None."""
    doc = (metrics or {}).get("repro_lock_wait_time")
    if doc is None:
        return None
    edges = doc.get("buckets", ())
    counts = None
    total_sum = 0.0
    total_count = 0
    for entry in doc.get("series", ()):
        series_counts = entry.get("counts", ())
        if counts is None:
            counts = list(series_counts)
        else:
            for i, c in enumerate(series_counts[: len(counts)]):
                counts[i] += c
        total_sum += entry.get("sum", 0.0)
        total_count += entry.get("count", 0)
    if not total_count or counts is None:
        return None
    from repro.obs.metrics import HistogramSeries

    merged = HistogramSeries(tuple(edges))
    merged.merge(counts, total_sum, total_count)
    return total_count, merged.quantile(0.5), merged.quantile(0.95)


def _bar(fraction, width=30):
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _fmt_eta(seconds):
    if seconds is None or not math.isfinite(seconds):
        return "--"
    seconds = int(seconds)
    if seconds >= 3600:
        return "{}h{:02d}m".format(seconds // 3600, seconds % 3600 // 60)
    if seconds >= 60:
        return "{}m{:02d}s".format(seconds // 60, seconds % 60)
    return "{}s".format(seconds)


def render_frame(
    journal,
    metrics=None,
    rate=None,
    events_per_second=None,
    snapshot_age=None,
    top_granules=5,
):
    """One dashboard frame as a plain string (no ANSI, pure function).

    Parameters
    ----------
    journal:
        A :func:`read_journal` dict.
    metrics:
        The ``metrics`` mapping of a snapshot document (or ``None``
        when the sweep runs without ``--metrics``).
    rate:
        Smoothed cells/second estimate (drives the ETA line).
    events_per_second:
        Kernel event throughput derived from successive snapshots.
    snapshot_age:
        Wall seconds since the snapshot file changed (staleness tag).
    """
    lines = []
    label = journal.get("label") or "sweep"
    sweep = journal.get("sweep")
    title = "repro-locking top — {}".format(label)
    if sweep:
        title += "  (sweep {})".format(sweep[:8])
    lines.append(title)

    cells = journal.get("cells")
    done = journal.get("done", 0)
    analytic = journal.get("analytic", 0)
    if cells:
        pending = max(0, cells - done)
        fraction = done / cells
        eta = None
        if journal.get("finished"):
            eta = 0.0
        elif rate:
            eta = pending / rate
        lines.append(
            "cells  {} {:>4d}/{:<4d} ({:.0%})  pruned {}  pending {}  "
            "ETA {}".format(
                _bar(fraction), done, cells, fraction, analytic, pending,
                _fmt_eta(eta),
            )
        )
    else:
        lines.append("cells  (no journal header yet — is the sweep running?)")
    if journal.get("finished"):
        lines.append("state  FINISHED (clean journal footer present)")

    if metrics is None:
        lines.append("metrics  (no snapshot file — run with --metrics)")
        return "\n".join(lines) + "\n"

    stale = ""
    if snapshot_age is not None and snapshot_age > 5.0:
        stale = "  [snapshot {}s old]".format(int(snapshot_age))
    occupancy = _series_value(metrics, "repro_sweep_occupancy", ())
    workers = _series_value(metrics, "repro_sweep_workers", ())
    queue_depth = _series_value(metrics, "repro_sweep_queue_depth", ())
    parts = []
    if events_per_second is not None:
        parts.append("{:,.0f} ev/s".format(events_per_second))
    if workers:
        parts.append("{:.0f} workers".format(workers))
    if occupancy is not None:
        parts.append("occupancy {:.0%}".format(occupancy))
    if queue_depth is not None:
        parts.append("queue {:.0f}".format(queue_depth))
    if parts:
        lines.append("sweep  " + "   ".join(parts) + stale)

    commits = _series_value(metrics, "repro_txn_commits_total", ())
    aborts = _label_totals(metrics, "repro_txn_aborts_total")
    if commits is not None:
        abort_text = (
            "  aborts " + " ".join(
                "{}={:.0f}".format(cause, n)
                for cause, n in sorted(aborts.items())
            )
            if aborts
            else ""
        )
        lines.append("txns   {:,.0f} commits{}".format(commits, abort_text))

    waits = _wait_quantiles(metrics)
    if waits is not None:
        count, p50, p95 = waits
        lines.append(
            "waits  {:,d} lock waits   p50 ~{:g}   p95 ~{:g} "
            "(sim time, bucket upper bounds)".format(count, p50, p95)
        )

    granules = _label_totals(metrics, "repro_granule_waits_total")
    granules.pop("_other", None)
    if granules:
        hottest = sorted(
            granules.items(), key=lambda kv: -kv[1]
        )[:top_granules]
        lines.append(
            "hot    " + "  ".join(
                "g{}:{:.0f}".format(granule, n) for granule, n in hottest
            )
        )
    return "\n".join(lines) + "\n"


class TopMonitor:
    """Stateful rate/ETA estimation across frames of one journal."""

    def __init__(self, journal_path, snapshot_path=None):
        self.journal_path = str(journal_path)
        self.snapshot_path = (
            str(snapshot_path)
            if snapshot_path is not None
            else default_snapshot_path(journal_path)
        )
        self._last_done = None
        self._last_time = None
        self._last_events = None
        self._rate = None
        self._events_per_second = None

    def frame(self, now=None):
        """Read journal + snapshot and render the current frame."""
        now = wall_time() if now is None else now
        journal = read_journal(self.journal_path)
        document = read_snapshot(self.snapshot_path)
        metrics = document.get("metrics") if document else None

        done = journal.get("done", 0)
        if self._last_time is not None and now > self._last_time:
            delta = now - self._last_time
            instant = max(0, done - (self._last_done or 0)) / delta
            self._rate = (
                instant
                if self._rate is None
                else _RATE_ALPHA * instant + (1 - _RATE_ALPHA) * self._rate
            )
            events = _series_value(metrics, "repro_kernel_events_total", ())
            if events is not None and self._last_events is not None:
                self._events_per_second = max(
                    0.0, events - self._last_events
                ) / delta
            if events is not None:
                self._last_events = events
        elif metrics is not None:
            self._last_events = _series_value(
                metrics, "repro_kernel_events_total", ()
            )
        self._last_done = done
        self._last_time = now

        snapshot_age = None
        if document is not None:
            generated = document.get("generated_unixtime")
            if generated is not None:
                snapshot_age = max(0.0, now - generated)
        return render_frame(
            journal,
            metrics,
            rate=self._rate,
            events_per_second=self._events_per_second,
            snapshot_age=snapshot_age,
        ), journal


def run_top(
    journal_path,
    snapshot_path=None,
    interval=1.0,
    frames=None,
    once=False,
    follow=False,
    stream=None,
):
    """The ``repro-locking top`` loop.  Returns the last journal state.

    Parameters
    ----------
    journal_path / snapshot_path:
        The sweep journal to tail and its metrics snapshot file
        (default: ``<journal>.metrics.json``).
    interval:
        Refresh period in wall seconds.
    frames:
        Stop after this many frames (``None`` = until finished).
    once:
        Render a single frame and return (no clearing) — the
        scriptable mode CI uses.
    follow:
        Keep refreshing even after the journal records a clean finish
        (default stops on the ``finished`` marker).
    stream:
        Output stream (default ``sys.stdout``); frames are prefixed
        with an ANSI clear only when the stream is a TTY.
    """
    import sys

    stream = sys.stdout if stream is None else stream
    monitor = TopMonitor(journal_path, snapshot_path)
    use_ansi = not once and hasattr(stream, "isatty") and stream.isatty()
    rendered = 0
    journal = {}
    while True:
        text, journal = monitor.frame()
        if use_ansi:
            stream.write(_CLEAR)
        stream.write(text)
        stream.flush()
        rendered += 1
        if once or (frames is not None and rendered >= frames):
            break
        if journal.get("finished") and not follow:
            break
        sleep(interval)
    return journal
