"""Run provenance: what produced a result, recorded next to it.

A manifest answers, months later, "which code and which inputs made
this number?": the content-address of the parameters (the same hash
the result cache uses), the seed, the simulator's
``MODEL_VERSION``, the git commit of the working tree, interpreter
and platform, wall-clock cost, and whether the result came from the
cache or from a fresh simulation.

Everything is best-effort: provenance must never be able to fail a
run, so the git lookup degrades to ``None`` outside a repository and
manifest writes swallow I/O errors (mirroring the result cache's
contract).
"""

import json
import os
import platform
import subprocess
import sys
import time

#: Manifest file layout version.
#:
#: 2: added the optional ``metrics`` block (final counter snapshot +
#:    histogram summaries of the run's live metrics).  Schema-1
#:    manifests (no block) are still loaded.
MANIFEST_SCHEMA = 2

#: Schema versions :func:`load_manifest` accepts.
_COMPATIBLE_SCHEMAS = frozenset({1, 2})

#: Memoised git HEAD (one lookup per process; ``False`` = not probed).
_GIT_SHA = False


def git_sha():
    """The working tree's HEAD commit, or ``None`` when unavailable."""
    global _GIT_SHA
    if _GIT_SHA is False:
        try:
            _GIT_SHA = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            ).stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA = None
    return _GIT_SHA


def build_manifest(
    params,
    cache_hit=False,
    wall_seconds=None,
    model_version=None,
    metrics=None,
    **extra,
):
    """A provenance dict for one run of *params*.

    Parameters
    ----------
    params:
        The run's :class:`~repro.core.parameters.SimulationParameters`.
    cache_hit:
        Whether the result was answered from the cache.
    wall_seconds:
        Wall-clock cost of producing the result (simulation time for a
        miss; lookup cost is negligible and may be ``None`` for hits).
    model_version:
        Simulator version; defaults to the current
        :data:`repro.core.model.MODEL_VERSION`.
    metrics:
        Optional live-metrics summary for the run (the
        :func:`repro.obs.metrics.summarize_snapshot` shape: flattened
        counters/gauges plus per-histogram count/sum/mean/p50/p95).
        Omitted from the manifest when ``None`` so un-instrumented
        runs keep their schema-1-shaped payload.
    extra:
        Additional fields merged into the manifest (e.g. ``exhibit``).
    """
    from repro.core.model import MODEL_VERSION
    from repro.experiments.cache import cache_key
    from repro.policies import active_policies

    if model_version is None:
        model_version = MODEL_VERSION
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "params_hash": cache_key(params, model_version),
        "seed": params.seed,
        "model_version": model_version,
        "policies": active_policies(params),
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "created_unix": time.time(),
        "cache_hit": bool(cache_hit),
        "wall_seconds": wall_seconds,
    }
    if metrics is not None:
        manifest["metrics"] = metrics
    manifest.update(extra)
    return manifest


def write_manifest(path, manifest):
    """Write *manifest* as JSON at *path*; best-effort (None on error)."""
    try:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
        return path
    except OSError:
        return None


def load_manifest(path):
    """Read a manifest back, or ``None`` when missing/corrupt.

    Loading is version-tolerant: every schema in
    :data:`_COMPATIBLE_SCHEMAS` is accepted (older manifests simply
    lack the newer optional fields); unknown schemas return ``None``.
    """
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict):
        return None
    if document.get("schema") not in _COMPATIBLE_SCHEMAS:
        return None
    return document
