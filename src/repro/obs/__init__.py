"""Observability: structured trace export, time-series telemetry,
run provenance, and offline reporting.

The paper's conclusions rest on internal, time-resolved quantities —
lock waits, blocking populations, per-processor utilisation — that
end-of-run aggregates cannot explain.  This package turns every run
into an explainable artifact:

* :mod:`repro.obs.sinks` — the pluggable trace-sink protocol, the
  JSONL export backend, and the schema-versioned replay loader;
* :mod:`repro.obs.timeseries` — a sampled recorder of machine and
  population state;
* :mod:`repro.obs.telemetry` — the bundle a model run carries;
* :mod:`repro.obs.manifest` — run provenance records;
* :mod:`repro.obs.report` — the ``repro report`` analysis;
* :mod:`repro.obs.metrics` — the live metrics registry
  (counters/gauges/histograms instrumenting kernel, lock manager,
  transaction model and sweep harness);
* :mod:`repro.obs.exporters` — Prometheus text / JSON snapshot
  exporters and the ``--metrics-port`` HTTP endpoint;
* :mod:`repro.obs.top` — the ``repro-locking top`` live sweep monitor.

Quick tour::

    from repro.core.model import LockingGranularityModel
    from repro.core.parameters import SimulationParameters
    from repro.obs import JsonlTraceSink, Telemetry, load_trace

    telemetry = Telemetry(
        sink=JsonlTraceSink("run.jsonl"), sample_interval=5.0
    )
    params = SimulationParameters(tmax=200.0)
    result = LockingGranularityModel(params, telemetry=telemetry).run()
    telemetry.finish()

    replay = load_trace("run.jsonl")
    assert len(replay.records) > 0
"""

from repro.obs.exporters import (
    MetricsServer,
    SnapshotWriter,
    json_snapshot,
    parse_prometheus_text,
    prometheus_text,
    read_snapshot,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_sha,
    load_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    MetricsRegistry,
    RunInstruments,
    SweepInstruments,
    summarize_snapshot,
)
from repro.obs.report import (
    contention_diagnosis,
    format_diagnosis,
    format_report,
    format_timeline,
    report_json,
    save_report_chart,
    summarize_trace,
    timeline_chart,
)
from repro.obs.sinks import (
    TRACE_SCHEMA,
    JsonlTraceSink,
    MultiSink,
    RingBufferSink,
    TraceFile,
    TraceSchemaError,
    TraceSink,
    load_trace,
)
from repro.obs.telemetry import Telemetry
from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.top import TopMonitor, read_journal, render_frame, run_top

__all__ = [
    "MANIFEST_SCHEMA",
    "TRACE_SCHEMA",
    "JsonlTraceSink",
    "MetricsRegistry",
    "MetricsServer",
    "MultiSink",
    "RingBufferSink",
    "RunInstruments",
    "SnapshotWriter",
    "SweepInstruments",
    "Telemetry",
    "TimeSeriesRecorder",
    "TopMonitor",
    "TraceFile",
    "TraceSchemaError",
    "TraceSink",
    "build_manifest",
    "contention_diagnosis",
    "format_diagnosis",
    "format_report",
    "format_timeline",
    "git_sha",
    "json_snapshot",
    "load_manifest",
    "load_trace",
    "parse_prometheus_text",
    "prometheus_text",
    "read_journal",
    "read_snapshot",
    "render_frame",
    "report_json",
    "run_top",
    "summarize_snapshot",
    "summarize_trace",
    "timeline_chart",
    "write_manifest",
]
