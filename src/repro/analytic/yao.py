"""Yao's formula for the expected number of granules touched.

Yao (CACM 1977) gives the expected number of blocks referenced when
``nu`` records are chosen at random, without replacement, from a file
of ``dbsize`` records stored in blocks of ``m`` records each.  For a
granule (block) of size ``m`` the probability it is *not* touched is::

    P(untouched) = C(dbsize - m, nu) / C(dbsize, nu)

so with ``ltot`` granules the expectation is::

    LU = ltot * (1 - C(dbsize - m, nu) / C(dbsize, nu))

This is exactly the paper's *random placement* lock-count formula
(section 3.5).  The implementation uses log-gamma so it is stable for
databases of any size, and handles ``dbsize`` not divisible by
``ltot`` by mixing the two granule sizes ``floor`` and ``ceil`` that a
balanced split produces.
"""

import math


def _log_choose(n, k):
    """log C(n, k) via lgamma; requires 0 <= k <= n."""
    if k < 0 or k > n:
        return -math.inf
    return (
        math.lgamma(n + 1.0) - math.lgamma(k + 1.0) - math.lgamma(n - k + 1.0)
    )


def _prob_granule_untouched(dbsize, granule_size, nu):
    """P(no selected entity falls in a specific granule of given size)."""
    if nu > dbsize - granule_size:
        return 0.0
    log_p = _log_choose(dbsize - granule_size, nu) - _log_choose(dbsize, nu)
    return math.exp(log_p)


def expected_granules_touched(dbsize, ltot, nu):
    """Expected granules hit by ``nu`` random entities (Yao's formula).

    Parameters
    ----------
    dbsize:
        Total entities in the database.
    ltot:
        Number of granules the database is split into (balanced split;
        sizes differ by at most one when not divisible).
    nu:
        Number of distinct entities the transaction touches.

    Returns
    -------
    float
        Expected number of granules touched, in ``[min(1, nu),
        min(nu, ltot)]``.
    """
    if not 1 <= ltot <= dbsize:
        raise ValueError("ltot must be in [1, dbsize]")
    if nu < 0 or nu > dbsize:
        raise ValueError("nu must be in [0, dbsize]")
    if nu == 0:
        return 0.0
    small = dbsize // ltot
    n_large = dbsize - small * ltot  # granules of size small + 1
    n_small = ltot - n_large
    expected = 0.0
    if n_small:
        expected += n_small * (1.0 - _prob_granule_untouched(dbsize, small, nu))
    if n_large:
        expected += n_large * (1.0 - _prob_granule_untouched(dbsize, small + 1, nu))
    # The exact expectation always lies between the best-placement
    # count (entities packed into the fewest granules) and the
    # worst-placement count (one granule per entity); clamp away the
    # ~1e-8 relative drift the log-gamma evaluation can introduce.
    lower = math.ceil(nu * ltot / dbsize)
    upper = min(nu, ltot)
    return min(max(expected, float(lower)), float(upper))


def yao_locks(dbsize, ltot, nu):
    """Alias of :func:`expected_granules_touched` under the paper's name.

    This is ``LUi`` for the *random placement* strategy: the expected
    number of locks a transaction accessing ``nu`` entities must set.
    """
    return expected_granules_touched(dbsize, ltot, nu)
