"""Analytic fast path: mean-value model of the locking system.

Predicts, for one :class:`~repro.core.parameters.SimulationParameters`
configuration, the steady-state outputs the simulator would measure —
``{throughput, blocking_prob, lock_overhead_frac, effective_mpl,
response_time}`` — in microseconds instead of seconds, in the spirit of
Thomasian's analytic treatment of lock contention.  The sweep harness
uses these predictions to prune grid cells (see
``accelerator="analytic"`` in :mod:`repro.experiments.runner`), and
:mod:`repro.experiments.crossval` quantifies their error against the
simulator.

Model structure (derivation in DESIGN.md §9)
--------------------------------------------
The closed system of ``ntrans`` terminals cycles through lock
acquisition, (possibly) blocking, and fork-join execution.  A damped
fixed point couples three sub-models:

* **Markov contention step** — the Ries–Stonebraker interval model
  seen by a fresh request: with ``m`` transactions executing, each
  holding ``L_h`` locks (size-biased transaction length, because a
  random observer sees long holders more often), a request is denied
  with probability ``p ≈ γ·m·L_h/ltot``, capped at the serialization
  ceiling ``(N−1)/N``.  Geometric retries give ``A = 1/(1−p)``
  attempts per completion.
* **Lock-overhead station** — each attempt pays Yao/placement lock
  work ``L_req`` fanned out across ``npros`` nodes at preemptive
  priority; its response inflates by ``1/(1−u_lock)`` and it steals
  the same factor from transaction service below it.
* **Execution sub-network** — Schweitzer–Bard approximate MVA over
  the per-node disk→CPU stations at (non-integer) population ``m``,
  times a small fork-join join penalty.

The cycle time ``C = A·O + (A−1)·W + R_exec`` closes the loop:
``X = ntrans/C`` and ``m = X·R_exec`` (Little).  Concurrency-control
semantics change only the cycle accounting: blocking preclaim re-pays
``O`` every attempt and waits ``W`` per denial; no-waiting restarts
pay a backoff instead of a blocked wait; incremental 2PL pays ``O``
once and sees contention damped by partial (growing-phase) lock
holdings.

Calibration constants were fit once against the committed
``results/fig2.json`` / ``results/ablation_protocol.json`` simulation
curves and are deliberately frozen: the model must stay an
*independent* predictor for cross-validation to mean anything.
"""

import math
from dataclasses import dataclass

from repro.analytic.granularity import locks_required
from repro.core.parameters import SimulationParameters
from repro.core.results import RESULT_FIELDS

#: Calibration constants (fit against the committed fig2 /
#: ablation_protocol curves; see module docstring — do not tune per
#: run).
CONTENTION_SCALE = 0.9   # γ: interval-model inflation on m·L_h/ltot
WAIT_FRACTION = 0.8      # blocked wait per denial, as a fraction of R_exec
JOIN_PENALTY = 0.1       # fork-join synchronisation penalty scale
INCREMENTAL_DECAY = 0.035  # contention decay per extra granule (2PL)
UTILIZATION_CAP = 0.95   # lock-device utilisation ceiling in the fixed point

#: Fixed-point controls.
_MAX_ITERATIONS = 500
_DAMPING = 0.5
_TOLERANCE = 1e-10

#: Semantics the model distinguishes (see ``analytic_semantics`` on
#: :class:`repro.policies.cc.ConcurrencyControl` subclasses).
SEMANTICS = ("blocking", "restart", "incremental")


@dataclass(frozen=True)
class AnalyticPrediction:
    """One configuration's analytic estimate.

    Exposes the same read surface as
    :class:`~repro.core.results.ReplicatedResult` (``mean``,
    ``samples``, ``as_dict``, ``params``) so predictions can stand in
    for simulated cells inside an
    :class:`~repro.experiments.runner.ExperimentResult` grid.  Fields
    the model does not predict read as ``nan``.
    """

    params: SimulationParameters
    throughput: float
    blocking_prob: float
    lock_overhead_frac: float
    effective_mpl: float
    response_time: float
    attempts: float
    semantics: str
    converged: bool
    #: Heuristic trust score in [0, 1]; see :func:`uncertainty_score`.
    uncertainty: float = 0.0
    #: Per-transaction-class estimates for multi-class mixes: dicts of
    #: ``txn_class`` / ``totcom`` / ``throughput`` / ``response_time``
    #: / ``mean_attempts`` mirroring ``SimulationResult.per_class``.
    per_class: tuple = ()

    @property
    def provenance(self):
        """Always ``"analytic"`` — never confuse with simulation."""
        return "analytic"

    def _field_value(self, name):
        if "__" in name:
            base, _, cls = name.partition("__")
            for entry in self.per_class:
                if entry["txn_class"] == cls:
                    return entry.get(base, math.nan)
            return math.nan
        mapped = {
            "throughput": self.throughput,
            "response_time": self.response_time,
            "denial_rate": self.blocking_prob,
            "lock_overhead": self.lock_overhead_frac,
            "mean_active": self.effective_mpl,
            "mean_attempts": self.attempts,
            "totcom": self.throughput * max(self.params.tmax, 0.0),
        }
        return mapped.get(name, math.nan)

    # -- ReplicatedResult-compatible read surface -------------------------

    def mean(self, name):
        """Predicted value of output field *name* (nan if unmodelled)."""
        return self._field_value(name)

    def samples(self, name):
        """Single-element sample list (predictions have no spread)."""
        return [self._field_value(name)]

    def __len__(self):
        return 1

    def as_dict(self, include_params=True):
        """Flat row like a simulated cell's, plus ``provenance``."""
        row = {name: self._field_value(name) for name in RESULT_FIELDS}
        for entry in self.per_class:
            cls = entry["txn_class"]
            for key, value in entry.items():
                if key != "txn_class":
                    row["{}__{}".format(key, cls)] = value
        row["provenance"] = self.provenance
        if include_params:
            for key, value in self.params.as_dict().items():
                row.setdefault(key, value)
        return row


def size_biased_transaction_size(params):
    """``E[nu²]/E[nu]`` — the mean size of the holder a random request
    conflicts with (long transactions hold locks longer, so a fresh
    request meets them more often than the plain mean suggests)."""
    if params.workload == "fixed":
        return float(params.maxtransize)
    if params.workload == "mixed":
        def moments(mtx):
            return (mtx + 1) / 2.0, (mtx + 1) * (2 * mtx + 1) / 6.0

        small_m1, small_m2 = moments(params.mix_small_maxtransize)
        large_m1, large_m2 = moments(params.mix_large_maxtransize)
        fraction = params.mix_small_fraction
        m1 = fraction * small_m1 + (1 - fraction) * large_m1
        m2 = fraction * small_m2 + (1 - fraction) * large_m2
        return m2 / m1
    if params.workload == "classes":
        mix = params.workload_mix
        return mix.second_moment_size / mix.mean_size
    # uniform on 1..maxtransize
    return (2 * params.maxtransize + 1) / 3.0


def cc_semantics(params):
    """Analytic semantics of the configured cc protocol.

    Reads ``analytic_semantics`` off the registered protocol class
    (``repro.policies``); protocols that do not declare one fall back
    on ``"incremental"`` when they acquire individual granules
    (``needs_granules``) and ``"blocking"`` otherwise.
    """
    from repro.policies import registry

    protocol = registry.resolve("cc", params.protocol)
    declared = getattr(protocol, "analytic_semantics", None)
    if declared in SEMANTICS:
        return declared
    if getattr(protocol, "needs_granules", False):
        return "incremental"
    return "blocking"


def schweitzer_response_times(demands, population):
    """Schweitzer–Bard approximate MVA per-station response times.

    Supports non-integer *population* (the fixed point feeds back a
    fractional effective MPL).  Returns one response time per demand.
    """
    demands = [max(float(d), 0.0) for d in demands]
    if population <= 0 or not any(demands):
        return demands
    queue = [population / len(demands)] * len(demands)
    scale = max(population - 1.0, 0.0) / population
    for _ in range(200):
        responses = [d * (1.0 + q * scale) for d, q in zip(demands, queue)]
        total = sum(responses)
        throughput = population / total if total > 0 else 0.0
        refreshed = [throughput * r for r in responses]
        if all(abs(a - b) < 1e-10 for a, b in zip(queue, refreshed)):
            queue = refreshed
            break
        queue = refreshed
    return [d * (1.0 + q * scale) for d, q in zip(demands, queue)]


def _mean_backoff(params):
    """Mean conflict-backoff delay of the model's default policy.

    The simulator's paper-era default is uniform on ``[0, 1)``; the
    restart protocols pay it once per denied attempt.
    """
    return 0.5


def predict(params):
    """Analytic prediction for one configuration.

    Returns an :class:`AnalyticPrediction`; never raises for valid
    :class:`SimulationParameters` (degenerate corners clamp instead).
    """
    semantics = cc_semantics(params)
    nu = max(params.mean_transaction_size, 1.0)
    nu_sb = max(size_biased_transaction_size(params), nu)
    n_txn = params.ntrans
    npros = params.npros
    ltot = params.ltot
    locks_per_txn = max(
        locks_required(params.placement, params.dbsize, ltot, nu), 1.0
    )
    locks_held = max(
        locks_required(params.placement, params.dbsize, ltot, nu_sb), 1.0
    )
    # S/X sharing: two requests conflict only when at least one writes.
    write_fraction = params.write_fraction
    mode_factor = 1.0 - (1.0 - write_fraction) ** 2

    # Per-node service demands: transaction work and lock work both fan
    # out across all nodes (horizontal partitioning / lock fan-out).
    exec_disk = nu * params.iotime / npros
    exec_cpu = nu * params.cputime / npros
    lock_disk = locks_per_txn * params.liotime / npros
    lock_cpu = locks_per_txn * params.lcputime / npros

    join_factor = 1.0 + JOIN_PENALTY * (1.0 - 1.0 / npros)
    # Serialization ceiling: with one completion waking every waiter,
    # at most (N-1)/N of requests can be denied in steady state.
    p_cap = max(0.0, (n_txn - 1.0) / n_txn) if n_txn > 0 else 0.0
    contention = CONTENTION_SCALE
    if semantics == "incremental":
        # Growing-phase holdings and granule-at-a-time waits damp the
        # effective contention as transactions span more granules.
        contention /= 1.0 + INCREMENTAL_DECAY * (locks_per_txn - 1.0)

    throughput = 1.0 / max(
        exec_disk + exec_cpu + lock_disk + lock_cpu, 1e-12
    )
    mpl = min(float(n_txn), max(1.0, ltot / locks_held))
    blocking = 0.0
    converged = False
    response_exec = exec_disk + exec_cpu
    lock_response = lock_disk + lock_cpu
    util_lock_disk = util_lock_cpu = 0.0
    for _ in range(_MAX_ITERATIONS):
        blocking_new = mode_factor * min(
            p_cap, contention * mpl * locks_held / ltot
        )
        attempts = 1.0 / (1.0 - blocking_new)
        overhead_attempts = attempts if semantics != "incremental" else 1.0
        # Lock-work utilisation per node and device (preemptive
        # priority: it steals capacity from execution service below).
        util_lock_disk = min(
            UTILIZATION_CAP, throughput * overhead_attempts * lock_disk
        )
        util_lock_cpu = min(
            UTILIZATION_CAP, throughput * overhead_attempts * lock_cpu
        )
        responses = schweitzer_response_times(
            [
                exec_disk / (1.0 - util_lock_disk),
                exec_cpu / (1.0 - util_lock_cpu),
            ],
            max(mpl, 1e-6),
        )
        response_exec = sum(responses) * join_factor
        lock_response = max(
            lock_disk / (1.0 - util_lock_disk) if lock_disk else 0.0,
            lock_cpu / (1.0 - util_lock_cpu) if lock_cpu else 0.0,
        )
        wait = WAIT_FRACTION * response_exec
        if semantics == "blocking":
            cycle = (
                attempts * lock_response
                + (attempts - 1.0) * wait
                + response_exec
            )
        elif semantics == "restart":
            cycle = (
                attempts * lock_response
                + (attempts - 1.0) * _mean_backoff(params)
                + response_exec
            )
        else:  # incremental: lock work paid once, damped waits
            cycle = (
                lock_response + (attempts - 1.0) * wait + response_exec
            )
        throughput_new = n_txn / max(cycle, 1e-12)
        mpl_new = min(throughput_new * response_exec, float(n_txn))
        delta = max(
            abs(throughput_new - throughput), abs(blocking_new - blocking)
        )
        throughput = (1.0 - _DAMPING) * throughput + _DAMPING * throughput_new
        mpl = (1.0 - _DAMPING) * mpl + _DAMPING * mpl_new
        blocking = blocking_new
        if delta < _TOLERANCE:
            converged = True
            break

    attempts = 1.0 / (1.0 - blocking)
    overhead_attempts = attempts if semantics != "incremental" else 1.0
    lock_work = overhead_attempts * locks_per_txn * (
        params.liotime + params.lcputime
    )
    exec_work = nu * (params.iotime + params.cputime)
    lock_overhead_frac = (
        lock_work / (lock_work + exec_work) if lock_work + exec_work else 0.0
    )
    prediction = AnalyticPrediction(
        params=params,
        throughput=throughput,
        blocking_prob=blocking,
        lock_overhead_frac=lock_overhead_frac,
        effective_mpl=mpl,
        response_time=n_txn / throughput if throughput > 0 else math.inf,
        attempts=attempts,
        semantics=semantics,
        converged=converged,
        per_class=_per_class_split(
            params,
            semantics=semantics,
            blocking=blocking,
            throughput=throughput,
            response_exec=response_exec,
            lock_response=lock_response,
            p_cap=p_cap,
        ),
    )
    return _with_uncertainty(
        prediction,
        p_cap=p_cap,
        util=max(util_lock_disk, util_lock_cpu),
    )


def _per_class_split(
    params, semantics, blocking, throughput, response_exec, lock_response,
    p_cap,
):
    """Per-class estimates under the converged aggregate congestion.

    The simulator's FCFS fork-join stations *equalise* waiting: every
    class queues behind the same disk backlogs, so cycle times differ
    mainly by each class's own parallel service requirement, not by
    demand ratios.  The split therefore takes the aggregate cycle
    ``C = N/X`` from the fixed point and offsets it additively —
    ``C_c = C + (S_c − S̄)`` with ``S_c`` the class's raw fanned-out
    execution + lock demand and ``S̄`` the mixture mean, floored at
    ``S_c`` itself.  Class rates ``N_c/C_c`` are renormalised to the
    validated aggregate ``X`` so the breakdown always sums to it, and
    response times follow from Little's law on the terminal shares.
    """
    mix = params.workload_mix
    if mix is None:
        return ()
    nu = max(params.mean_transaction_size, 1.0)
    locks_mean = max(
        locks_required(params.placement, params.dbsize, params.ltot, nu), 1.0
    )
    cycle = params.ntrans / throughput if throughput > 0 else math.inf
    counts = mix.population_counts(params.ntrans)
    lock_unit = (params.liotime + params.lcputime) / params.npros
    exec_unit = (params.iotime + params.cputime) / params.npros
    demands = []
    attempts_by_class = []
    for cls in mix:
        nu_c = max(cls.mean_size, 1.0)
        locks_c = max(
            locks_required(
                params.placement, params.dbsize, params.ltot, nu_c
            ),
            1.0,
        )
        blocking_c = min(p_cap, blocking * locks_c / locks_mean)
        attempts_c = 1.0 / (1.0 - blocking_c)
        overhead_attempts = attempts_c if semantics != "incremental" else 1.0
        service = nu_c * exec_unit + overhead_attempts * locks_c * lock_unit
        if semantics == "restart":
            service += (attempts_c - 1.0) * _mean_backoff(params)
        demands.append(service)
        attempts_by_class.append(attempts_c)
    mean_service = sum(
        cls.fraction * service for cls, service in zip(mix, demands)
    )
    rates = []
    for count, service in zip(counts, demands):
        cycle_c = max(cycle + service - mean_service, service, 1e-12)
        rates.append(count / cycle_c)
    total_rate = sum(rates)
    per_class = []
    for cls, count, rate, attempts_c in zip(
        mix, counts, rates, attempts_by_class
    ):
        share = rate / total_rate if total_rate > 0 else 0.0
        x_c = throughput * share
        per_class.append(
            {
                "txn_class": cls.name,
                "totcom": x_c * max(params.tmax, 0.0),
                "throughput": x_c,
                "response_time": count / x_c if x_c > 0 else math.inf,
                "mean_attempts": attempts_c,
            }
        )
    return tuple(per_class)


def uncertainty_score(prediction, p_cap=None, util=0.0):
    """Heuristic trust score in [0, 1]; higher means "simulate this".

    The model is least trustworthy where its approximations are
    stressed: at the serialization ceiling (the geometric-retry
    picture breaks down), when lock devices approach saturation (the
    ``1/(1−u)`` inflation diverges), near-serial effective MPL (wait
    accounting is crude there), and whenever the fixed point failed to
    converge.
    """
    if p_cap is None:
        n_txn = prediction.params.ntrans
        p_cap = max(0.0, (n_txn - 1.0) / n_txn) if n_txn > 0 else 0.0
    scores = [0.0]
    if not prediction.converged:
        scores.append(1.0)
    if p_cap > 0:
        # How close blocking sits to the ceiling (1.0 at the cap).
        scores.append(max(0.0, prediction.blocking_prob / p_cap - 0.8) / 0.2)
    scores.append(max(0.0, util / UTILIZATION_CAP - 0.8) / 0.2)
    if prediction.effective_mpl < 1.5:
        scores.append(0.6)
    return min(1.0, max(scores))


def _with_uncertainty(prediction, p_cap, util):
    score = uncertainty_score(prediction, p_cap=p_cap, util=util)
    return AnalyticPrediction(
        params=prediction.params,
        throughput=prediction.throughput,
        blocking_prob=prediction.blocking_prob,
        lock_overhead_frac=prediction.lock_overhead_frac,
        effective_mpl=prediction.effective_mpl,
        response_time=prediction.response_time,
        attempts=prediction.attempts,
        semantics=prediction.semantics,
        converged=prediction.converged,
        uncertainty=score,
        per_class=prediction.per_class,
    )


def predict_grid(configurations):
    """Predictions for a whole sweep, in configuration order."""
    return [predict(params) for params in configurations]
