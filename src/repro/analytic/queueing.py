"""Operational laws and asymptotic bounds for the closed model.

Classical operational analysis (Denning & Buzen) applies directly to
the paper's closed system: ``ntrans`` customers cycle over service
stations (each processor's CPU and disk).  With per-visit service
demands it yields distribution-free bounds the simulator must obey:

* **Utilisation law**: busy time ≤ capacity.
* **Throughput bounds**: ``X ≤ min(1 / D_max, N / R_min)`` where
  ``D_max`` is the largest per-station demand per transaction and
  ``R_min`` the no-queueing response floor.  (The textbook
  ``N / D_total`` form does not apply here: sub-transactions fork
  across processors and their station visits overlap, so a
  transaction's minimal residence is the per-processor path, not the
  sum over all stations.)
* **Little's law**: ``X = N / R`` with zero think time, giving
  ``R ≥ N / X``.

These bounds hold regardless of locking, which only *reduces*
achievable concurrency, so they are valid upper bounds on throughput
and lower bounds on response time; tests assert the simulator never
violates them.
"""

from repro.analytic.granularity import locks_required


def service_demands(params, nu=None):
    """Per-transaction service demand at each station type.

    Returns a dict with the *total* demand a transaction places on one
    disk and one CPU (transaction work plus its share of lock work),
    under horizontal partitioning where the work divides evenly over
    the ``npros`` stations of each type.

    Parameters
    ----------
    params:
        :class:`~repro.core.parameters.SimulationParameters`.
    nu:
        Transaction size (defaults to the workload mean).
    """
    if nu is None:
        nu = params.mean_transaction_size
    locks = locks_required(params.placement, params.dbsize, params.ltot, nu)
    disk = (nu * params.iotime + locks * params.liotime) / params.npros
    cpu = (nu * params.cputime + locks * params.lcputime) / params.npros
    return {"disk": disk, "cpu": cpu}


def bottleneck_demand(params, nu=None):
    """The largest per-station demand ``D_max`` (the bottleneck)."""
    return max(service_demands(params, nu).values())


def total_demand(params, nu=None):
    """Sum of demands over every station, ``D_total``.

    A transaction visits one disk and one CPU *per processor* under
    horizontal partitioning; the per-station demands above are already
    per processor, so the total is ``npros`` times their sum.
    """
    demands = service_demands(params, nu)
    return params.npros * (demands["disk"] + demands["cpu"])


def throughput_upper_bound(params, nu=None):
    """``X ≤ min(1 / D_max, N / R_min)`` (asymptotic bounds).

    The bottleneck form: the system cannot push more than one
    transaction's bottleneck demand through the bottleneck device per
    unit time.  The population form: with ``N`` customers and no think
    time, Little's law caps throughput at ``N`` divided by the
    no-queueing response floor.
    """
    d_max = bottleneck_demand(params, nu)
    r_min = response_time_lower_bound(params, nu)
    if d_max <= 0 or r_min <= 0:
        return float("inf")
    return min(1.0 / d_max, params.ntrans / r_min)


def response_time_lower_bound(params, nu=None):
    """``R ≥ D_total`` — a transaction's own demand, with no queueing.

    Under horizontal partitioning the per-transaction *elapsed* floor
    is the sequential I/O-then-CPU path on one processor plus lock
    processing, i.e. the per-station demands (not the total across
    stations, which is served in parallel).
    """
    demands = service_demands(params, nu)
    return demands["disk"] + demands["cpu"]


def balanced_system_throughput(params, nu=None):
    """The balanced-system approximation ``X(N) = N / (D + (N−1)·D_avg)``.

    A quick interior estimate between the asymptotic bounds (exact for
    balanced separable networks); useful as a sanity midpoint, not a
    bound.
    """
    n = params.ntrans
    d_total = total_demand(params, nu)
    stations = 2 * params.npros
    d_avg = d_total / stations
    return n / (d_total + (n - 1) * d_avg)
