"""Closed-form companions to the simulation.

:mod:`repro.analytic.yao`
    Yao's block-access formula (CACM 1977): the expected number of
    granules touched when entities are selected at random — the basis
    of the paper's *random placement* strategy.
:mod:`repro.analytic.granularity`
    Back-of-envelope approximations for conflict probability, lock
    overhead, and the throughput trade-off; used to sanity-check the
    simulator and to pick promising granularities without simulating.
:mod:`repro.analytic.queueing`
    Operational laws (Denning–Buzen) for the closed model: service
    demands, asymptotic throughput/response bounds that the simulator
    provably must obey — and the tests check that it does.
"""

from repro.analytic.granularity import (
    conflict_probability,
    expected_lock_overhead,
    optimal_ltot_estimate,
    serial_throughput_bound,
)
from repro.analytic.queueing import (
    balanced_system_throughput,
    bottleneck_demand,
    response_time_lower_bound,
    service_demands,
    throughput_upper_bound,
    total_demand,
)
from repro.analytic.yao import expected_granules_touched, yao_locks

__all__ = [
    "balanced_system_throughput",
    "bottleneck_demand",
    "conflict_probability",
    "expected_granules_touched",
    "expected_lock_overhead",
    "optimal_ltot_estimate",
    "response_time_lower_bound",
    "serial_throughput_bound",
    "service_demands",
    "throughput_upper_bound",
    "total_demand",
    "yao_locks",
]
