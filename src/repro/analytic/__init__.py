"""Closed-form companions to the simulation.

:mod:`repro.analytic.yao`
    Yao's block-access formula (CACM 1977): the expected number of
    granules touched when entities are selected at random — the basis
    of the paper's *random placement* strategy.
:mod:`repro.analytic.granularity`
    Back-of-envelope approximations for conflict probability, lock
    overhead, and the throughput trade-off; used to sanity-check the
    simulator and to pick promising granularities without simulating.
:mod:`repro.analytic.queueing`
    Operational laws (Denning–Buzen) for the closed model: service
    demands, asymptotic throughput/response bounds that the simulator
    provably must obey — and the tests check that it does.
:mod:`repro.analytic.mva`
    The analytic fast path: approximate mean-value analysis coupled
    to a lock-contention fixed point, predicting throughput, blocking
    probability and lock overhead per configuration in microseconds —
    the model behind ``repro-locking predict``/``crossval`` and the
    ``--accelerator analytic`` sweep pruner.
"""

from repro.analytic.mva import (
    AnalyticPrediction,
    cc_semantics,
    predict,
    predict_grid,
    schweitzer_response_times,
    uncertainty_score,
)
from repro.analytic.granularity import (
    conflict_probability,
    expected_lock_overhead,
    optimal_ltot_estimate,
    serial_throughput_bound,
)
from repro.analytic.queueing import (
    balanced_system_throughput,
    bottleneck_demand,
    response_time_lower_bound,
    service_demands,
    throughput_upper_bound,
    total_demand,
)
from repro.analytic.yao import expected_granules_touched, yao_locks

__all__ = [
    "AnalyticPrediction",
    "balanced_system_throughput",
    "bottleneck_demand",
    "cc_semantics",
    "conflict_probability",
    "expected_granules_touched",
    "expected_lock_overhead",
    "optimal_ltot_estimate",
    "predict",
    "predict_grid",
    "response_time_lower_bound",
    "schweitzer_response_times",
    "serial_throughput_bound",
    "service_demands",
    "throughput_upper_bound",
    "total_demand",
    "uncertainty_score",
    "yao_locks",
]
