"""Closed-form approximations of the granularity trade-off.

These formulas are deliberately simple — they exist to sanity-check the
simulator (tests compare their predictions with measured output at
points where the approximations are tight) and to give users a quick
way to bracket a good ``ltot`` before running the full simulation.
"""

import math

from repro.analytic.yao import expected_granules_touched


def locks_required(placement, dbsize, ltot, nu):
    """Mean locks a transaction of size *nu* sets, per placement strategy.

    ``best``: ``ceil(nu * ltot / dbsize)`` — entities packed into the
    fewest granules (sequential access).
    ``worst``: ``min(nu, ltot)`` — every entity in its own granule.
    ``random``: Yao's expectation.
    """
    if placement == "best":
        return math.ceil(nu * ltot / dbsize)
    if placement == "worst":
        return float(min(nu, ltot))
    if placement == "random":
        return expected_granules_touched(dbsize, ltot, nu)
    raise ValueError("unknown placement {!r}".format(placement))


def conflict_probability(placement, dbsize, ltot, mean_nu, active):
    """Approximate probability a fresh request is denied.

    Uses the paper's interval model directly: with *active*
    transactions each holding the mean lock count ``L``, the denial
    probability is ``min(1, active * L / ltot)``.
    """
    if active <= 0:
        return 0.0
    locks = locks_required(placement, dbsize, ltot, mean_nu)
    return min(1.0, active * locks / ltot)


def expected_lock_overhead(placement, params, nu=None):
    """Mean lock-processing demand (CPU + I/O time units) per attempt.

    Parameters
    ----------
    placement:
        Placement strategy name.
    params:
        A :class:`~repro.core.parameters.SimulationParameters`.
    nu:
        Transaction size (defaults to the workload mean).
    """
    if nu is None:
        nu = params.mean_transaction_size
    locks = locks_required(placement, params.dbsize, params.ltot, nu)
    return locks * (params.lcputime + params.liotime)


def serial_throughput_bound(params, nu=None):
    """Throughput of a perfectly serial system (``ltot = 1``).

    One transaction at a time: its I/O and CPU demands spread over all
    processors plus one lock's worth of overhead per attempt.  A useful
    lower anchor for the throughput curves.
    """
    if nu is None:
        nu = params.mean_transaction_size
    per_txn = (
        nu * (params.iotime + params.cputime) / params.npros
        + (params.lcputime + params.liotime) / params.npros
    )
    if per_txn <= 0:
        return math.inf
    return 1.0 / per_txn


def optimal_ltot_estimate(params, candidates=None):
    """Rough argmax of the analytic throughput proxy over ``ltot``.

    The proxy balances allowed concurrency (the reciprocal of the
    conflict probability capped by ``ntrans``) against per-transaction
    demand including lock overhead.  It reproduces the paper's
    qualitative conclusion (optimum well below 200 locks for Table 1
    settings with best placement) and is validated against the
    simulator in the test suite.
    """
    if candidates is None:
        candidates = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000]
    best_ltot, best_rate = None, -math.inf
    mean_nu = params.mean_transaction_size
    for ltot in candidates:
        if ltot > params.dbsize:
            continue
        locks = locks_required(params.placement, params.dbsize, ltot, mean_nu)
        demand = (
            mean_nu * (params.iotime + params.cputime)
            + locks * (params.lcputime + params.liotime)
        ) / params.npros
        # Effective concurrency: transactions that can hold locks at
        # once under the interval model, never more than ntrans.
        concurrency = min(params.ntrans, max(1.0, ltot / max(locks, 1e-12)))
        rate = concurrency / demand
        if rate > best_rate:
            best_rate, best_ltot = rate, ltot
    return best_ltot
