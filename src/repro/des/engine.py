"""The simulation environment: clock, event heap, and run loop."""

from collections import Counter
from dataclasses import dataclass
from heapq import heappop, heappush
from itertools import count
from time import perf_counter

from repro.des.errors import (
    EmptySchedule,
    SimulationError,
    SimulationStalled,
    StopSimulation,
)
from repro.des.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.des.process import Process


@dataclass
class KernelStats:
    """Self-profiling snapshot of one environment's run loop.

    ``heap_peak``, ``run_seconds``, ``events_per_second`` and
    ``event_type_counts`` are only populated by
    :class:`ProfiledEnvironment`; the base environment keeps the hot
    path free of that bookkeeping and reports ``None`` for them.
    """

    events_dispatched: int
    heap_length: int
    heap_peak: int = None
    run_seconds: float = None
    events_per_second: float = None
    event_type_counts: dict = None

    def as_dict(self):
        """Plain dict with the unpopulated fields omitted."""
        row = {
            "events_dispatched": self.events_dispatched,
            "heap_length": self.heap_length,
        }
        for name in ("heap_peak", "run_seconds", "events_per_second"):
            value = getattr(self, name)
            if value is not None:
                row[name] = value
        if self.event_type_counts is not None:
            row["event_type_counts"] = dict(self.event_type_counts)
        return row


class Environment:
    """Drives a simulation: owns the clock and the scheduled-event heap.

    Events scheduled for the same instant are processed in
    ``(priority, insertion order)``, which makes runs fully
    deterministic for a fixed seed.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).
    """

    __slots__ = ("_now", "_heap", "_eid", "_dispatched", "_live_procs")

    def __init__(self, initial_time=0.0):
        self._now = float(initial_time)
        self._heap = []
        self._eid = count()
        self._dispatched = 0
        self._live_procs = 0

    @property
    def now(self):
        """Current simulation time."""
        return self._now

    @property
    def events_dispatched(self):
        """Events processed by :meth:`run` over this environment's life."""
        return self._dispatched

    @property
    def live_process_count(self):
        """Processes started but not yet finished."""
        return self._live_procs

    def kernel_stats(self):
        """Current :class:`KernelStats` snapshot (cheap counters only)."""
        return KernelStats(
            events_dispatched=self._dispatched,
            heap_length=len(self._heap),
        )

    # -- scheduling ----------------------------------------------------

    def schedule(self, event, delay=0.0, priority=NORMAL):
        """Put *event* on the heap to be processed after *delay*."""
        heappush(
            self._heap, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def step(self):
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            when, _, _, event = heappop(self._heap)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until=None, timeout=None):
        """Run until *until* (a time or an event), or until heap empty.

        * ``until`` is ``None``: run until no events remain.
        * ``until`` is a number: run up to that time; the clock ends at
          exactly that value.
        * ``until`` is an :class:`Event`: run until it is processed and
          return its value.

        Parameters
        ----------
        timeout:
            Optional wall-clock budget in seconds.  When exceeded, the
            run stops with :class:`~repro.des.errors.SimulationStalled`
            carrying a :class:`KernelStats` snapshot.  ``None`` (the
            default) keeps the hot loop entirely guard-free.

        Raises
        ------
        SimulationStalled
            When the wall-clock *timeout* is exhausted, or when *until*
            is a number and the event heap runs dry before that time
            while processes are still alive — every live process is
            then waiting on an event that nothing will ever trigger.
        """
        if until is None:
            stop_at = float("inf")
        elif isinstance(until, Event):
            if until.processed:
                return until.value
            until.callbacks.append(_stop_on_event)
            stop_at = float("inf")
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    "until ({}) is in the past (now={})".format(stop_at, self._now)
                )
        # Hot loop: bind the heap and the step method once instead of
        # resolving both attributes on every iteration — the loop body
        # runs once per processed event.  The dispatch count lives in a
        # local and is folded into the instance counter once on exit,
        # keeping per-event overhead to one local increment.
        heap = self._heap
        step = self.step
        dispatched = 0
        try:
            if timeout is None:
                while heap and heap[0][0] <= stop_at:
                    step()
                    dispatched += 1
            else:
                # The wall-clock guard is checked once every 1024
                # events so the budget costs one masked compare per
                # event instead of a perf_counter() syscall.
                deadline = perf_counter() + timeout
                while heap and heap[0][0] <= stop_at:
                    step()
                    dispatched += 1
                    if not dispatched & 1023 and perf_counter() >= deadline:
                        raise SimulationStalled(
                            "wall-clock timeout ({}s) exhausted at "
                            "t={}".format(timeout, self._now),
                            stats=KernelStats(
                                events_dispatched=self._dispatched + dispatched,
                                heap_length=len(heap),
                            ),
                        )
        except StopSimulation as stop:
            return stop.value
        finally:
            self._dispatched += dispatched
        if isinstance(until, Event):
            raise EmptySchedule("ran out of events before {!r}".format(until))
        if stop_at != float("inf"):
            if not heap and self._live_procs > 0:
                raise SimulationStalled(
                    "event heap ran dry at t={} before until={} with {} "
                    "live process(es) — every live process is waiting on "
                    "an event that will never trigger".format(
                        self._now, stop_at, self._live_procs
                    ),
                    stats=self.kernel_stats(),
                )
            self._now = stop_at
        return None

    # -- factories -----------------------------------------------------

    def event(self):
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create a :class:`Timeout` that fires after *delay*."""
        return Timeout(self, delay, value)

    def process(self, generator):
        """Start *generator* as a :class:`Process` and return it."""
        return Process(self, generator)

    def all_of(self, events):
        """Join: event that succeeds when all of *events* succeed."""
        return AllOf(self, events)

    def any_of(self, events):
        """Race: event that succeeds when any of *events* succeeds."""
        return AnyOf(self, events)


class ProfiledEnvironment(Environment):
    """An :class:`Environment` with full kernel self-profiling.

    On top of the base dispatch counter it tracks the peak heap size,
    wall-clock seconds spent inside :meth:`run` (and therefore
    events/second), and how many events of each type were processed
    (``Timeout``, ``Process``, ``Initialize``, ...).  That bookkeeping
    costs a few percent of raw event throughput, so it lives in a
    subclass and the production simulation keeps the plain kernel.
    """

    __slots__ = ("_heap_peak", "_type_counts", "_run_seconds")

    def __init__(self, initial_time=0.0):
        super().__init__(initial_time)
        self._heap_peak = 0
        self._type_counts = Counter()
        self._run_seconds = 0.0

    def schedule(self, event, delay=0.0, priority=NORMAL):
        """Schedule *event*, tracking the peak heap population."""
        heap = self._heap
        heappush(heap, (self._now + delay, priority, next(self._eid), event))
        if len(heap) > self._heap_peak:
            self._heap_peak = len(heap)

    def step(self):
        """Process the next event, counting it by event type."""
        try:
            when, _, _, event = heappop(self._heap)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None
        self._type_counts[type(event).__name__] += 1
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until=None, timeout=None):
        """Run as the base class does, accumulating wall-clock time."""
        started = perf_counter()
        try:
            return super().run(until, timeout=timeout)
        finally:
            self._run_seconds += perf_counter() - started

    def kernel_stats(self):
        """Full :class:`KernelStats` snapshot."""
        rate = (
            self._dispatched / self._run_seconds if self._run_seconds else None
        )
        return KernelStats(
            events_dispatched=self._dispatched,
            heap_length=len(self._heap),
            heap_peak=self._heap_peak,
            run_seconds=self._run_seconds,
            events_per_second=rate,
            event_type_counts=dict(self._type_counts),
        )


def _stop_on_event(event):
    raise StopSimulation(event.value)
