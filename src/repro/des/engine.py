"""The simulation environment: clock, event heap, and run loop."""

from heapq import heappop, heappush
from itertools import count

from repro.des.errors import EmptySchedule, SimulationError, StopSimulation
from repro.des.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.des.process import Process


class Environment:
    """Drives a simulation: owns the clock and the scheduled-event heap.

    Events scheduled for the same instant are processed in
    ``(priority, insertion order)``, which makes runs fully
    deterministic for a fixed seed.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).
    """

    __slots__ = ("_now", "_heap", "_eid")

    def __init__(self, initial_time=0.0):
        self._now = float(initial_time)
        self._heap = []
        self._eid = count()

    @property
    def now(self):
        """Current simulation time."""
        return self._now

    # -- scheduling ----------------------------------------------------

    def schedule(self, event, delay=0.0, priority=NORMAL):
        """Put *event* on the heap to be processed after *delay*."""
        heappush(
            self._heap, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def step(self):
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            when, _, _, event = heappop(self._heap)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until=None):
        """Run until *until* (a time or an event), or until heap empty.

        * ``until`` is ``None``: run until no events remain.
        * ``until`` is a number: run up to that time; the clock ends at
          exactly that value.
        * ``until`` is an :class:`Event`: run until it is processed and
          return its value.
        """
        if until is None:
            stop_at = float("inf")
        elif isinstance(until, Event):
            if until.processed:
                return until.value
            until.callbacks.append(_stop_on_event)
            stop_at = float("inf")
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    "until ({}) is in the past (now={})".format(stop_at, self._now)
                )
        # Hot loop: bind the heap and the step method once instead of
        # resolving both attributes on every iteration — the loop body
        # runs once per processed event.
        heap = self._heap
        step = self.step
        try:
            while heap and heap[0][0] <= stop_at:
                step()
        except StopSimulation as stop:
            return stop.value
        if isinstance(until, Event):
            raise EmptySchedule("ran out of events before {!r}".format(until))
        if stop_at != float("inf"):
            self._now = stop_at
        return None

    # -- factories -----------------------------------------------------

    def event(self):
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create a :class:`Timeout` that fires after *delay*."""
        return Timeout(self, delay, value)

    def process(self, generator):
        """Start *generator* as a :class:`Process` and return it."""
        return Process(self, generator)

    def all_of(self, events):
        """Join: event that succeeds when all of *events* succeed."""
        return AllOf(self, events)

    def any_of(self, events):
        """Race: event that succeeds when any of *events* succeeds."""
        return AnyOf(self, events)


def _stop_on_event(event):
    raise StopSimulation(event.value)
