"""The simulation environment: clock, event scheduler, and run loop."""

import os
from collections import Counter
from dataclasses import dataclass
from heapq import heappop, heappush
from itertools import count
from sys import getrefcount
from time import perf_counter
from typing import Dict, Optional

from repro.des.errors import (
    EmptySchedule,
    SimulationError,
    SimulationStalled,
    StopSimulation,
)
from repro.des.events import NORMAL, PENDING, AllOf, AnyOf, Event, Timeout
from repro.des.process import _TICK, Process


@dataclass
class KernelStats:
    """Self-profiling snapshot of one environment's run loop.

    ``heap_peak``, ``run_seconds``, ``events_per_second`` and
    ``event_type_counts`` are only populated by
    :class:`ProfiledEnvironment`; the base environment keeps the hot
    path free of that bookkeeping and reports ``None`` for them.
    """

    events_dispatched: int
    heap_length: int
    heap_peak: Optional[int] = None
    run_seconds: Optional[float] = None
    events_per_second: Optional[float] = None
    event_type_counts: Optional[Dict[str, int]] = None

    def as_dict(self):
        """Plain dict with the unpopulated fields omitted.

        Key order is fixed (declaration order) and the event-type
        counts are sorted by type name, so two snapshots of the same
        state serialise identically — the property the perf-regression
        harness relies on when diffing ``BENCH_*.json`` files.
        """
        row = {
            "events_dispatched": self.events_dispatched,
            "heap_length": self.heap_length,
        }
        for name in ("heap_peak", "run_seconds", "events_per_second"):
            value = getattr(self, name)
            if value is not None:
                row[name] = value
        if self.event_type_counts is not None:
            row["event_type_counts"] = dict(
                sorted(self.event_type_counts.items())
            )
        return row


class Environment:
    """Drives a simulation: owns the clock and the scheduled-event queue.

    Events scheduled for the same instant are processed in
    ``(priority, insertion order)``, which makes runs fully
    deterministic for a fixed seed.

    The future-event list is pluggable.  ``Environment(...)`` itself is
    the binary-heap backend; passing ``scheduler="calendar"`` (or
    setting ``REPRO_KERNEL_SCHED=calendar``) transparently constructs
    the bucketed calendar-queue backend instead.  Every backend
    preserves the exact ``(time, priority, eid)`` total order, so the
    choice is invisible to simulation results — only throughput
    changes.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).
    pool:
        Enable the Timeout/Event free lists: processed events that are
        provably unreferenced (checked by refcount) are reset and
        reused by the :meth:`timeout` / :meth:`event` factories instead
        of being garbage.  Results are bit-identical with pooling on or
        off; see DESIGN.md for the recycling contract.
    scheduler:
        Scheduler backend name (``"heap"`` or ``"calendar"``).  When
        ``None``, the ``REPRO_KERNEL_SCHED`` environment variable is
        consulted, defaulting to ``"heap"``.
    """

    #: Registry name of this backend (subclasses override).
    SCHEDULER = "heap"

    __slots__ = (
        "_now",
        "_heap",
        "_eid",
        "_dispatched",
        "_live_procs",
        "_pool",
        "_timeout_pool",
        "_event_pool",
        "_timeout_reuses",
        "_event_reuses",
        "_timeout_creates",
        "_event_creates",
    )

    def __new__(cls, initial_time=0.0, pool=False, scheduler=None):
        # Backend dispatch happens here so existing call sites keep
        # constructing ``Environment(...)`` and transparently get the
        # selected scheduler subclass.  Subclasses (Profiled, Calendar)
        # constructed directly are never redirected.
        if cls is Environment:
            name = scheduler or os.environ.get("REPRO_KERNEL_SCHED") or "heap"
            if name != "heap":
                cls = scheduler_class(name)
        return object.__new__(cls)

    def __init__(self, initial_time=0.0, pool=False, scheduler=None):
        if scheduler is not None and scheduler != self.SCHEDULER:
            # Only reachable by constructing a subclass directly with a
            # conflicting name, e.g. CalendarEnvironment(scheduler="heap").
            raise ValueError(
                "scheduler {!r} conflicts with {}".format(
                    scheduler, type(self).__name__
                )
            )
        self._now = float(initial_time)
        self._heap = []
        self._eid = count()
        self._dispatched = 0
        self._live_procs = 0
        self._pool = bool(pool)
        self._timeout_pool = []
        self._event_pool = []
        self._timeout_reuses = 0
        self._event_reuses = 0
        self._timeout_creates = 0
        self._event_creates = 0

    @property
    def now(self):
        """Current simulation time."""
        return self._now

    @property
    def events_dispatched(self):
        """Events processed by :meth:`run` over this environment's life."""
        return self._dispatched

    @property
    def live_process_count(self):
        """Processes started but not yet finished."""
        return self._live_procs

    @property
    def heap_depth(self):
        """Events currently scheduled on the heap (cheap)."""
        return len(self._heap)

    @property
    def pooling(self):
        """True when the Timeout/Event free lists are enabled."""
        return self._pool

    @property
    def scheduler(self):
        """Registry name of the active scheduler backend."""
        return self.SCHEDULER

    def kernel_stats(self):
        """Current :class:`KernelStats` snapshot (cheap counters only)."""
        return KernelStats(
            events_dispatched=self._dispatched,
            heap_length=self.heap_depth,
        )

    def pool_stats(self):
        """Free-list occupancy, reuse and allocation counters (cheap).

        ``timeout_created``/``event_created`` count factory calls that
        missed the free list — reuse / (reuse + created) is the pool
        hit rate the live-metrics layer exports.
        """
        return {
            "enabled": self._pool,
            "timeout_free": len(self._timeout_pool),
            "event_free": len(self._event_pool),
            "timeout_reused": self._timeout_reuses,
            "event_reused": self._event_reuses,
            "timeout_created": self._timeout_creates,
            "event_created": self._event_creates,
        }

    # -- scheduling ----------------------------------------------------

    def schedule(self, event, delay=0.0, priority=NORMAL):
        """Put *event* on the heap to be processed after *delay*.

        *delay* must be non-negative: a direct ``schedule`` (or a bare
        callback) could otherwise move time backwards on the heap,
        which the run loop never checks for.
        """
        if delay < 0:
            raise ValueError("negative delay {}".format(delay))
        heappush(
            self._heap, (self._now + delay, priority, next(self._eid), event)
        )

    def schedule_callback(self, fn, delay=0.0, priority=NORMAL):
        """Schedule a bare callable — no :class:`Event` is allocated.

        *fn* is invoked with no arguments when its heap entry is
        processed.  This is the zero-allocation path for internal
        wakeups that nothing ever waits on (e.g. server completion
        segments): one heap tuple instead of an Event, its callback
        list and a closure per callback.  The callable must not have a
        ``callbacks`` attribute (plain functions, closures and bound
        methods never do).
        """
        if delay < 0:
            raise ValueError("negative delay {}".format(delay))
        heappush(
            self._heap, (self._now + delay, priority, next(self._eid), fn)
        )

    def schedule_tick(self, proc, delay):
        """Schedule *proc* to resume after *delay* with no event object.

        This is the bare-delay sleep path (``yield 1.5`` inside a
        process): the :class:`Process` itself goes on the queue, tagged
        by ``_tick_eid`` so an interrupt delivered before the tick
        fires leaves a stale entry the dispatcher can recognise and
        drop.  The entry consumes one event id, exactly like the
        equivalent ``env.timeout(delay)`` would.
        """
        if delay < 0:
            raise ValueError("negative delay {}".format(delay))
        eid = next(self._eid)
        proc._target = _TICK
        proc._tick_eid = eid
        heappush(self._heap, (self._now + delay, NORMAL, eid, proc))

    def _tick(self, proc, eid):
        """Resume a tick entry (slow path shared by :meth:`step`).

        Mirrors the handling inlined in :meth:`_dispatch`: advance the
        generator, then either requeue the next bare delay or hand any
        other yield to :meth:`Process._resume`.
        """
        if proc._tick_eid != eid:
            return  # stale: an interrupt already resumed the process
        try:
            delay = proc._generator.send(None)
        except StopIteration as stop:
            proc._finish_stop(stop)
        except BaseException as error:
            proc._finish_error(error)
        else:
            cls = delay.__class__
            if cls is float or cls is int:
                self.schedule_tick(proc, delay)
            else:
                proc._resume(None, delay)

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def step(self):
        """Process the next scheduled event (or bare callback).

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            when, _, eid, event = heappop(self._heap)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None
        self._consume(when, eid, event)

    def _consume(self, when, eid, event):
        """Dispatch one popped queue entry (shared by all backends)."""
        self._now = when
        if event.__class__ is Process and event._target is _TICK:
            self._tick(event, eid)
            return
        try:
            callbacks = event.callbacks
        except AttributeError:  # a bare callback, not an Event
            event()
            return
        event.callbacks = None
        waiter = event._waiter
        if waiter is not None:
            event._waiter = None
            waiter(event)
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value
        if self._pool:
            # `event` local + getrefcount's argument == 2: nothing else
            # references the object, so recycling cannot leak state.
            if event.__class__ is Timeout:
                if getrefcount(event) == 2:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._value = PENDING
                    event._defused = False
                    self._timeout_pool.append(event)
            elif event.__class__ is Event and getrefcount(event) == 2:
                callbacks.clear()
                event.callbacks = callbacks
                event._value = PENDING
                event._ok = None
                event._defused = False
                self._event_pool.append(event)

    def _dispatch(self, stop_at, timeout):
        """The hot loop: pop-and-dispatch until *stop_at* is passed.

        This is :meth:`step` inlined (no per-event method call), with
        the bare-callback branch, the single-waiter fast path and the
        free-list recycler folded in.  The dispatch count lives in a
        local and is folded into the instance counter once on exit.
        """
        heap = self._heap
        pooling = self._pool
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        getrefs = getrefcount
        nexteid = self._eid.__next__
        deadline = None if timeout is None else perf_counter() + timeout
        dispatched = 0
        try:
            while heap and heap[0][0] <= stop_at:
                when, _, eid, event = heappop(heap)
                self._now = when
                dispatched += 1
                if event.__class__ is Process and event._target is _TICK:
                    # Tick fast path: the process sleeps on a bare
                    # delay, so resume the generator directly — no
                    # event object, no callback list, no recycling.
                    if event._tick_eid == eid:
                        try:
                            delay = event._generator.send(None)
                        except StopIteration as stop:
                            event._finish_stop(stop)
                        except BaseException as error:
                            event._finish_error(error)
                        else:
                            dcls = delay.__class__
                            if dcls is float or dcls is int:
                                if delay < 0:
                                    raise ValueError(
                                        "negative delay {}".format(delay)
                                    )
                                eid = nexteid()
                                event._tick_eid = eid
                                heappush(
                                    heap, (when + delay, NORMAL, eid, event)
                                )
                            else:
                                event._resume(None, delay)
                    # else: stale tick — an interrupt resumed the
                    # process first; the entry is dropped silently.
                else:
                    try:
                        callbacks = event.callbacks
                    except AttributeError:  # a bare callback, not an Event
                        event()
                    else:
                        event.callbacks = None
                        waiter = event._waiter
                        if waiter is not None:
                            event._waiter = None
                            waiter(event)
                        for callback in callbacks:
                            callback(event)
                        if not event._ok and not event._defused:
                            raise event._value
                        if pooling:
                            # `event` local + getrefcount's argument == 2:
                            # nothing else references the object, so
                            # recycling cannot leak state (conditions,
                            # generators or monitors holding it keep the
                            # refcount higher and the object alive).
                            if event.__class__ is Timeout:
                                if getrefs(event) == 2:
                                    callbacks.clear()
                                    event.callbacks = callbacks
                                    event._value = PENDING
                                    event._defused = False
                                    timeout_pool.append(event)
                            elif (
                                event.__class__ is Event
                                and getrefs(event) == 2
                            ):
                                callbacks.clear()
                                event.callbacks = callbacks
                                event._value = PENDING
                                event._ok = None
                                event._defused = False
                                event_pool.append(event)
                if deadline is not None and not dispatched & 1023:
                    # The wall-clock guard is checked once every 1024
                    # events so the budget costs one masked compare
                    # per event instead of a perf_counter() syscall.
                    if perf_counter() >= deadline:
                        raise SimulationStalled(
                            "wall-clock timeout ({}s) exhausted at "
                            "t={}".format(timeout, self._now),
                            stats=KernelStats(
                                events_dispatched=self._dispatched
                                + dispatched,
                                heap_length=len(heap),
                            ),
                        )
        finally:
            self._dispatched += dispatched

    def run(self, until=None, timeout=None):
        """Run until *until* (a time or an event), or until heap empty.

        * ``until`` is ``None``: run until no events remain.
        * ``until`` is a number: run up to that time; the clock ends at
          exactly that value.
        * ``until`` is an :class:`Event`: run until it is processed and
          return its value.

        Parameters
        ----------
        timeout:
            Optional wall-clock budget in seconds.  When exceeded, the
            run stops with :class:`~repro.des.errors.SimulationStalled`
            carrying a :class:`KernelStats` snapshot.  ``None`` (the
            default) keeps the hot loop entirely guard-free.

        Raises
        ------
        SimulationStalled
            When the wall-clock *timeout* is exhausted, or when *until*
            is a number and the event heap runs dry before that time
            while processes are still alive — every live process is
            then waiting on an event that nothing will ever trigger.
        """
        if until is None:
            stop_at = float("inf")
        elif isinstance(until, Event):
            if until.processed:
                return until.value
            until.callbacks.append(_stop_on_event)
            stop_at = float("inf")
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    "until ({}) is in the past (now={})".format(stop_at, self._now)
                )
        try:
            self._dispatch(stop_at, timeout)
        except StopSimulation as stop:
            return stop.value
        if isinstance(until, Event):
            raise EmptySchedule("ran out of events before {!r}".format(until))
        if stop_at != float("inf"):
            if self.heap_depth == 0 and self._live_procs > 0:
                raise SimulationStalled(
                    "event heap ran dry at t={} before until={} with {} "
                    "live process(es) — every live process is waiting on "
                    "an event that will never trigger".format(
                        self._now, stop_at, self._live_procs
                    ),
                    stats=self.kernel_stats(),
                )
            self._now = stop_at
        return None

    # -- factories -----------------------------------------------------

    def event(self):
        """Create (or recycle) a fresh, untriggered :class:`Event`."""
        pool = self._event_pool
        if pool:
            # Recycled events were fully reset when pooled, so reuse
            # is a pop and a counter bump.
            self._event_reuses += 1
            return pool.pop()
        self._event_creates += 1
        return Event(self)

    def timeout(self, delay, value=None):
        """Create (or recycle) a :class:`Timeout` firing after *delay*."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError("negative delay {}".format(delay))
            self._timeout_reuses += 1
            t = pool.pop()
            t._delay = delay
            t._value = value
            heappush(
                self._heap, (self._now + delay, NORMAL, next(self._eid), t)
            )
            return t
        self._timeout_creates += 1
        return Timeout(self, delay, value)

    def process(self, generator):
        """Start *generator* as a :class:`Process` and return it."""
        return Process(self, generator)

    def all_of(self, events):
        """Join: event that succeeds when all of *events* succeed."""
        return AllOf(self, events)

    def any_of(self, events):
        """Race: event that succeeds when any of *events* succeeds."""
        return AnyOf(self, events)


class ProfiledEnvironment(Environment):
    """An :class:`Environment` with full kernel self-profiling.

    On top of the base dispatch counter it tracks the peak heap size,
    wall-clock seconds spent inside :meth:`run` (and therefore
    events/second), and how many events of each type were processed
    (``Timeout``, ``Process``, ``Initialize``, ... — bare callbacks
    scheduled through :meth:`Environment.schedule_callback` are
    counted as ``Callback``).  That bookkeeping costs a few percent of
    raw event throughput, so it lives in a subclass and the production
    simulation keeps the plain kernel.  The free-list pool is disabled
    here: a profiling run should see real allocation behaviour.
    """

    __slots__ = ("_heap_peak", "_type_counts", "_run_seconds")

    def __init__(self, initial_time=0.0):
        super().__init__(initial_time, pool=False)
        self._heap_peak = 0
        self._type_counts = Counter()
        self._run_seconds = 0.0

    def schedule(self, event, delay=0.0, priority=NORMAL):
        """Schedule *event*, tracking the peak heap population."""
        if delay < 0:
            raise ValueError("negative delay {}".format(delay))
        heap = self._heap
        heappush(heap, (self._now + delay, priority, next(self._eid), event))
        if len(heap) > self._heap_peak:
            self._heap_peak = len(heap)

    def schedule_callback(self, fn, delay=0.0, priority=NORMAL):
        """Schedule a bare callback, tracking the peak heap population."""
        super().schedule_callback(fn, delay, priority)
        if len(self._heap) > self._heap_peak:
            self._heap_peak = len(self._heap)

    def schedule_tick(self, proc, delay):
        """Schedule a bare-delay tick, tracking the peak heap population."""
        super().schedule_tick(proc, delay)
        if len(self._heap) > self._heap_peak:
            self._heap_peak = len(self._heap)

    def step(self):
        """Process the next entry, counting it by event type."""
        try:
            when, _, eid, event = heappop(self._heap)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None
        self._now = when
        if event.__class__ is Process and event._target is _TICK:
            # Bare-delay sleeps dispatch the process itself; count them
            # under their own label (stale ticks included — they cost a
            # dispatch slot just like an orphaned Timeout would).
            self._type_counts["Tick"] += 1
            self._tick(event, eid)
            return
        try:
            callbacks = event.callbacks
        except AttributeError:
            self._type_counts["Callback"] += 1
            event()
            return
        self._type_counts[type(event).__name__] += 1
        event.callbacks = None
        waiter = event._waiter
        if waiter is not None:
            event._waiter = None
            waiter(event)
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def _dispatch(self, stop_at, timeout):
        """Counted loop over :meth:`step` (slower, fully profiled)."""
        heap = self._heap
        step = self.step
        deadline = None if timeout is None else perf_counter() + timeout
        dispatched = 0
        try:
            while heap and heap[0][0] <= stop_at:
                step()
                dispatched += 1
                if deadline is not None and not dispatched & 1023:
                    if perf_counter() >= deadline:
                        raise SimulationStalled(
                            "wall-clock timeout ({}s) exhausted at "
                            "t={}".format(timeout, self._now),
                            stats=KernelStats(
                                events_dispatched=self._dispatched
                                + dispatched,
                                heap_length=len(heap),
                            ),
                        )
        finally:
            self._dispatched += dispatched

    def run(self, until=None, timeout=None):
        """Run as the base class does, accumulating wall-clock time."""
        started = perf_counter()
        try:
            return super().run(until, timeout=timeout)
        finally:
            self._run_seconds += perf_counter() - started

    def kernel_stats(self):
        """Full :class:`KernelStats` snapshot."""
        rate = (
            self._dispatched / self._run_seconds if self._run_seconds else None
        )
        return KernelStats(
            events_dispatched=self._dispatched,
            heap_length=len(self._heap),
            heap_peak=self._heap_peak,
            run_seconds=self._run_seconds,
            events_per_second=rate,
            event_type_counts=dict(self._type_counts),
        )


def _stop_on_event(event):
    raise StopSimulation(event.value)


#: Scheduler backend registry.  Values are either a class or a lazy
#: ``"module:attr"`` string resolved (and cached) on first use — the
#: calendar backend lives in its own module and importing it here
#: eagerly would be a cycle.
_SCHEDULERS = {
    "heap": Environment,
    "calendar": "repro.des.calendar:CalendarEnvironment",
}


def scheduler_class(name):
    """Resolve a scheduler backend name to its Environment subclass."""
    try:
        entry = _SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            "unknown scheduler {!r}; choose from {}".format(
                name, ", ".join(sorted(_SCHEDULERS))
            )
        ) from None
    if isinstance(entry, str):
        import importlib

        module_name, _, attr = entry.partition(":")
        entry = getattr(importlib.import_module(module_name), attr)
        _SCHEDULERS[name] = entry
    return entry


def available_schedulers():
    """Sorted names of the registered scheduler backends."""
    return sorted(_SCHEDULERS)
