"""A FIFO item store with blocking get (SimPy-style ``Store``)."""

from collections import deque

from repro.des.events import Event


class Store:
    """An unbounded-or-bounded FIFO buffer of arbitrary items.

    ``put`` succeeds immediately while below capacity, otherwise the
    put waits; ``get`` waits until an item is available.  Pending gets
    are served in request order.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum items held at once (default unbounded).
    """

    def __init__(self, env, capacity=float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive, got {}".format(capacity))
        self.env = env
        self._capacity = capacity
        self._items = deque()
        self._getters = deque()
        self._putters = deque()

    @property
    def capacity(self):
        """Maximum number of stored items."""
        return self._capacity

    @property
    def items(self):
        """Snapshot (list) of currently buffered items."""
        return list(self._items)

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Offer *item*; the returned event fires once it is accepted."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self):
        """Take the oldest item; the event's value is the item."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self):
        # Accept puts while there is room, then satisfy gets while
        # items remain; one pass of each suffices because accepting a
        # put can only enable gets, which can only enable more puts,
        # so we loop until neither side makes progress.
        progress = True
        while progress:
            progress = False
            while self._putters and len(self._items) < self._capacity:
                event, item = self._putters.popleft()
                self._items.append(item)
                event.succeed()
                progress = True
            while self._getters and self._items:
                event = self._getters.popleft()
                event.succeed(self._items.popleft())
                progress = True
