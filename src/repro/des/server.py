"""A single service station with preemptive-resume priority service.

The paper's machine model charges lock-management work to the same CPU
and disk that serve transactions, *with preemptive power over running
transactions*, and reports the busy time split into lock overhead and
useful (transaction) work.  :class:`Server` provides exactly that:

* one unit of service capacity;
* jobs submitted with a numeric priority (lower number = more urgent);
* a higher-priority arrival preempts the job in service, which later
  resumes with its remaining demand (preemptive-resume);
* waiting jobs are ordered FCFS within a priority level (or
  shortest-remaining-first with the ``"sjf"`` discipline);
* busy time is accumulated per caller-supplied *tag*, so the model can
  separate ``"lock"`` from ``"txn"`` work on each device.
"""

import heapq
from collections import defaultdict
from itertools import count

from repro.des.events import Event

#: Tolerance when deciding that a preempted job had actually finished.
_EPSILON = 1e-12

#: Supported queueing disciplines for waiting jobs.
DISCIPLINES = ("fcfs", "sjf")


class _Job:
    __slots__ = (
        "demand", "remaining", "priority", "tag", "seq", "done", "arrival",
        "key",
    )

    def __init__(self, demand, priority, tag, seq, done, arrival):
        self.demand = demand
        self.remaining = demand
        self.priority = priority
        self.tag = tag
        self.seq = seq
        self.done = done
        self.arrival = arrival
        # The FCFS ordering key never changes over the job's lifetime,
        # so it is built once here instead of on every heap push (a
        # preempted job re-enters the heap with the same key).  The
        # SJF key orders on the mutable ``remaining`` and must be
        # rebuilt per push.
        self.key = (priority, seq)


class Server:
    """A preemptive-resume priority queueing station of capacity one.

    Parameters
    ----------
    env:
        Owning environment.
    name:
        Label used in diagnostics.
    discipline:
        ``"fcfs"`` (default) or ``"sjf"`` (shortest remaining demand
        first, within a priority level).
    """

    def __init__(self, env, name="server", discipline="fcfs"):
        if discipline not in DISCIPLINES:
            raise ValueError(
                "unknown discipline {!r}; expected one of {}".format(
                    discipline, DISCIPLINES
                )
            )
        self.env = env
        self.name = name
        self.discipline = discipline
        # The discipline string is resolved to a key function once;
        # comparing it on every enqueue would put a string compare on
        # the submit/preempt hot path.
        self._key = self._sjf_key if discipline == "sjf" else self._fcfs_key
        self._heap = []
        self._seq = count()
        self._current = None
        self._segment_start = 0.0
        self._token = 0
        self._busy = defaultdict(float)
        self._served = defaultdict(int)
        self._demand_total = defaultdict(float)
        self._scale = 1.0

    def __repr__(self):
        return "<Server {!r} queue={} busy={}>".format(
            self.name, len(self._heap), self._current is not None
        )

    # -- public API ------------------------------------------------------

    def submit(self, demand, priority=0, tag="default"):
        """Request *demand* units of service; returns the done event.

        Parameters
        ----------
        demand:
            Non-negative service requirement in time units.
        priority:
            Lower numbers are served first and preempt higher numbers.
        tag:
            Accounting bucket for the busy time this job consumes.
        """
        if demand < 0:
            raise ValueError("negative service demand {}".format(demand))
        if self._scale != 1.0:
            # Transient degradation window (fault injection): inflate
            # the service requirement of jobs submitted inside it.
            demand = demand * self._scale
        done = Event(self.env)
        job = _Job(demand, priority, tag, next(self._seq), done, self.env.now)
        self._demand_total[tag] += demand
        if self._current is None:
            self._start(job)
        elif job.priority < self._current.priority:
            self._preempt()
            self._start(job)
        else:
            heapq.heappush(self._heap, (self._key(job), job))
        return done

    @property
    def busy(self):
        """True while a job is in service."""
        return self._current is not None

    @property
    def queue_length(self):
        """Number of jobs waiting (not counting the one in service)."""
        return len(self._heap)

    def busy_time(self, tag=None):
        """Accumulated busy time, for one *tag* or in total.

        Includes the partially-delivered service of the job currently
        on the server, so snapshots taken mid-run are exact.
        """
        if tag is None:
            total = sum(self._busy.values())
            if self._current is not None:
                total += self.env.now - self._segment_start
            return total
        total = self._busy.get(tag, 0.0)
        if self._current is not None and self._current.tag == tag:
            total += self.env.now - self._segment_start
        return total

    def jobs_served(self, tag=None):
        """Number of completed jobs, for one *tag* or in total."""
        if tag is None:
            return sum(self._served.values())
        return self._served.get(tag, 0)

    def demand_submitted(self, tag=None):
        """Total service demand submitted, for one *tag* or in total."""
        if tag is None:
            return sum(self._demand_total.values())
        return self._demand_total.get(tag, 0.0)

    @property
    def scale(self):
        """Current service-time inflation factor (1.0 = nominal)."""
        return self._scale

    def set_scale(self, factor):
        """Set the inflation factor applied to future submissions.

        Only jobs submitted while the factor is in force are inflated;
        jobs already queued or in service keep their original demand.
        """
        if factor <= 0:
            raise ValueError("scale factor must be > 0, got {}".format(factor))
        self._scale = float(factor)

    def fail_all(self, exception):
        """Kill the job in service and every queued job (a crash).

        Each killed job's done event fails with *exception*, so waiting
        processes receive it at their yield point.  Busy time already
        delivered to the in-service job stays credited (the device was
        genuinely busy until the instant of the crash).  Returns the
        number of jobs killed.
        """
        killed = 0
        if self._current is not None:
            job = self._current
            self._credit(job.tag, self.env.now - self._segment_start)
            self._token += 1  # invalidate the scheduled completion
            self._current = None
            job.done.fail(exception)
            killed += 1
        while self._heap:
            _, job = heapq.heappop(self._heap)
            job.done.fail(exception)
            killed += 1
        return killed

    # -- internals -------------------------------------------------------

    @staticmethod
    def _fcfs_key(job):
        return job.key

    @staticmethod
    def _sjf_key(job):
        return (job.priority, job.remaining, job.seq)

    def _start(self, job):
        self._current = job
        self._segment_start = self.env.now
        self._token += 1
        # Per-segment completions are the server's hottest allocation
        # site (every preemption reschedules one); a bare callback
        # puts a single closure on the heap instead of an Event and
        # its callback list.  The captured token keeps the
        # stale-completion guard: a preemption or crash bumps
        # self._token, and the out-of-date callback is ignored by
        # _on_complete when it eventually fires.
        self.env.schedule_callback(
            lambda t=self._token: self._on_complete(t), job.remaining
        )

    def _preempt(self):
        job = self._current
        elapsed = self.env.now - self._segment_start
        self._credit(job.tag, elapsed)
        job.remaining -= elapsed
        self._token += 1  # invalidate the scheduled completion
        self._current = None
        if job.remaining <= _EPSILON:
            # The job had in fact finished at this very instant; its
            # completion event lost the same-time race with the
            # preemptor.  Finish it now rather than re-queueing it.
            job.remaining = 0.0
            self._finish(job)
        else:
            heapq.heappush(self._heap, (self._key(job), job))

    def _on_complete(self, token):
        if token != self._token or self._current is None:
            return  # stale completion from before a preemption
        job = self._current
        self._credit(job.tag, self.env.now - self._segment_start)
        self._current = None
        self._finish(job)
        self._dispatch_next()

    def _finish(self, job):
        self._served[job.tag] = self._served.get(job.tag, 0) + 1
        job.done.succeed()

    def _dispatch_next(self):
        if self._current is None and self._heap:
            _, job = heapq.heappop(self._heap)
            self._start(job)

    def _credit(self, tag, amount):
        if amount > 0:
            self._busy[tag] = self._busy.get(tag, 0.0) + amount
