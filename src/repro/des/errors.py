"""Exception types used by the simulation kernel."""


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event.

    ``Environment.run(until=event)`` attaches a callback to *event* that
    raises this exception; the run loop catches it and returns the
    event's value.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class EmptySchedule(SimulationError):
    """Raised when the event heap runs dry before the run target."""


class SimulationStalled(SimulationError):
    """The run loop stopped making progress before reaching ``until``.

    Raised by :meth:`Environment.run` in two situations:

    * the event heap ran dry before the requested simulation time while
      processes were still alive (every live process is waiting on an
      event that nothing will ever trigger — a modelling deadlock that
      previously returned silently);
    * the optional ``timeout=`` wall-clock budget was exhausted (a hung
      or pathologically slow run).

    Carries a :class:`~repro.des.engine.KernelStats` snapshot in
    :attr:`stats` so the failure is diagnosable post-mortem.
    """

    def __init__(self, message, stats=None):
        if stats is not None:
            message = "{} [kernel: {}]".format(message, stats.as_dict())
        super().__init__(message)
        self.stats = stats


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process receives the interrupt at its current yield
    point and may inspect :attr:`cause` to decide how to react (for
    instance, a transaction aborted by deadlock resolution).
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        """The value passed to :meth:`Process.interrupt`."""
        return self.args[0]
