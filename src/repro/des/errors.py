"""Exception types used by the simulation kernel."""


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event.

    ``Environment.run(until=event)`` attaches a callback to *event* that
    raises this exception; the run loop catches it and returns the
    event's value.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class EmptySchedule(SimulationError):
    """Raised when the event heap runs dry before the run target."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process receives the interrupt at its current yield
    point and may inspect :attr:`cause` to decide how to react (for
    instance, a transaction aborted by deadlock resolution).
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        """The value passed to :meth:`Process.interrupt`."""
        return self.args[0]
