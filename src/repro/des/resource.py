"""A counted FCFS resource (SimPy-style ``Resource``)."""

from repro.des.events import Event


class Request(Event):
    """A claim on one unit of a :class:`Resource`.

    Usable as a context manager so the unit is always given back::

        with resource.request() as req:
            yield req
            ... critical section ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource):
        super().__init__(resource.env)
        self.resource = resource
        resource._enqueue(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.resource.release(self)
        return False


class Resource:
    """*capacity* identical units served in request order.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of concurrent holders allowed (>= 1).
    """

    def __init__(self, env, capacity=1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got {}".format(capacity))
        self.env = env
        self._capacity = capacity
        self._users = set()
        self._waiting = []

    @property
    def capacity(self):
        """Number of units."""
        return self._capacity

    @property
    def count(self):
        """Number of units currently held."""
        return len(self._users)

    @property
    def queue_length(self):
        """Number of requests waiting for a unit."""
        return len(self._waiting)

    def request(self):
        """Ask for one unit; the returned event fires when granted."""
        return Request(self)

    def release(self, request):
        """Give back the unit held by *request*.

        Releasing an ungranted (still waiting) request simply cancels
        it.  Releasing twice is a no-op, so the context-manager form is
        safe even if the body released explicitly.
        """
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        elif request in self._waiting:
            self._waiting.remove(request)

    def _enqueue(self, request):
        if len(self._users) < self._capacity:
            self._users.add(request)
            request.succeed(request)
        else:
            self._waiting.append(request)

    def _grant_next(self):
        while self._waiting and len(self._users) < self._capacity:
            request = self._waiting.pop(0)
            self._users.add(request)
            request.succeed(request)
