"""Structured event tracing.

A :class:`Trace` is an append-only log of ``(time, kind, subject,
details)`` records.  The simulation model emits one record per
transaction lifecycle step (arrival, lock request/grant/denial,
sub-transaction start, completion, ...), which gives users a replayable
account of a run and gives the tests a way to assert causal ordering
invariants that aggregate metrics cannot express.

Tracing is off by default (zero overhead beyond one ``None`` check per
emit site).
"""

from collections import Counter
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    kind: str
    subject: int
    details: dict = field(default_factory=dict)

    def __str__(self):
        extras = " ".join(
            "{}={}".format(key, value) for key, value in self.details.items()
        )
        return "[{:10.3f}] {:<14s} txn#{:<6d} {}".format(
            self.time, self.kind, self.subject, extras
        ).rstrip()


class Trace:
    """An in-memory, optionally bounded event log.

    Parameters
    ----------
    limit:
        Maximum records retained (oldest dropped beyond it); ``0``
        keeps everything.
    """

    def __init__(self, limit=0):
        if limit < 0:
            raise ValueError("limit must be >= 0")
        self.limit = limit
        self._records = []
        self._dropped = 0

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def dropped(self):
        """Records discarded due to the retention limit."""
        return self._dropped

    def emit(self, time, kind, subject, **details):
        """Append one record."""
        self._records.append(TraceRecord(time, kind, subject, details))
        if self.limit and len(self._records) > self.limit:
            del self._records[0]
            self._dropped += 1

    def records(self, kind=None, subject=None):
        """Records filtered by *kind* and/or *subject*."""
        out = self._records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if subject is not None:
            out = [r for r in out if r.subject == subject]
        return list(out)

    def counts(self):
        """Mapping kind → number of records."""
        return dict(Counter(record.kind for record in self._records))

    def timeline(self, subject):
        """The (kind, time) sequence of one subject, in order."""
        return [
            (record.kind, record.time)
            for record in self._records
            if record.subject == subject
        ]

    def format(self, limit=None):
        """Human-readable dump (optionally only the first *limit* rows)."""
        rows = self._records if limit is None else self._records[:limit]
        return "\n".join(str(record) for record in rows)
