"""Structured event tracing.

A :class:`Trace` is an append-only log of ``(time, kind, subject,
details)`` records.  The simulation model emits one record per
transaction lifecycle step (arrival, lock request/grant/denial,
sub-transaction fork, per-device service, join, completion, ...),
which gives users a replayable account of a run and gives the tests a
way to assert causal ordering invariants that aggregate metrics cannot
express.

Tracing is off by default (zero overhead beyond one ``None`` check per
emit site).  :class:`Trace` is the in-memory *ring-buffer* backend of
the :class:`~repro.obs.sinks.TraceSink` protocol; the JSONL file
backend and the schema-versioned export/replay loader live in
:mod:`repro.obs.sinks`.
"""

from collections import Counter, deque
from dataclasses import dataclass, field
from itertools import islice


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    kind: str
    subject: int
    details: dict = field(default_factory=dict)

    def __str__(self):
        extras = " ".join(
            "{}={}".format(key, value) for key, value in self.details.items()
        )
        return "[{:10.3f}] {:<14s} txn#{:<6d} {}".format(
            self.time, self.kind, self.subject, extras
        ).rstrip()


class Trace:
    """An in-memory, optionally bounded event log.

    Bounded traces are backed by a ``deque(maxlen=...)`` so eviction at
    the limit is O(1) per emit (a list's ``del records[0]`` is O(n),
    which turns a long capped trace into a quadratic accident).

    Parameters
    ----------
    limit:
        Maximum records retained (oldest dropped beyond it); ``0``
        keeps everything.
    """

    def __init__(self, limit=0):
        if limit < 0:
            raise ValueError("limit must be >= 0")
        self.limit = limit
        self._records = deque(maxlen=limit or None)
        self._dropped = 0

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def dropped(self):
        """Records discarded due to the retention limit."""
        return self._dropped

    def emit(self, time, kind, subject, **details):
        """Append one record."""
        records = self._records
        if records.maxlen is not None and len(records) == records.maxlen:
            self._dropped += 1
        records.append(TraceRecord(time, kind, subject, details))

    def records(self, kind=None, subject=None):
        """Records filtered by *kind* and/or *subject*."""
        out = self._records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if subject is not None:
            out = [r for r in out if r.subject == subject]
        return list(out)

    def counts(self):
        """Mapping kind → number of records."""
        return dict(Counter(record.kind for record in self._records))

    def timeline(self, subject):
        """The (kind, time) sequence of one subject, in order."""
        return [
            (record.kind, record.time)
            for record in self._records
            if record.subject == subject
        ]

    def format(self, limit=None):
        """Human-readable dump (optionally only the first *limit* rows)."""
        rows = self._records if limit is None else islice(self._records, limit)
        return "\n".join(str(record) for record in rows)
