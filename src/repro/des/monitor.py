"""Statistics collectors for simulation output analysis."""

import math


class Tally:
    """Running count/mean/variance/extremes of observed samples.

    Uses Welford's online algorithm, so it is numerically stable for
    long runs and never stores the samples.
    """

    def __init__(self, name="tally"):
        self.name = name
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    def observe(self, value):
        """Record one sample."""
        value = float(value)
        self._count += 1
        self._total += value
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self):
        """Number of samples observed."""
        return self._count

    @property
    def total(self):
        """Sum of all samples."""
        return self._total

    @property
    def mean(self):
        """Sample mean (``nan`` before any observation)."""
        if self._count == 0:
            return math.nan
        return self._mean

    @property
    def variance(self):
        """Unbiased sample variance (``nan`` with fewer than 2 samples)."""
        if self._count < 2:
            return math.nan
        return self._m2 / (self._count - 1)

    @property
    def stdev(self):
        """Sample standard deviation."""
        variance = self.variance
        return math.sqrt(variance) if variance == variance else math.nan

    @property
    def minimum(self):
        """Smallest sample (``nan`` before any observation)."""
        return self._min if self._count else math.nan

    @property
    def maximum(self):
        """Largest sample (``nan`` before any observation)."""
        return self._max if self._count else math.nan


class TimeWeighted:
    """Time-average of a piecewise-constant signal (e.g. queue length).

    Call :meth:`update` whenever the signal changes; the area under the
    signal is integrated between updates.
    """

    def __init__(self, env, initial=0.0, name="level"):
        self.env = env
        self.name = name
        self._level = float(initial)
        self._last_change = env.now
        self._start = env.now
        self._area = 0.0
        self._max = float(initial)

    def update(self, level):
        """Set the signal to *level* as of the current simulation time."""
        now = self.env.now
        self._area += self._level * (now - self._last_change)
        self._last_change = now
        self._level = float(level)
        if self._level > self._max:
            self._max = self._level

    def increment(self, delta=1.0):
        """Shift the signal by *delta* (convenience for counters)."""
        self.update(self._level + delta)

    @property
    def level(self):
        """Current value of the signal."""
        return self._level

    @property
    def maximum(self):
        """Largest value the signal has taken."""
        return self._max

    def mean(self, until=None):
        """Time-average of the signal from creation until *until* (or now)."""
        end = self.env.now if until is None else until
        if end <= self._start:
            return self._level
        area = self._area + self._level * (end - self._last_change)
        return area / (end - self._start)
