"""A process-oriented discrete-event simulation kernel.

This package is the simulation substrate for the locking-granularity
study.  It provides the same programming model as SimPy (which is not
available in this offline environment): an :class:`Environment` drives an
event heap, generator functions become :class:`Process` instances, and
processes synchronise by yielding :class:`Event` objects such as
:class:`Timeout`, resource requests, or fork/join conditions.

The kernel adds one component that SimPy does not ship directly: a
single-capacity :class:`Server` with preemptive-resume priority service
and per-tag busy-time accounting.  The paper's model charges lock
management work to the same CPUs and disks that serve transactions, at
preemptive priority, and needs the busy time split into "lock" and
"transaction" shares; :class:`Server` implements exactly that.

Example
-------
>>> from repro.des import Environment
>>> env = Environment()
>>> log = []
>>> def clock(env, name, tick):
...     while True:
...         yield env.timeout(tick)
...         log.append((name, env.now))
>>> _ = env.process(clock(env, "fast", 1))
>>> _ = env.process(clock(env, "slow", 2))
>>> env.run(until=4)
>>> log
[('fast', 1.0), ('slow', 2.0), ('fast', 2.0), ('fast', 3.0), ('slow', 4.0), ('fast', 4.0)]
"""

from repro.des.calendar import CalendarEnvironment
from repro.des.engine import (
    Environment,
    KernelStats,
    ProfiledEnvironment,
    available_schedulers,
    scheduler_class,
)
from repro.des.errors import Interrupt, SimulationError, StopSimulation
from repro.des.events import AllOf, AnyOf, Event, Timeout
from repro.des.monitor import Tally, TimeWeighted
from repro.des.process import Process
from repro.des.resource import Request, Resource
from repro.des.rng import RandomStreams
from repro.des.server import Server
from repro.des.store import Store
from repro.des.trace import Trace, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarEnvironment",
    "Environment",
    "Event",
    "Interrupt",
    "KernelStats",
    "Process",
    "ProfiledEnvironment",
    "RandomStreams",
    "Request",
    "Resource",
    "Server",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Tally",
    "Timeout",
    "TimeWeighted",
    "Trace",
    "TraceRecord",
    "available_schedulers",
    "scheduler_class",
]
