"""Calendar-queue scheduler backend: exact-time buckets over a key heap.

Discrete-event workloads in this repo cluster heavily on repeated
timestamps — every transaction in an epoch finishes its CPU slice at
the same instant, backoff retries land on shared grid points, and the
benchmark drains schedule thousands of events on a handful of times.
A binary heap pays ``O(log n)`` sift work per entry even when all of
them share one timestamp.  This backend instead keys a dict of
*exact-time buckets* by timestamp and keeps only the **distinct**
times in a small heap:

* enqueue: one dict probe + list append (amortised O(1)); a pushed
  time enters the key heap only the first time it is seen;
* dequeue: pop the minimum time once, then drain its whole bucket with
  plain list indexing — a single ``list.sort()`` per bucket restores
  the ``(priority, eid)`` order, so the global dispatch order is the
  exact ``(time, priority, eid)`` total order of the heap backend.

"Resizing" is therefore implicit: the bucket array *is* the dict, it
grows and shrinks with the set of distinct pending timestamps, and
there is no width parameter to mistune (the classic calendar-queue
failure mode).  For workloads whose timestamps are nearly all unique
the key heap degenerates to the binary heap plus bucket overhead —
that is why the heap remains the default backend and the calendar is
opt-in per run (``REPRO_KERNEL_SCHED=calendar``).

Two caches keep the common patterns allocation- and probe-free:

* the *active bucket* being drained accepts same-time inserts
  directly; the drain loop notices the length change and re-sorts the
  not-yet-dispatched tail, preserving ``(priority, eid)`` order for
  zero-delay and urgent entries exactly as the heap would;
* the *last insert bucket* is remembered, so bursts of pushes to one
  future instant (the dominant pattern: every process in an epoch
  scheduling t+1) skip the dict probe entirely.
"""

from heapq import heappop, heappush
from sys import getrefcount
from time import perf_counter

from repro.des.engine import Environment, KernelStats
from repro.des.errors import EmptySchedule, SimulationStalled
from repro.des.events import NORMAL, PENDING, Event, Timeout
from repro.des.process import _TICK, Process


class CalendarEnvironment(Environment):
    """:class:`Environment` with the calendar-queue future-event list.

    Constructed directly, via ``Environment(scheduler="calendar")``, or
    via ``REPRO_KERNEL_SCHED=calendar``.  Dispatch order — and
    therefore every simulation result and cache digest — is
    bit-identical to the heap backend; only throughput differs.
    """

    SCHEDULER = "calendar"

    __slots__ = (
        "_buckets",
        "_times",
        "_count",
        "_active",
        "_active_time",
        "_active_i",
        "_active_n",
        "_last_t",
        "_last_b",
    )

    def __init__(self, initial_time=0.0, pool=False, scheduler=None):
        super().__init__(initial_time, pool, scheduler)
        #: time -> [(priority, eid, item), ...] for pending timestamps.
        self._buckets = {}
        #: Min-heap of the distinct times present in ``_buckets``.
        self._times = []
        #: Total pending entries (bucket contents + active remainder).
        self._count = 0
        #: Bucket currently being drained (None between buckets).
        self._active = None
        self._active_time = None
        self._active_i = 0
        #: Length of ``_active`` when it was last sorted; a longer list
        #: means same-time entries arrived mid-drain and the tail needs
        #: a re-sort before the next pop.
        self._active_n = 0
        #: Last insert target (time, bucket) — burst cache.
        self._last_t = None
        self._last_b = None

    # -- queue primitives ----------------------------------------------

    @property
    def heap_depth(self):
        """Events currently scheduled (cheap counter).

        While a bucket is being drained the counter is synced once per
        bucket, so a reading taken from inside an event callback may
        overcount by at most the entries of the current bucket already
        dispatched.
        """
        return self._count

    def _insert(self, t, priority, eid, item):
        """Append an entry to the bucket for time *t* (creating it)."""
        self._count += 1
        if t == self._active_time and self._active is not None:
            # Same-time insert while that bucket drains: the dispatch
            # loop re-sorts the pending tail when it sees the length
            # change, which restores (priority, eid) order among the
            # not-yet-dispatched entries — exactly the heap's order.
            self._active.append((priority, eid, item))
            return
        if t == self._last_t:
            self._last_b.append((priority, eid, item))
            return
        bucket = self._buckets.get(t)
        if bucket is None:
            bucket = [(priority, eid, item)]
            self._buckets[t] = bucket
            heappush(self._times, t)
        else:
            bucket.append((priority, eid, item))
        self._last_t = t
        self._last_b = bucket

    def schedule(self, event, delay=0.0, priority=NORMAL):
        """Put *event* on the calendar to be processed after *delay*."""
        if delay < 0:
            raise ValueError("negative delay {}".format(delay))
        self._insert(self._now + delay, priority, next(self._eid), event)

    def schedule_callback(self, fn, delay=0.0, priority=NORMAL):
        """Schedule a bare callable — no :class:`Event` is allocated."""
        if delay < 0:
            raise ValueError("negative delay {}".format(delay))
        self._insert(self._now + delay, priority, next(self._eid), fn)

    def schedule_tick(self, proc, delay):
        """Schedule a bare-delay process resume (see base class)."""
        if delay < 0:
            raise ValueError("negative delay {}".format(delay))
        eid = next(self._eid)
        proc._target = _TICK
        proc._tick_eid = eid
        self._insert(self._now + delay, NORMAL, eid, proc)

    def timeout(self, delay, value=None):
        """Create (or recycle) a :class:`Timeout` firing after *delay*."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError("negative delay {}".format(delay))
            self._timeout_reuses += 1
            t = pool.pop()
            t._delay = delay
            t._value = value
            self._insert(self._now + delay, NORMAL, next(self._eid), t)
            return t
        self._timeout_creates += 1
        # Timeout.__init__ routes through self.schedule (virtual).
        return Timeout(self, delay, value)

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if none."""
        active = self._active
        if active is not None and self._active_i < len(active):
            return self._active_time
        if self._times:
            return self._times[0]
        return float("inf")

    def _next_entry(self):
        """Pop the globally next ``(when, priority, eid, item)`` entry."""
        active = self._active
        if active is not None:
            i = self._active_i
            if len(active) != self._active_n:
                if i:
                    del active[:i]
                    i = 0
                active.sort()
                self._active_i = i
                self._active_n = len(active)
            if i < len(active):
                self._active_i = i + 1
                self._count -= 1
                priority, eid, item = active[i]
                active[i] = None  # free the entry tuple (see _dispatch)
                return self._active_time, priority, eid, item
            self._active = None
        if not self._times:
            raise EmptySchedule("no scheduled events")
        t = heappop(self._times)
        bucket = self._buckets.pop(t)
        if self._last_t == t:
            self._last_t = None  # bucket left the dict; drop the cache
        bucket.sort()
        self._active = bucket
        self._active_time = t
        self._active_i = 1
        self._active_n = len(bucket)
        self._count -= 1
        priority, eid, item = bucket[0]
        bucket[0] = None  # free the entry tuple (see _dispatch)
        return t, priority, eid, item

    def step(self):
        """Process the next scheduled event (or bare callback).

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        when, _priority, eid, event = self._next_entry()
        self._consume(when, eid, event)

    # -- hot loop ------------------------------------------------------

    def _dispatch(self, stop_at, timeout):
        """The calendar hot loop: activate a bucket, drain it in order.

        This mirrors :meth:`Environment._dispatch` entry-for-entry (the
        tick fast path, bare-callback branch, single-waiter fast path
        and free-list recycler are the same code); only the queue
        bookkeeping around them differs.  Per-entry costs the heap pays
        (sift-down on every pop) are replaced by one key-heap pop and
        one sort per *bucket*, and the stop/deadline bounds checks run
        per bucket instead of per entry where possible.
        """
        buckets = self._buckets
        times = self._times
        pooling = self._pool
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        getrefs = getrefcount
        nexteid = self._eid.__next__
        deadline = None if timeout is None else perf_counter() + timeout
        dispatched = 0
        try:
            while True:
                active = self._active
                if active is None:
                    if not times or times[0] > stop_at:
                        break
                    t = heappop(times)
                    bucket = buckets.pop(t)
                    if self._last_t == t:
                        self._last_t = None
                    bucket.sort()
                    self._active = active = bucket
                    self._active_time = t
                    self._active_i = 0
                    self._active_n = len(bucket)
                now = self._now = self._active_time
                i = self._active_i
                n = self._active_n
                synced = dispatched
                inserted = 0
                # Burst cache in locals for the tick requeue path; any
                # escape into user code (callbacks, _resume) may move
                # the instance-level cache, so those branches re-sync.
                last_t = self._last_t
                last_b = self._last_b
                try:
                    while True:
                        m = len(active)
                        if m != n:
                            # Same-time entries arrived mid-drain:
                            # drop the consumed head and re-sort the
                            # pending tail into (priority, eid) order.
                            if i:
                                del active[:i]
                                i = 0
                            active.sort()
                            n = m = len(active)
                        if i >= m:
                            break
                        _, eid, event = active[i]
                        i += 1
                        dispatched += 1
                        if (
                            event.__class__ is Process
                            and event._target is _TICK
                        ):
                            # Tick fast path (see Environment._dispatch).
                            if event._tick_eid == eid:
                                try:
                                    delay = event._generator.send(None)
                                except StopIteration as stop:
                                    event._finish_stop(stop)
                                    last_t = self._last_t
                                    last_b = self._last_b
                                except BaseException as error:
                                    event._finish_error(error)
                                    last_t = self._last_t
                                    last_b = self._last_b
                                else:
                                    dcls = delay.__class__
                                    if dcls is float or dcls is int:
                                        if delay < 0:
                                            raise ValueError(
                                                "negative delay {}".format(
                                                    delay
                                                )
                                            )
                                        eid = nexteid()
                                        event._tick_eid = eid
                                        t2 = now + delay
                                        inserted += 1
                                        if t2 == last_t:
                                            last_b.append(
                                                (NORMAL, eid, event)
                                            )
                                        elif t2 == now:
                                            active.append(
                                                (NORMAL, eid, event)
                                            )
                                        else:
                                            b2 = buckets.get(t2)
                                            if b2 is None:
                                                b2 = [(NORMAL, eid, event)]
                                                buckets[t2] = b2
                                                heappush(times, t2)
                                            else:
                                                b2.append(
                                                    (NORMAL, eid, event)
                                                )
                                            self._last_t = last_t = t2
                                            self._last_b = last_b = b2
                                    else:
                                        event._resume(None, delay)
                                        last_t = self._last_t
                                        last_b = self._last_b
                            # else: stale tick — dropped silently.
                        else:
                            # Free the entry tuple (a heap pop would
                            # have): the recycler's refcount==2 probe
                            # below must not see the bucket's
                            # reference.  Tick entries skip this — they
                            # are never recycled, and the consumed head
                            # active[:i] is deleted before any re-sort
                            # either way.
                            active[i - 1] = None
                            try:
                                callbacks = event.callbacks
                            except AttributeError:  # a bare callback
                                event()
                            else:
                                event.callbacks = None
                                waiter = event._waiter
                                if waiter is not None:
                                    event._waiter = None
                                    waiter(event)
                                for callback in callbacks:
                                    callback(event)
                                if not event._ok and not event._defused:
                                    raise event._value
                                if pooling:
                                    # Same recycling contract as the
                                    # heap loop: refcount == 2 proves
                                    # the object is unreferenced.
                                    if event.__class__ is Timeout:
                                        if getrefs(event) == 2:
                                            callbacks.clear()
                                            event.callbacks = callbacks
                                            event._value = PENDING
                                            event._defused = False
                                            timeout_pool.append(event)
                                    elif (
                                        event.__class__ is Event
                                        and getrefs(event) == 2
                                    ):
                                        callbacks.clear()
                                        event.callbacks = callbacks
                                        event._value = PENDING
                                        event._ok = None
                                        event._defused = False
                                        event_pool.append(event)
                        if deadline is not None and not dispatched & 1023:
                            if perf_counter() >= deadline:
                                raise SimulationStalled(
                                    "wall-clock timeout ({}s) exhausted "
                                    "at t={}".format(timeout, self._now),
                                    stats=KernelStats(
                                        events_dispatched=self._dispatched
                                        + dispatched,
                                        heap_length=self._count
                                        + inserted
                                        - (dispatched - synced),
                                    ),
                                )
                finally:
                    # Exception-safe: a callback raising mid-bucket
                    # leaves the remainder resumable by step()/run().
                    self._active_i = i
                    self._active_n = n
                    self._count += inserted - (dispatched - synced)
                self._active = None
        finally:
            self._dispatched += dispatched
