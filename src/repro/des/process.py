"""Generator-based simulation processes."""

from repro.des.errors import Interrupt, SimulationError
from repro.des.events import URGENT, Event


class Process(Event):
    """Wraps a generator so it runs as a simulation process.

    The generator yields :class:`Event` objects; the process suspends
    until each yielded event is processed, then resumes with the event's
    value (or the event's exception thrown in, if it failed).

    A process is itself an event: it triggers with the generator's
    return value when the generator finishes, so processes can wait on
    one another or be joined with :class:`~repro.des.events.AllOf`.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env, generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError("Process requires a generator, got {!r}".format(generator))
        super().__init__(env)
        self._generator = generator
        #: The event this process currently waits on (None if running or
        #: not yet started).
        self._target = None
        env._live_procs += 1
        from repro.des.events import Initialize

        Initialize(env, self)

    def __repr__(self):
        return "<Process({}) object at {:#x}>".format(
            getattr(self._generator, "__name__", "?"), id(self)
        )

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at its yield point.

        The interrupt is delivered as an urgent event at the current
        instant.  Interrupting a finished process is an error; a process
        cannot interrupt itself.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, delay=0, priority=URGENT)

    def _resume(self, event):
        """Advance the generator with the outcome of *event*."""
        # An interrupt may arrive while we were waiting on another
        # event; detach from that event so its later processing does
        # not resume us twice.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        while True:
            try:
                if event is None or event._ok:
                    next_event = self._generator.send(
                        None if event is None else event.value
                    )
                else:
                    event.defuse()
                    next_event = self._generator.throw(event.value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._live_procs -= 1
                self.env.schedule(self, delay=0)
                return
            except Interrupt:
                # The process let an interrupt escape: treat it as an
                # unhandled failure of the process event.
                self.env._live_procs -= 1
                raise
            except BaseException as error:
                self._ok = False
                self._value = error
                self.env._live_procs -= 1
                self.env.schedule(self, delay=0)
                return
            if not isinstance(next_event, Event):
                raise SimulationError(
                    "process yielded a non-event: {!r}".format(next_event)
                )
            if next_event.processed:
                # Already done: loop and feed its value immediately.
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            self._target = next_event
            return
