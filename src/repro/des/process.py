"""Generator-based simulation processes."""

from repro.des.errors import Interrupt, SimulationError
from repro.des.events import URGENT, Event, Timeout


class _TickSentinel:
    """Marker stored in ``Process._target`` while the process sleeps on
    a bare delay (``yield 1.5``) instead of a real event.

    It quacks just enough like an event for :meth:`Process._resume`'s
    detach branch (``_waiter``/``callbacks`` both ``None``), so an
    interrupt delivered during a bare-delay sleep detaches cleanly: the
    resume path replaces ``_target``, which invalidates the pending
    tick entry (the dispatcher double-checks ``_tick_eid``).
    """

    __slots__ = ()
    _waiter = None
    callbacks = None

    def __repr__(self):
        return "<TICK>"


#: The single tick sentinel (identity-compared everywhere).
_TICK = _TickSentinel()

#: Sentinel for "no staged yield" in :meth:`Process._resume`.
_NO_YIELD = object()


class Process(Event):
    """Wraps a generator so it runs as a simulation process.

    The generator yields :class:`Event` objects; the process suspends
    until each yielded event is processed, then resumes with the event's
    value (or the event's exception thrown in, if it failed).

    A generator may also yield a bare non-negative ``float`` or ``int``
    delay — exactly equivalent to ``yield env.timeout(delay)`` (the
    process resumes with ``None`` after *delay* time units, interrupts
    included) but with no event allocated at all: the kernel schedules
    the process itself as a *tick* entry and resumes the generator
    straight from the dispatch loop.  The tick entry consumes the same
    event id the equivalent Timeout would have, so switching a call
    site between the two forms leaves the kernel's dispatch order (and
    therefore every simulation result) bit-identical.

    A process is itself an event: it triggers with the generator's
    return value when the generator finishes, so processes can wait on
    one another or be joined with :class:`~repro.des.events.AllOf`.
    """

    __slots__ = ("_generator", "_target", "_resume_cb", "_tick_eid")

    def __init__(self, env, generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError("Process requires a generator, got {!r}".format(generator))
        super().__init__(env)
        self._generator = generator
        #: The event this process currently waits on (None if running or
        #: not yet started; :data:`_TICK` during a bare-delay sleep).
        self._target = None
        #: The resume callback is bound once: every yield re-registers
        #: it, and ``self._resume`` would allocate a fresh bound method
        #: per access on the hottest path in the kernel.
        self._resume_cb = self._resume
        #: Entry id of the pending tick (bare-delay sleep).  The
        #: dispatcher skips tick entries whose eid no longer matches —
        #: an interrupt resumed the process first, making them stale.
        self._tick_eid = -1
        env._live_procs += 1
        from repro.des.events import Initialize

        Initialize(env, self)

    def __repr__(self):
        return "<Process({}) object at {:#x}>".format(
            getattr(self._generator, "__name__", "?"), id(self)
        )

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at its yield point.

        The interrupt is delivered as an urgent event at the current
        instant.  Interrupting a finished process is an error; a process
        cannot interrupt itself.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume_cb)
        self.env.schedule(interrupt_event, delay=0, priority=URGENT)

    def _resume(self, event, yielded=_NO_YIELD):
        """Advance the generator with the outcome of *event*.

        When *yielded* is given, the generator has already produced
        that value (the dispatch loop's tick fast path called ``send``
        itself and hit a non-delay yield); the loop below then starts
        by handling it instead of advancing the generator again.
        """
        # An interrupt may arrive while we were waiting on another
        # event; detach from that event so its later processing does
        # not resume us twice.  (During a bare-delay sleep the target
        # is the _TICK sentinel: both detach probes are no-ops, and
        # replacing _target below is what marks the pending tick entry
        # stale for the dispatcher.)
        if self._target is not None and self._target is not event:
            target = self._target
            if target._waiter is self._resume_cb:
                target._waiter = None
            elif target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume_cb)
                except ValueError:
                    pass
        self._target = None
        while True:
            if yielded is _NO_YIELD:
                try:
                    if event is None or event._ok:
                        next_event = self._generator.send(
                            None if event is None else event.value
                        )
                    else:
                        event.defuse()
                        next_event = self._generator.throw(event.value)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    self.env._live_procs -= 1
                    self.env.schedule(self, delay=0)
                    return
                except Interrupt:
                    # The process let an interrupt escape: treat it as an
                    # unhandled failure of the process event.
                    self.env._live_procs -= 1
                    raise
                except BaseException as error:
                    self._ok = False
                    self._value = error
                    self.env._live_procs -= 1
                    self.env.schedule(self, delay=0)
                    return
            else:
                next_event = yielded
                yielded = _NO_YIELD
            cls = next_event.__class__
            if cls is float or cls is int:
                # Bare-delay sleep: schedule the process itself as a
                # tick entry (no event object).  The eid drawn here
                # lands at exactly the point in the id stream where
                # ``env.timeout(delay)`` would have drawn it (inside
                # the yield expression, i.e. still within this resume),
                # so both spellings dispatch identically.
                self.env.schedule_tick(self, next_event)
                return
            if cls is Timeout:
                # Fast path for the ubiquitous ``yield env.timeout(d)``:
                # a freshly created timeout nobody else watches gets its
                # single waiter stored directly on the event, skipping
                # the generic callback list (one append + one list
                # iteration per event saved).  The run loop fires the
                # waiter before any listed callbacks, which is exactly
                # the order an immediate append would have produced.
                if next_event._waiter is None and not next_event.callbacks:
                    if next_event.callbacks is None:
                        event = next_event
                        continue  # already processed: feed it back in
                    next_event._waiter = self._resume_cb
                    self._target = next_event
                    return
            elif not isinstance(next_event, Event):
                raise SimulationError(
                    "process yielded a non-event: {!r}".format(next_event)
                )
            if next_event.processed:
                # Already done: loop and feed its value immediately.
                event = next_event
                continue
            next_event.callbacks.append(self._resume_cb)
            self._target = next_event
            return

    # -- dispatch-loop hooks (tick fast path) ---------------------------

    def _finish_stop(self, stop):
        """Generator returned (StopIteration) from the tick fast path."""
        self._target = None
        self._ok = True
        self._value = stop.value
        self.env._live_procs -= 1
        self.env.schedule(self, delay=0)

    def _finish_error(self, error):
        """Generator raised from the tick fast path (mirrors _resume)."""
        self._target = None
        if isinstance(error, Interrupt):
            # The process let an interrupt escape — same treatment as
            # the ``except Interrupt`` arm in :meth:`_resume`.
            self.env._live_procs -= 1
            raise error
        self._ok = False
        self._value = error
        self.env._live_procs -= 1
        self.env.schedule(self, delay=0)
