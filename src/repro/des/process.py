"""Generator-based simulation processes."""

from repro.des.errors import Interrupt, SimulationError
from repro.des.events import URGENT, Event, Timeout


class Process(Event):
    """Wraps a generator so it runs as a simulation process.

    The generator yields :class:`Event` objects; the process suspends
    until each yielded event is processed, then resumes with the event's
    value (or the event's exception thrown in, if it failed).

    A process is itself an event: it triggers with the generator's
    return value when the generator finishes, so processes can wait on
    one another or be joined with :class:`~repro.des.events.AllOf`.
    """

    __slots__ = ("_generator", "_target", "_resume_cb")

    def __init__(self, env, generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError("Process requires a generator, got {!r}".format(generator))
        super().__init__(env)
        self._generator = generator
        #: The event this process currently waits on (None if running or
        #: not yet started).
        self._target = None
        #: The resume callback is bound once: every yield re-registers
        #: it, and ``self._resume`` would allocate a fresh bound method
        #: per access on the hottest path in the kernel.
        self._resume_cb = self._resume
        env._live_procs += 1
        from repro.des.events import Initialize

        Initialize(env, self)

    def __repr__(self):
        return "<Process({}) object at {:#x}>".format(
            getattr(self._generator, "__name__", "?"), id(self)
        )

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at its yield point.

        The interrupt is delivered as an urgent event at the current
        instant.  Interrupting a finished process is an error; a process
        cannot interrupt itself.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume_cb)
        self.env.schedule(interrupt_event, delay=0, priority=URGENT)

    def _resume(self, event):
        """Advance the generator with the outcome of *event*."""
        # An interrupt may arrive while we were waiting on another
        # event; detach from that event so its later processing does
        # not resume us twice.
        if self._target is not None and self._target is not event:
            target = self._target
            if target._waiter is self._resume_cb:
                target._waiter = None
            elif target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume_cb)
                except ValueError:
                    pass
        self._target = None
        while True:
            try:
                if event is None or event._ok:
                    next_event = self._generator.send(
                        None if event is None else event.value
                    )
                else:
                    event.defuse()
                    next_event = self._generator.throw(event.value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._live_procs -= 1
                self.env.schedule(self, delay=0)
                return
            except Interrupt:
                # The process let an interrupt escape: treat it as an
                # unhandled failure of the process event.
                self.env._live_procs -= 1
                raise
            except BaseException as error:
                self._ok = False
                self._value = error
                self.env._live_procs -= 1
                self.env.schedule(self, delay=0)
                return
            if next_event.__class__ is Timeout:
                # Fast path for the ubiquitous ``yield env.timeout(d)``:
                # a freshly created timeout nobody else watches gets its
                # single waiter stored directly on the event, skipping
                # the generic callback list (one append + one list
                # iteration per event saved).  The run loop fires the
                # waiter before any listed callbacks, which is exactly
                # the order an immediate append would have produced.
                if next_event._waiter is None and not next_event.callbacks:
                    if next_event.callbacks is None:
                        event = next_event
                        continue  # already processed: feed it back in
                    next_event._waiter = self._resume_cb
                    self._target = next_event
                    return
            elif not isinstance(next_event, Event):
                raise SimulationError(
                    "process yielded a non-event: {!r}".format(next_event)
                )
            if next_event.processed:
                # Already done: loop and feed its value immediately.
                event = next_event
                continue
            next_event.callbacks.append(self._resume_cb)
            self._target = next_event
            return
