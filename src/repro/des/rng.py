"""Named, reproducible random-number streams.

Simulation studies need independent random streams per purpose
(transaction sizes, conflict draws, partition choices, ...) so that
changing how one stream is consumed does not perturb the others — the
classic common-random-numbers discipline for variance reduction across
configurations.  :class:`RandomStreams` derives each named stream's
seed from a master seed with SHA-256, giving stable, well-separated
streams without any global state.
"""

import hashlib
import random


class RandomStreams:
    """A factory of named, independently seeded ``random.Random`` streams.

    Parameters
    ----------
    seed:
        Master seed.  Two factories with the same seed produce
        identical streams for identical names.

    Example
    -------
    >>> streams = RandomStreams(42)
    >>> a = streams.stream("sizes")
    >>> b = RandomStreams(42).stream("sizes")
    >>> a.random() == b.random()
    True
    """

    def __init__(self, seed=0):
        self._seed = seed

    @property
    def seed(self):
        """The master seed this factory derives streams from."""
        return self._seed

    def stream(self, *names):
        """Return a ``random.Random`` seeded from the master seed and *names*."""
        return random.Random(self._derive(names))

    def spawn(self, *names):
        """Return a child factory; its streams are disjoint from ours."""
        return RandomStreams(self._derive(names))

    def _derive(self, names):
        digest = hashlib.sha256()
        digest.update(repr(self._seed).encode("utf-8"))
        for name in names:
            digest.update(b"\x00")
            digest.update(repr(name).encode("utf-8"))
        return int.from_bytes(digest.digest()[:8], "big")
