"""Core event types for the simulation kernel.

An :class:`Event` moves through three states:

``pending``
    Created but not yet triggered; it holds no value.
``triggered``
    :meth:`Event.succeed` or :meth:`Event.fail` was called; the event is
    on the environment's heap and will be processed at its scheduled
    time.
``processed``
    The environment popped the event and ran its callbacks.

Processes synchronise by yielding events; the kernel resumes the
process when the yielded event is processed.
"""

from repro.des.errors import SimulationError

#: Sentinel for "no value yet"; distinguishes a pending event from one
#: that succeeded with ``None``.
PENDING = object()

#: Default scheduling priority.  Events scheduled at the same time are
#: processed in (priority, insertion order).  Urgent events (e.g.
#: process initialisation) use :data:`URGENT` so they run before
#: ordinary events at the same instant.
NORMAL = 1
URGENT = 0


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The :class:`~repro.des.engine.Environment` the event belongs to.
    """

    # Events are allocated by the million on the simulation hot path;
    # __slots__ drops the per-instance dict (smaller, faster attribute
    # access).  Subclasses must declare their own __slots__ too.
    #
    # ``_waiter`` is the single-waiter fast path: when exactly one
    # process waits on a Timeout (the ubiquitous ``yield env.timeout(d)``
    # pattern), its bound resume callback is stored here instead of in
    # the ``callbacks`` list, and the run loop invokes it directly —
    # before the list, preserving the append order the generic path
    # would have produced.
    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_waiter")

    def __init__(self, env):
        self.env = env
        #: Callables invoked with this event when it is processed.  Set
        #: to ``None`` once processed; appending afterwards is an error.
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._waiter = None

    def __repr__(self):
        return "<{} object at {:#x}>".format(type(self).__name__, id(self))

    @property
    def triggered(self):
        """True once the event has a value and is (or was) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self):
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded; only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self):
        """The success value or failure exception of the event."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value=None, priority=NORMAL):
        """Trigger the event as successful with an optional *value*."""
        if self.triggered:
            raise SimulationError("event {!r} already triggered".format(self))
        self._ok = True
        self._value = value
        self.env.schedule(self, delay=0, priority=priority)
        return self

    def fail(self, exception, priority=NORMAL):
        """Trigger the event as failed with *exception*.

        Waiting processes receive the exception at their yield point.
        A failed event nobody waits on raises at the end of the step
        unless :meth:`defused` is set.
        """
        if self.triggered:
            raise SimulationError("event {!r} already triggered".format(self))
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception, got {!r}".format(exception))
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay=0, priority=priority)
        return self

    def defuse(self):
        """Mark a failed event as handled so it does not escalate."""
        self._defused = True


class Timeout(Event):
    """An event that triggers *delay* time units after creation."""

    __slots__ = ("_delay",)

    def __init__(self, env, delay, value=None):
        # Timeouts dominate event allocation; the base __init__ is
        # inlined here (one call frame saved per timeout) and the
        # delay check is left to Environment.schedule.
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self._waiter = None
        self._delay = delay
        env.schedule(self, delay=delay)

    def __repr__(self):
        return "<Timeout({}) object at {:#x}>".format(self._delay, id(self))


class Initialize(Event):
    """Starts a newly created process at the current instant."""

    __slots__ = ()

    def __init__(self, env, process):
        super().__init__(env)
        self.callbacks.append(process._resume_cb)
        self._ok = True
        self._value = None
        env.schedule(self, delay=0, priority=URGENT)


class Condition(Event):
    """Base for fork/join events over a set of child events.

    The condition triggers when :meth:`_check` says the accumulated
    outcomes satisfy it.  A failing child fails the whole condition
    (the child's exception propagates).
    """

    __slots__ = ("_events", "_count")

    def __init__(self, env, events):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        if not self._events:
            self.succeed(self._build_value())
            return
        for event in self._events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event):
        if not event.ok:
            # Defuse even when the condition already triggered: a second
            # failing child (e.g. the CPU and disk halves of a node both
            # killed by a processor crash) must not escalate out of the
            # run loop once the first failure decided the condition.
            event.defuse()
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._count += 1
        if self._check():
            self.succeed(self._build_value())

    def _check(self):
        raise NotImplementedError

    def _build_value(self):
        """Values of children that already *occurred*, in child order.

        A Timeout is triggered (has a value) from creation, but it has
        not happened until processed — only processed children count,
        so an AnyOf's value contains exactly the events that fired by
        the time the condition did.
        """
        return [e.value for e in self._events if e.processed and e.ok]


class AllOf(Condition):
    """Triggers when every child event has succeeded (a join)."""

    __slots__ = ()

    def _check(self):
        return self._count == len(self._events)


class AnyOf(Condition):
    """Triggers as soon as any child event succeeds."""

    __slots__ = ()

    def _check(self):
        return self._count >= 1
