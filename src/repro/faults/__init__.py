"""Fault injection: seeded fault plans, injector, and backoff policies.

See DESIGN.md ("Fault model") for what this extends beyond the 1991
paper.  The package is inert unless a run is given an enabled
:class:`FaultPlan` — without one, results are bit-identical to a
build without this package.
"""

from repro.faults.backoff import (
    POLICIES,
    BackoffPolicy,
    ExponentialBackoff,
    FixedUniformBackoff,
    FullJitterBackoff,
    JitteredBackoff,
    make_backoff_policy,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CrashSpec,
    FaultPlan,
    LinkDelaySpec,
    PartitionSpec,
    SlowdownSpec,
    StallSpec,
)

__all__ = [
    "POLICIES",
    "BackoffPolicy",
    "CrashSpec",
    "ExponentialBackoff",
    "FaultInjector",
    "FaultPlan",
    "FixedUniformBackoff",
    "FullJitterBackoff",
    "JitteredBackoff",
    "LinkDelaySpec",
    "PartitionSpec",
    "SlowdownSpec",
    "StallSpec",
    "make_backoff_policy",
]
