"""Pluggable retry-backoff policies.

The model uses a backoff delay in two places: after an incremental
(claim-as-needed) transaction is aborted as a deadlock victim, and
after a transaction loses a sub-transaction to a crashed processor
(fault injection).  Both draw from a policy object so experiments can
swap the delay law without touching the model.

Every policy draws **exactly one** ``rng.uniform(0.0, 1.0)`` variate
per delay, regardless of the attempt number.  That keeps the random
stream consumption identical across policies, so switching the policy
changes delays but never desynchronises the other streams — and the
default :class:`FixedUniformBackoff` consumes the stream exactly as
the pre-seam inline ``rng.uniform(0.0, 1.0)`` call did, preserving
bit-identical results for existing runs.
"""

#: Registry of constructable policies for CLI / config use.
POLICIES = ("uniform", "exponential", "jittered", "full-jitter")


class BackoffPolicy:
    """Base class: maps (rng, attempt) to a non-negative delay."""

    name = "base"

    def delay(self, rng, attempt):
        """Delay before retry number *attempt* (0-based).

        Must draw exactly one variate from *rng*.
        """
        raise NotImplementedError

    def __repr__(self):
        return "<{}>".format(type(self).__name__)


class FixedUniformBackoff(BackoffPolicy):
    """The paper-era default: uniform on ``[0, width)``, flat in attempt."""

    name = "uniform"

    def __init__(self, width=1.0):
        if width <= 0:
            raise ValueError("width must be > 0, got {}".format(width))
        self.width = float(width)

    def delay(self, rng, attempt):
        return rng.uniform(0.0, self.width)


class ExponentialBackoff(BackoffPolicy):
    """Deterministic exponential growth: ``min(base * 2**attempt, cap)``.

    The mandatory variate draw is discarded so stream consumption
    matches the other policies.
    """

    name = "exponential"

    def __init__(self, base=0.5, cap=16.0):
        if base <= 0 or cap <= 0:
            raise ValueError(
                "base and cap must be > 0, got base={} cap={}".format(base, cap)
            )
        self.base = float(base)
        self.cap = float(cap)

    def delay(self, rng, attempt):
        rng.uniform(0.0, 1.0)  # keep stream consumption uniform
        return min(self.base * (2.0 ** attempt), self.cap)


class JitteredBackoff(BackoffPolicy):
    """Full-jitter exponential: uniform on ``[0, min(base*2**attempt, cap))``."""

    name = "jittered"

    def __init__(self, base=0.5, cap=16.0):
        if base <= 0 or cap <= 0:
            raise ValueError(
                "base and cap must be > 0, got base={} cap={}".format(base, cap)
            )
        self.base = float(base)
        self.cap = float(cap)

    def delay(self, rng, attempt):
        return rng.uniform(0.0, min(self.base * (2.0 ** attempt), self.cap))


class FullJitterBackoff(BackoffPolicy):
    """AWS-style "full jitter": uniform on ``[0, min(base*2**attempt, cap))``.

    The formulation from the AWS Architecture Blog's "Exponential
    Backoff and Jitter": ``sleep = random_between(0, min(cap, base *
    2**attempt))``.  Functionally the same law as
    :class:`JitteredBackoff` but with the blog's conventional defaults
    (``base=1.0``, ``cap=32.0``), registered under its widely known
    name so configs and CLI flags can ask for it directly.  It is the
    recommended policy for distributed commit retries, where many
    coordinators backing off in lockstep would otherwise re-collide.
    """

    name = "full-jitter"

    def __init__(self, base=1.0, cap=32.0):
        if base <= 0 or cap <= 0:
            raise ValueError(
                "base and cap must be > 0, got base={} cap={}".format(base, cap)
            )
        self.base = float(base)
        self.cap = float(cap)

    def delay(self, rng, attempt):
        return rng.uniform(0.0, min(self.base * (2.0 ** attempt), self.cap))


def make_backoff_policy(name, **kwargs):
    """Build a policy by registry name (see :data:`POLICIES`)."""
    if name == "uniform":
        return FixedUniformBackoff(**kwargs)
    if name == "exponential":
        return ExponentialBackoff(**kwargs)
    if name == "jittered":
        return JitteredBackoff(**kwargs)
    if name == "full-jitter":
        return FullJitterBackoff(**kwargs)
    raise ValueError(
        "unknown backoff policy {!r}; expected one of {}".format(name, POLICIES)
    )
