"""Seeded fault injector: turns a plan into scheduled fault processes.

The injector owns its own :class:`~repro.des.rng.RandomStreams`
instance, with one named stream per fault process (for example
``fault_crash[0]@2`` for crash spec 0 acting on node 2).  Two
consequences:

* a given (plan, seed) pair yields an identical fault schedule on
  every run, independent of what the workload is doing;
* the model's own streams are never touched, so enabling faults
  perturbs the simulation only through the faults themselves.
"""

from repro.des.rng import RandomStreams


class FaultInjector:
    """Drives the fault processes described by a plan.

    Parameters
    ----------
    env:
        The run's environment.
    machine:
        The run's :class:`~repro.engine.machine.Machine`.
    plan:
        A :class:`~repro.faults.plan.FaultPlan`.
    seed:
        Fallback seed when the plan carries none (normally the run's
        own seed, so one seed reproduces workload *and* faults).
    trace:
        Optional trace sink; fault transitions are emitted as system
        events (subject 0): ``proc_crash``, ``proc_recover``,
        ``disk_slow``, ``disk_recover``, ``lockmgr_stall``,
        ``lockmgr_resume``.
    """

    def __init__(self, env, machine, plan, seed, trace=None):
        self.env = env
        self.machine = machine
        self.plan = plan
        self.trace = trace
        #: Optional live-metrics bundle (set by the model after
        #: construction); fault transitions then count by kind.
        self.metrics = None
        #: Optional cluster network (set by the model for distributed
        #: runs); partition/link-delay specs are skipped without one.
        self.network = None
        self._streams = RandomStreams(plan.seed if plan.seed is not None else seed)
        self.crashes_injected = 0
        self.jobs_killed = 0

    def install(self):
        """Start one process per (spec, target) pair."""
        for si, spec in enumerate(self.plan.crashes):
            for node in self._targets(spec):
                rng = self._streams.stream("fault_crash[{}]@{}".format(si, node))
                self.env.process(self._crash_loop(spec, node, rng))
        for si, spec in enumerate(self.plan.disk_slowdowns):
            for node in self._targets(spec):
                rng = self._streams.stream("fault_disk[{}]@{}".format(si, node))
                self.env.process(self._slowdown_loop(spec, node, rng))
        for si, spec in enumerate(self.plan.lock_stalls):
            rng = self._streams.stream("fault_lock[{}]".format(si))
            self.env.process(self._stall_loop(spec, rng))
        if self.network is not None and self.network.nnodes > 1:
            for si, spec in enumerate(self.plan.partitions):
                rng = self._streams.stream("fault_partition[{}]".format(si))
                self.env.process(self._partition_loop(spec, rng))
            for si, spec in enumerate(self.plan.link_delays):
                rng = self._streams.stream("fault_link[{}]".format(si))
                self.env.process(self._link_delay_loop(spec, rng))

    def _targets(self, spec):
        if spec.processors is None:
            return range(self.machine.npros)
        return [i for i in spec.processors if 0 <= i < self.machine.npros]

    def _emit(self, kind, **details):
        if self.metrics is not None:
            self.metrics.note_fault(kind)
        if self.trace is not None:
            self.trace.emit(self.env.now, kind, 0, **details)

    # -- fault processes -------------------------------------------------

    def _crash_loop(self, spec, node, rng):
        if spec.first_failure_after > 0:
            yield spec.first_failure_after
        while True:
            yield rng.expovariate(1.0 / spec.mttf)
            killed = self.machine.crash(node)
            self.crashes_injected += 1
            self.jobs_killed += killed
            self._emit("proc_crash", node=node, jobs_killed=killed)
            yield rng.expovariate(1.0 / spec.mttr)
            self.machine.recover(node)
            self._emit("proc_recover", node=node)

    def _slowdown_loop(self, spec, node, rng):
        disk = self.machine[node].disk
        while True:
            yield rng.expovariate(1.0 / spec.mtbf)
            disk.set_scale(spec.factor)
            self._emit("disk_slow", node=node, factor=spec.factor)
            yield rng.expovariate(1.0 / spec.duration)
            disk.set_scale(1.0)
            self._emit("disk_recover", node=node)

    def _stall_loop(self, spec, rng):
        while True:
            yield rng.expovariate(1.0 / spec.mtbf)
            self.machine.set_lock_scale(spec.factor)
            self._emit("lockmgr_stall", factor=spec.factor)
            yield rng.expovariate(1.0 / spec.duration)
            self.machine.set_lock_scale(1.0)
            self._emit("lockmgr_resume")

    def _random_split(self, rng):
        """A seeded two-way split with both sides non-empty."""
        sites = rng.sample(range(self.network.nnodes), self.network.nnodes)
        cut = rng.randrange(1, self.network.nnodes)
        return (tuple(sites[:cut]), tuple(sites[cut:]))

    def _partition_loop(self, spec, rng):
        if spec.first_after > 0:
            yield spec.first_after
        while True:
            yield rng.expovariate(1.0 / spec.mtbf)
            groups = spec.groups if spec.groups is not None else self._random_split(rng)
            self.network.partition(groups)
            self._emit("partition", groups=[sorted(g) for g in groups])
            yield rng.expovariate(1.0 / spec.duration)
            self.network.heal()
            self._emit("heal")

    def _link_delay_loop(self, spec, rng):
        links = spec.links
        while True:
            yield rng.expovariate(1.0 / spec.mtbf)
            if links is None:
                self.network.set_global_delay(spec.extra)
            else:
                for a, b in links:
                    self.network.set_link_delay(a, b, spec.extra)
            self._emit("link_delay", extra=spec.extra)
            yield rng.expovariate(1.0 / spec.duration)
            if links is None:
                self.network.set_global_delay(0.0)
            else:
                for a, b in links:
                    self.network.set_link_delay(a, b, 0.0)
            self._emit("link_recover")
