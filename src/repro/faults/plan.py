"""Declarative fault schedules.

A :class:`FaultPlan` is a frozen description of *what can go wrong*
during a run: processor crash/recovery cycles, transient disk
slowdowns, and lock-manager stalls.  It holds distribution parameters
only — actual fault times are drawn by the
:class:`~repro.faults.injector.FaultInjector` from its own named
random streams, so a plan is reusable across runs and two runs with
the same (plan, seed) produce identical fault schedules.

Plans are deliberately **not** part of
:class:`~repro.core.parameters.SimulationParameters`: the parameter
set feeds the content-addressed result cache, and faulted runs bypass
the cache entirely, so the unfaulted cache keys stay bit-identical.
"""

import hashlib
import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class CrashSpec:
    """Repeated crash/recover cycles on processor nodes.

    Parameters
    ----------
    mttf:
        Mean time to failure — up-time between recovery and the next
        crash is exponential with this mean.
    mttr:
        Mean time to repair — down-time is exponential with this mean.
    processors:
        Node indices the spec applies to, or ``None`` for all nodes.
    first_failure_after:
        No crash from this spec fires before this simulation time
        (lets the run warm up before faults start).
    """

    mttf: float
    mttr: float
    processors: tuple = None
    first_failure_after: float = 0.0

    def __post_init__(self):
        if self.mttf <= 0 or self.mttr <= 0:
            raise ValueError(
                "mttf and mttr must be > 0, got mttf={} mttr={}".format(
                    self.mttf, self.mttr
                )
            )
        if self.processors is not None:
            object.__setattr__(self, "processors", tuple(self.processors))


@dataclass(frozen=True)
class SlowdownSpec:
    """Transient disk service-time inflation windows.

    Parameters
    ----------
    mtbf:
        Mean time between the end of one window and the start of the
        next (exponential).
    duration:
        Mean window length (exponential).
    factor:
        Service-time multiplier applied to disk jobs submitted inside
        a window (``> 1`` slows the disk down).
    processors:
        Node indices affected, or ``None`` for all nodes.
    """

    mtbf: float
    duration: float
    factor: float = 2.0
    processors: tuple = None

    def __post_init__(self):
        if self.mtbf <= 0 or self.duration <= 0:
            raise ValueError(
                "mtbf and duration must be > 0, got mtbf={} duration={}".format(
                    self.mtbf, self.duration
                )
            )
        if self.factor <= 0:
            raise ValueError("factor must be > 0, got {}".format(self.factor))
        if self.processors is not None:
            object.__setattr__(self, "processors", tuple(self.processors))


@dataclass(frozen=True)
class StallSpec:
    """Lock-manager stall windows: lock-overhead demands are inflated.

    Same timing law as :class:`SlowdownSpec` but applied to the
    machine-wide lock-management work instead of one node's disk.
    """

    mtbf: float
    duration: float
    factor: float = 4.0

    def __post_init__(self):
        if self.mtbf <= 0 or self.duration <= 0:
            raise ValueError(
                "mtbf and duration must be > 0, got mtbf={} duration={}".format(
                    self.mtbf, self.duration
                )
            )
        if self.factor <= 0:
            raise ValueError("factor must be > 0, got {}".format(self.factor))


@dataclass(frozen=True)
class PartitionSpec:
    """Repeated network partition windows over the cluster's sites.

    Parameters
    ----------
    mtbf:
        Mean time between the heal of one partition and the start of
        the next (exponential).
    duration:
        Mean partition length (exponential).
    groups:
        Explicit site groups (tuple of tuples of site ids) to split
        into, or ``None`` to draw a random two-way split from the
        partition's seeded stream each time the fault fires.
    first_after:
        No partition from this spec starts before this simulation time.

    Only meaningful for distributed runs (``nnodes > 1``); on a
    single-node model the injector skips the spec.
    """

    mtbf: float
    duration: float
    groups: tuple = None
    first_after: float = 0.0

    def __post_init__(self):
        if self.mtbf <= 0 or self.duration <= 0:
            raise ValueError(
                "mtbf and duration must be > 0, got mtbf={} duration={}".format(
                    self.mtbf, self.duration
                )
            )
        if self.groups is not None:
            groups = tuple(tuple(group) for group in self.groups)
            if len(groups) < 2 or any(not group for group in groups):
                raise ValueError(
                    "groups must be >= 2 non-empty site groups, got {!r}".format(
                        self.groups
                    )
                )
            object.__setattr__(self, "groups", groups)


@dataclass(frozen=True)
class LinkDelaySpec:
    """Transient extra one-way delay on cluster links.

    Parameters
    ----------
    mtbf:
        Mean time between the end of one window and the next
        (exponential).
    duration:
        Mean window length (exponential).
    extra:
        Extra one-way latency added to affected links inside a window.
    links:
        ``(a, b)`` site pairs affected, or ``None`` for every link.
    """

    mtbf: float
    duration: float
    extra: float = 0.5
    links: tuple = None

    def __post_init__(self):
        if self.mtbf <= 0 or self.duration <= 0:
            raise ValueError(
                "mtbf and duration must be > 0, got mtbf={} duration={}".format(
                    self.mtbf, self.duration
                )
            )
        if self.extra < 0:
            raise ValueError("extra must be >= 0, got {}".format(self.extra))
        if self.links is not None:
            object.__setattr__(
                self, "links", tuple(tuple(pair) for pair in self.links)
            )


@dataclass(frozen=True)
class FaultPlan:
    """The full fault schedule for one run.

    An empty plan (the default) is inert: the model never builds an
    injector for it, so results are bit-identical to a run with no
    plan at all.

    Parameters
    ----------
    crashes:
        :class:`CrashSpec` entries.
    disk_slowdowns:
        :class:`SlowdownSpec` entries.
    lock_stalls:
        :class:`StallSpec` entries.
    partitions:
        :class:`PartitionSpec` entries (distributed runs only).
    link_delays:
        :class:`LinkDelaySpec` entries (distributed runs only).
    seed:
        Optional dedicated fault seed; ``None`` derives the fault
        streams from the run's own seed.
    """

    crashes: tuple = field(default_factory=tuple)
    disk_slowdowns: tuple = field(default_factory=tuple)
    lock_stalls: tuple = field(default_factory=tuple)
    partitions: tuple = field(default_factory=tuple)
    link_delays: tuple = field(default_factory=tuple)
    seed: int = None

    def __post_init__(self):
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "disk_slowdowns", tuple(self.disk_slowdowns))
        object.__setattr__(self, "lock_stalls", tuple(self.lock_stalls))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "link_delays", tuple(self.link_delays))

    def enabled(self):
        """True when the plan schedules at least one fault source."""
        return bool(
            self.crashes
            or self.disk_slowdowns
            or self.lock_stalls
            or self.partitions
            or self.link_delays
        )

    def digest(self):
        """Stable hex digest of the whole schedule.

        Folded into the sweep id of journalled faulted sweeps, so a
        journal written under one plan can never be resumed under
        another.
        """
        blob = json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
