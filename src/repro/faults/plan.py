"""Declarative fault schedules.

A :class:`FaultPlan` is a frozen description of *what can go wrong*
during a run: processor crash/recovery cycles, transient disk
slowdowns, and lock-manager stalls.  It holds distribution parameters
only — actual fault times are drawn by the
:class:`~repro.faults.injector.FaultInjector` from its own named
random streams, so a plan is reusable across runs and two runs with
the same (plan, seed) produce identical fault schedules.

Plans are deliberately **not** part of
:class:`~repro.core.parameters.SimulationParameters`: the parameter
set feeds the content-addressed result cache, and faulted runs bypass
the cache entirely, so the unfaulted cache keys stay bit-identical.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CrashSpec:
    """Repeated crash/recover cycles on processor nodes.

    Parameters
    ----------
    mttf:
        Mean time to failure — up-time between recovery and the next
        crash is exponential with this mean.
    mttr:
        Mean time to repair — down-time is exponential with this mean.
    processors:
        Node indices the spec applies to, or ``None`` for all nodes.
    first_failure_after:
        No crash from this spec fires before this simulation time
        (lets the run warm up before faults start).
    """

    mttf: float
    mttr: float
    processors: tuple = None
    first_failure_after: float = 0.0

    def __post_init__(self):
        if self.mttf <= 0 or self.mttr <= 0:
            raise ValueError(
                "mttf and mttr must be > 0, got mttf={} mttr={}".format(
                    self.mttf, self.mttr
                )
            )
        if self.processors is not None:
            object.__setattr__(self, "processors", tuple(self.processors))


@dataclass(frozen=True)
class SlowdownSpec:
    """Transient disk service-time inflation windows.

    Parameters
    ----------
    mtbf:
        Mean time between the end of one window and the start of the
        next (exponential).
    duration:
        Mean window length (exponential).
    factor:
        Service-time multiplier applied to disk jobs submitted inside
        a window (``> 1`` slows the disk down).
    processors:
        Node indices affected, or ``None`` for all nodes.
    """

    mtbf: float
    duration: float
    factor: float = 2.0
    processors: tuple = None

    def __post_init__(self):
        if self.mtbf <= 0 or self.duration <= 0:
            raise ValueError(
                "mtbf and duration must be > 0, got mtbf={} duration={}".format(
                    self.mtbf, self.duration
                )
            )
        if self.factor <= 0:
            raise ValueError("factor must be > 0, got {}".format(self.factor))
        if self.processors is not None:
            object.__setattr__(self, "processors", tuple(self.processors))


@dataclass(frozen=True)
class StallSpec:
    """Lock-manager stall windows: lock-overhead demands are inflated.

    Same timing law as :class:`SlowdownSpec` but applied to the
    machine-wide lock-management work instead of one node's disk.
    """

    mtbf: float
    duration: float
    factor: float = 4.0

    def __post_init__(self):
        if self.mtbf <= 0 or self.duration <= 0:
            raise ValueError(
                "mtbf and duration must be > 0, got mtbf={} duration={}".format(
                    self.mtbf, self.duration
                )
            )
        if self.factor <= 0:
            raise ValueError("factor must be > 0, got {}".format(self.factor))


@dataclass(frozen=True)
class FaultPlan:
    """The full fault schedule for one run.

    An empty plan (the default) is inert: the model never builds an
    injector for it, so results are bit-identical to a run with no
    plan at all.

    Parameters
    ----------
    crashes:
        :class:`CrashSpec` entries.
    disk_slowdowns:
        :class:`SlowdownSpec` entries.
    lock_stalls:
        :class:`StallSpec` entries.
    seed:
        Optional dedicated fault seed; ``None`` derives the fault
        streams from the run's own seed.
    """

    crashes: tuple = field(default_factory=tuple)
    disk_slowdowns: tuple = field(default_factory=tuple)
    lock_stalls: tuple = field(default_factory=tuple)
    seed: int = None

    def __post_init__(self):
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "disk_slowdowns", tuple(self.disk_slowdowns))
        object.__setattr__(self, "lock_stalls", tuple(self.lock_stalls))

    def enabled(self):
        """True when the plan schedules at least one fault source."""
        return bool(self.crashes or self.disk_slowdowns or self.lock_stalls)
