"""An explicit lock-manager substrate.

The paper models lock conflicts *probabilistically* (the
Ries–Stonebraker interval model, see :mod:`repro.core.conflict`).  This
package implements the real thing — a lock table with modes, wait
queues, preclaim and incremental (2PL) protocols, multi-granularity
intention locking, and waits-for deadlock detection — so the
probabilistic model can be validated against an explicit
implementation, and so the library is usable as a standalone locking
component.

Layers
------
:mod:`repro.lockmgr.modes`
    Lock modes (S, X and the intention modes IS, IX, SIX) and their
    compatibility matrix.
:mod:`repro.lockmgr.table`
    The lock table proper: per-granule holder sets and FIFO wait
    queues.
:mod:`repro.lockmgr.manager`
    :class:`LockManager` — preclaim (all-or-nothing) and incremental
    acquisition protocols over the table, with callback-based grants so
    it stays independent of any particular simulation kernel.
:mod:`repro.lockmgr.hierarchy`
    Multi-granularity locking over a granule tree (database → area →
    granule), the scheme the paper's Gamma discussion alludes to.
:mod:`repro.lockmgr.deadlock`
    Waits-for-graph construction and cycle detection (stdlib DFS).
"""

from repro.lockmgr.deadlock import DeadlockDetector
from repro.lockmgr.hierarchy import GranuleTree, HierarchicalLockManager
from repro.lockmgr.manager import LockManager, LockRequest, RequestStatus
from repro.lockmgr.modes import COMPATIBILITY, LockMode, compatible, supremum
from repro.lockmgr.table import LockTable

__all__ = [
    "COMPATIBILITY",
    "DeadlockDetector",
    "GranuleTree",
    "HierarchicalLockManager",
    "LockManager",
    "LockMode",
    "LockRequest",
    "LockTable",
    "RequestStatus",
    "compatible",
    "supremum",
]
