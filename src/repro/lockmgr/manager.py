"""The lock manager: preclaim and incremental protocols over the table.

Two acquisition protocols are provided, matching the two concurrency
control schemes discussed in the paper:

*Preclaim* (:meth:`LockManager.try_acquire_all`)
    The paper's conservative scheme: a transaction asks for **all** its
    locks at once, before using any resource.  The request either
    grants atomically or fails, naming a blocking transaction; nothing
    is queued in the table, because the simulation model keeps its own
    blocked queue and retries when the blocker finishes.  Deadlock is
    impossible.

*Incremental* (:meth:`LockManager.acquire`)
    Classic two-phase "claim as needed" locking: each granule is
    requested when first touched; incompatible requests queue FIFO and
    are granted on release.  Deadlock becomes possible and is handled
    by :class:`~repro.lockmgr.deadlock.DeadlockDetector` plus
    :meth:`LockManager.cancel`.

The manager is independent of the simulation kernel: grants are
delivered through per-request callbacks, which the simulation layer
wires to events.
"""

import enum

from repro.lockmgr.modes import LockMode, compatible
from repro.lockmgr.table import LockTable


class RequestStatus(enum.Enum):
    """Lifecycle of an incremental lock request."""

    GRANTED = "granted"
    WAITING = "waiting"
    CANCELLED = "cancelled"


class LockRequest:
    """One incremental request for (*owner*, *granule*, *mode*)."""

    __slots__ = ("owner", "granule", "mode", "status", "on_grant")

    def __init__(self, owner, granule, mode, on_grant=None):
        self.owner = owner
        self.granule = granule
        self.mode = mode
        self.status = RequestStatus.WAITING
        self.on_grant = on_grant

    def __repr__(self):
        return "<LockRequest {} {} on {!r} [{}]>".format(
            self.owner, self.mode, self.granule, self.status.value
        )


class LockManager:
    """Grants, queues, and releases locks over a :class:`LockTable`.

    Parameters
    ----------
    observer:
        Optional callable ``observer(kind, owner, **details)`` invoked
        at contention transitions: ``"lock_queue"`` when a request has
        to wait (details: ``granule``, ``mode``, ``holders``),
        ``"lock_promote"`` when a queued request is granted by a
        release (``granule``, ``mode``), and ``"lock_cancel"`` when a
        waiting request is withdrawn (``granule``).  Uncontended
        grants and releases are deliberately not reported — they are
        the overwhelmingly common case and carry no diagnostic value.
        The manager has no clock; the simulation layer wraps the
        callable to stamp the current time.

    Attributes
    ----------
    metrics:
        Optional live-metrics instrument bundle
        (:class:`repro.obs.metrics.RunInstruments`); when set, the
        manager counts grant/queue/promote/cancel/deny transitions by
        mode.  Every call site is guarded by a single ``is not None``
        branch so the un-instrumented path costs one comparison.
    """

    def __init__(self, observer=None):
        self.table = LockTable()
        self.observer = observer
        self.metrics = None
        self._held = {}

    # -- preclaim protocol ---------------------------------------------

    def try_acquire_all(self, owner, requests):
        """Atomically acquire every (granule, mode) in *requests*.

        Returns ``None`` on success.  On conflict nothing is acquired
        and the first conflicting holder (in request order, then holder
        insertion order) is returned, mirroring the paper's model where
        a denied transaction blocks on one identified blocker.
        """
        requests = list(requests)
        for granule, mode in requests:
            state = self.table.peek(granule)
            if state is None:
                continue
            for holder, held in state.holders.items():
                if holder != owner and not compatible(held, mode):
                    if self.metrics is not None:
                        self.metrics.note_lock_event("deny", mode.name)
                    return holder
        for granule, mode in requests:
            self._grant(owner, granule, mode)
            if self.metrics is not None:
                self.metrics.note_lock_event("grant", mode.name)
        return None

    # -- incremental protocol --------------------------------------------

    def acquire(self, owner, granule, mode, on_grant=None):
        """Request one lock; grant immediately or queue FIFO.

        The returned :class:`LockRequest` has status ``GRANTED`` or
        ``WAITING``.  Waiting requests are granted (and their
        ``on_grant`` callback invoked) by a later :meth:`release` /
        :meth:`release_all`.  FIFO fairness: a request also waits when
        anyone is already queued on the granule, even if it would be
        compatible with the current holders, so writers cannot starve.
        """
        request = LockRequest(owner, granule, mode, on_grant)
        state = self.table.state(granule)
        already_held = state.holders.get(owner)
        if already_held is not None and compatible(already_held, mode):
            # Upgrade path: only other holders can conflict.
            if state.grantable(owner, mode):
                self._grant(owner, granule, mode)
                request.status = RequestStatus.GRANTED
                if self.metrics is not None:
                    self.metrics.note_lock_event("grant", mode.name)
                return request
        elif not state.waiters and state.grantable(owner, mode):
            self._grant(owner, granule, mode)
            request.status = RequestStatus.GRANTED
            if self.metrics is not None:
                self.metrics.note_lock_event("grant", mode.name)
            return request
        state.waiters.append(request)
        if self.metrics is not None:
            self.metrics.note_lock_event("queue", mode.name)
        if self.observer is not None:
            self.observer(
                "lock_queue",
                owner,
                granule=granule,
                mode=mode.name,
                holders=len(state.holders),
            )
        return request

    def cancel(self, request):
        """Withdraw a waiting request (deadlock-victim path)."""
        if request.status is not RequestStatus.WAITING:
            return
        state = self.table.peek(request.granule)
        if state is not None and request in state.waiters:
            state.waiters.remove(request)
            request.status = RequestStatus.CANCELLED
            if self.metrics is not None:
                self.metrics.note_lock_event("cancel", request.mode.name)
            if self.observer is not None:
                self.observer(
                    "lock_cancel", request.owner, granule=request.granule
                )
            self._promote(request.granule)

    # -- release -----------------------------------------------------------

    def release(self, owner, granule):
        """Release *owner*'s lock on one granule, waking eligible waiters."""
        held = self._held.get(owner)
        if held is not None:
            held.discard(granule)
            if not held:
                del self._held[owner]
        self.table.revoke(granule, owner)
        return self._promote(granule)

    def release_all(self, owner):
        """Release every lock *owner* holds; returns granted requests."""
        granted = []
        for granule in list(self._held.get(owner, ())):
            granted.extend(self.release(owner, granule))
        return granted

    # -- introspection -------------------------------------------------

    def held_by(self, owner):
        """Snapshot of granule ids *owner* currently holds."""
        return set(self._held.get(owner, ()))

    def lock_count(self, owner):
        """Number of granules *owner* currently holds."""
        return len(self._held.get(owner, ()))

    def conflicting_holders(self, owner, granule, mode):
        """Current holders of *granule* whose mode conflicts with *mode*.

        Excludes *owner* (an upgrade never conflicts with itself).
        Wound-wait uses this to pick wounding victims before queueing.
        """
        state = self.table.peek(granule)
        if state is None:
            return []
        return [
            holder
            for holder, held in state.holders.items()
            if holder != owner and not compatible(held, mode)
        ]

    def waits_for_edges(self):
        """Yield (waiter, holder) pairs for the waits-for graph.

        A waiter waits on each current holder its mode conflicts with.
        """
        for granule in self.table.locked_granules():
            state = self.table.peek(granule)
            if state is None:
                continue
            for request in state.waiters:
                for holder, held in state.holders.items():
                    if holder != request.owner and not compatible(
                        held, request.mode
                    ):
                        yield (request.owner, holder)

    # -- internals -------------------------------------------------------

    def _grant(self, owner, granule, mode):
        self.table.grant(granule, owner, mode)
        self._held.setdefault(owner, set()).add(granule)

    def _promote(self, granule):
        """Grant queued waiters in FIFO order while compatible."""
        state = self.table.peek(granule)
        if state is None:
            return []
        granted = []
        while state.waiters:
            request = state.waiters[0]
            if not state.grantable(request.owner, request.mode):
                break
            state.waiters.popleft()
            self._grant(request.owner, granule, request.mode)
            request.status = RequestStatus.GRANTED
            granted.append(request)
        self.table.prune(granule)
        for request in granted:
            if self.metrics is not None:
                self.metrics.note_lock_event("promote", request.mode.name)
            if self.observer is not None:
                self.observer(
                    "lock_promote",
                    request.owner,
                    granule=granule,
                    mode=request.mode.name,
                )
            if request.on_grant is not None:
                request.on_grant(request)
        return granted


def exclusive_requests(granules):
    """Convenience: (granule, X) pairs for an iterable of granule ids."""
    return [(granule, LockMode.X) for granule in granules]
