"""Waits-for-graph deadlock detection for the incremental protocol.

The paper's conservative (preclaim) scheme makes deadlock impossible;
the "claim as needed" variant it cites (Ries & Stonebraker 1979,
footnote 1) does not.  This module provides detection over a
:class:`~repro.lockmgr.manager.LockManager`'s waits-for edges using
networkx cycle search, plus a pluggable victim-selection policy.
"""

import networkx as nx


class DeadlockDetector:
    """Finds waits-for cycles and picks victims to break them.

    Parameters
    ----------
    manager:
        The :class:`~repro.lockmgr.manager.LockManager` to inspect.
    victim_key:
        Function mapping an owner to a sortable cost; the owner with
        the **largest** key in a cycle is chosen as victim (default:
        the owner itself, so the "youngest" — largest id — dies, a
        common policy when ids are assigned in start order).
    """

    def __init__(self, manager, victim_key=None):
        self._manager = manager
        self._victim_key = victim_key if victim_key is not None else lambda o: o

    def graph(self):
        """Build the current waits-for digraph (waiter → holder)."""
        digraph = nx.DiGraph()
        digraph.add_edges_from(self._manager.waits_for_edges())
        return digraph

    def find_cycle(self):
        """One deadlock cycle as a list of owners, or ``None``."""
        digraph = self.graph()
        try:
            edges = nx.find_cycle(digraph)
        except nx.NetworkXNoCycle:
            return None
        return [edge[0] for edge in edges]

    def find_all_cycles(self):
        """Every simple waits-for cycle (lists of owners)."""
        return list(nx.simple_cycles(self.graph()))

    def choose_victim(self, cycle):
        """The owner in *cycle* with the largest victim key."""
        return max(cycle, key=self._victim_key)

    def resolve_once(self):
        """Detect one cycle and pick its victim.

        Returns the victim owner, or ``None`` when no deadlock exists.
        The caller is responsible for actually aborting the victim
        (cancelling its waiting requests and releasing its locks);
        the detector never mutates the lock table.
        """
        cycle = self.find_cycle()
        if cycle is None:
            return None
        return self.choose_victim(cycle)
