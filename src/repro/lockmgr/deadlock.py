"""Waits-for-graph deadlock detection for the incremental protocol.

The paper's conservative (preclaim) scheme makes deadlock impossible;
the "claim as needed" variant it cites (Ries & Stonebraker 1979,
footnote 1) does not.  This module provides detection over a
:class:`~repro.lockmgr.manager.LockManager`'s waits-for edges using a
stdlib-only iterative depth-first cycle search, plus a pluggable
victim-selection policy.  The package stays zero-dependency: the
digraph is a plain adjacency map, not a networkx graph.
"""


class WaitsForGraph:
    """A minimal waits-for digraph (waiter → holder adjacency map)."""

    def __init__(self, edges=()):
        self.nodes = set()
        self._succ = {}
        self._rank = {}
        for waiter, holder in edges:
            self.add_edge(waiter, holder)

    def add_edge(self, waiter, holder):
        """Record that *waiter* blocks on *holder*."""
        for node in (waiter, holder):
            if node not in self._rank:
                self._rank[node] = len(self._rank)
                self.nodes.add(node)
        self._succ.setdefault(waiter, []).append(holder)

    def successors(self, node):
        """Owners that *node* waits on (empty tuple when none)."""
        return tuple(self._succ.get(node, ()))

    def __len__(self):
        return len(self.nodes)

    def find_cycle(self):
        """One cycle as a list of owners, or ``None``.

        Iterative DFS with an explicit stack and grey/black marking, so
        arbitrarily long waiting chains cannot hit the interpreter
        recursion limit.  Owners are visited in waits-for insertion
        order, which keeps the result deterministic for a given lock
        table without requiring owners to be hashable-and-sortable.
        """
        done = set()
        for root in self._succ:
            if root in done:
                continue
            path = [root]
            on_path = {root}
            stack = [iter(self.successors(root))]
            while stack:
                advanced = False
                for nxt in stack[-1]:
                    if nxt in on_path:
                        return path[path.index(nxt):]
                    if nxt not in done:
                        path.append(nxt)
                        on_path.add(nxt)
                        stack.append(iter(self.successors(nxt)))
                        advanced = True
                        break
                if not advanced:
                    node = path.pop()
                    on_path.discard(node)
                    done.add(node)
                    stack.pop()
        return None

    def simple_cycles(self):
        """Every elementary cycle (lists of owners).

        A pared-down Johnson-style enumeration: for each start node (in
        insertion order), DFS over nodes whose rank is not lower than
        the start's, emitting each path that closes back on the start.
        Rooting every cycle at its lowest-ranked member reports each
        elementary cycle exactly once.
        """
        rank = self._rank
        cycles = []
        for start in sorted(self._succ, key=rank.__getitem__):
            path = [start]
            on_path = {start}
            stack = [iter(self.successors(start))]
            while stack:
                advanced = False
                for nxt in stack[-1]:
                    if nxt == start:
                        cycles.append(list(path))
                        continue
                    if nxt in on_path or rank[nxt] < rank[start]:
                        continue
                    path.append(nxt)
                    on_path.add(nxt)
                    stack.append(iter(self.successors(nxt)))
                    advanced = True
                    break
                if not advanced:
                    on_path.discard(path.pop())
                    stack.pop()
        return cycles


class DeadlockDetector:
    """Finds waits-for cycles and picks victims to break them.

    Parameters
    ----------
    manager:
        The :class:`~repro.lockmgr.manager.LockManager` to inspect.
    victim_key:
        Function mapping an owner to a sortable cost; the owner with
        the **largest** key in a cycle is chosen as victim (default:
        the owner itself, so the "youngest" — largest id — dies, a
        common policy when ids are assigned in start order).
    """

    def __init__(self, manager, victim_key=None):
        self._manager = manager
        self._victim_key = victim_key if victim_key is not None else lambda o: o

    def graph(self):
        """Build the current waits-for digraph (waiter → holder)."""
        return WaitsForGraph(self._manager.waits_for_edges())

    def find_cycle(self):
        """One deadlock cycle as a list of owners, or ``None``."""
        return self.graph().find_cycle()

    def find_all_cycles(self):
        """Every simple waits-for cycle (lists of owners)."""
        return self.graph().simple_cycles()

    def choose_victim(self, cycle):
        """The owner in *cycle* with the largest victim key."""
        return max(cycle, key=self._victim_key)

    def resolve_once(self):
        """Detect one cycle and pick its victim.

        Returns the victim owner, or ``None`` when no deadlock exists.
        The caller is responsible for actually aborting the victim
        (cancelling its waiting requests and releasing its locks);
        the detector never mutates the lock table.
        """
        cycle = self.find_cycle()
        if cycle is None:
            return None
        return self.choose_victim(cycle)
