"""Multi-granularity (hierarchical) locking over a granule tree.

The paper's conclusion points at Gamma-style systems offering locks "at
the block level and at the file level".  This module implements the
standard mechanism behind such mixed granularities: a tree of lockable
nodes (database → areas/files → granules) where locking a node requires
intention locks (IS/IX) on all its ancestors, per Gray's protocol.

The simulation itself locks at a single level; the hierarchy is an
extension substrate exercised by tests and the granule-hierarchy
example.
"""

from repro.lockmgr.manager import LockManager, RequestStatus
from repro.lockmgr.modes import LockMode


class GranuleTree:
    """A rooted tree of lockable node ids.

    Nodes are arbitrary hashable ids; the tree is built by declaring
    each node with its parent.  The root is created at construction.
    """

    def __init__(self, root="database"):
        self.root = root
        self._parent = {root: None}
        self._children = {root: []}

    def add(self, node, parent):
        """Declare *node* as a child of *parent*."""
        if node in self._parent:
            raise ValueError("node {!r} already exists".format(node))
        if parent not in self._parent:
            raise KeyError("unknown parent {!r}".format(parent))
        self._parent[node] = parent
        self._children[node] = []
        self._children[parent].append(node)
        return node

    def add_levels(self, fanouts):
        """Build a uniform tree: ``fanouts=[4, 25]`` → 4 files × 25 blocks.

        Returns the list of leaf node ids (tuples encoding the path).
        """
        level = [self.root]
        for depth, fanout in enumerate(fanouts):
            next_level = []
            for node in level:
                for i in range(fanout):
                    child = (depth, node, i)
                    self.add(child, node)
                    next_level.append(child)
            level = next_level
        return level

    def __contains__(self, node):
        return node in self._parent

    def parent(self, node):
        """The parent id of *node* (``None`` for the root)."""
        return self._parent[node]

    def children(self, node):
        """The child ids of *node*."""
        return list(self._children[node])

    def path_to_root(self, node):
        """Ancestors from the root down to *node*'s parent (root first)."""
        path = []
        current = self._parent[node]
        while current is not None:
            path.append(current)
            current = self._parent[current]
        path.reverse()
        return path


#: Intention mode required on ancestors for each leaf-level mode.
_INTENTION_FOR = {
    LockMode.S: LockMode.IS,
    LockMode.IS: LockMode.IS,
    LockMode.X: LockMode.IX,
    LockMode.IX: LockMode.IX,
    LockMode.SIX: LockMode.IX,
}


class HierarchicalLockManager:
    """Gray's multi-granularity protocol over a :class:`GranuleTree`.

    ``lock(owner, node, S|X)`` takes IS/IX on every ancestor, then the
    requested mode on the node, atomically (all-or-nothing try-lock).
    """

    def __init__(self, tree):
        self.tree = tree
        self.manager = LockManager()

    def try_lock(self, owner, node, mode):
        """Attempt to lock *node* in *mode* with proper intentions.

        Returns ``None`` on success or the first conflicting owner.
        Nothing is acquired on failure.
        """
        if node not in self.tree:
            raise KeyError("unknown node {!r}".format(node))
        intention = _INTENTION_FOR[mode]
        requests = [(ancestor, intention) for ancestor in self.tree.path_to_root(node)]
        requests.append((node, mode))
        return self.manager.try_acquire_all(owner, requests)

    def lock_queued(self, owner, node, mode, on_grant=None):
        """Incremental variant: queue on conflict (may deadlock).

        Acquires intention locks root-down, queueing at each level.
        Returns the list of :class:`LockRequest` issued; the last one
        is the target-node request.
        """
        intention = _INTENTION_FOR[mode]
        requests = []
        for ancestor in self.tree.path_to_root(node):
            requests.append(self.manager.acquire(owner, ancestor, intention))
        requests.append(self.manager.acquire(owner, node, mode, on_grant))
        return requests

    def unlock_all(self, owner):
        """Release everything *owner* holds, leaf-to-root order implied."""
        return self.manager.release_all(owner)

    def is_fully_granted(self, requests):
        """True when every request in *requests* has been granted."""
        return all(r.status is RequestStatus.GRANTED for r in requests)
