"""Lock modes and their compatibility matrix.

The mode lattice follows Gray's classic multi-granularity scheme:

* ``S``  — shared: read the granule.
* ``X``  — exclusive: read/write the granule.
* ``IS`` — intention shared: S locks will be taken below this node.
* ``IX`` — intention exclusive: X locks will be taken below.
* ``SIX``— S on this node plus IX below (read all, write some).

The paper's simulation model does not distinguish readers from
writers (every transaction effectively takes X locks), but the lock
manager supports the full matrix so that the read-share extension and
the hierarchical substrate are exercised by tests and examples.
"""

import enum


class LockMode(enum.Enum):
    """A lock mode in Gray's multi-granularity lattice."""

    IS = "IS"
    IX = "IX"
    S = "S"
    SIX = "SIX"
    X = "X"

    def __str__(self):
        return self.value

    @property
    def is_intention(self):
        """True for IS/IX/SIX — modes taken on ancestors of the target."""
        return self in (LockMode.IS, LockMode.IX, LockMode.SIX)


#: Classic compatibility matrix: ``COMPATIBILITY[held][requested]``.
COMPATIBILITY = {
    LockMode.IS: {
        LockMode.IS: True,
        LockMode.IX: True,
        LockMode.S: True,
        LockMode.SIX: True,
        LockMode.X: False,
    },
    LockMode.IX: {
        LockMode.IS: True,
        LockMode.IX: True,
        LockMode.S: False,
        LockMode.SIX: False,
        LockMode.X: False,
    },
    LockMode.S: {
        LockMode.IS: True,
        LockMode.IX: False,
        LockMode.S: True,
        LockMode.SIX: False,
        LockMode.X: False,
    },
    LockMode.SIX: {
        LockMode.IS: True,
        LockMode.IX: False,
        LockMode.S: False,
        LockMode.SIX: False,
        LockMode.X: False,
    },
    LockMode.X: {
        LockMode.IS: False,
        LockMode.IX: False,
        LockMode.S: False,
        LockMode.SIX: False,
        LockMode.X: False,
    },
}

#: The least mode covering both operands (join in the mode lattice),
#: used when a transaction upgrades a lock it already holds.
_SUPREMUM = {
    (LockMode.IS, LockMode.IS): LockMode.IS,
    (LockMode.IS, LockMode.IX): LockMode.IX,
    (LockMode.IS, LockMode.S): LockMode.S,
    (LockMode.IS, LockMode.SIX): LockMode.SIX,
    (LockMode.IS, LockMode.X): LockMode.X,
    (LockMode.IX, LockMode.IX): LockMode.IX,
    (LockMode.IX, LockMode.S): LockMode.SIX,
    (LockMode.IX, LockMode.SIX): LockMode.SIX,
    (LockMode.IX, LockMode.X): LockMode.X,
    (LockMode.S, LockMode.S): LockMode.S,
    (LockMode.S, LockMode.SIX): LockMode.SIX,
    (LockMode.S, LockMode.X): LockMode.X,
    (LockMode.SIX, LockMode.SIX): LockMode.SIX,
    (LockMode.SIX, LockMode.X): LockMode.X,
    (LockMode.X, LockMode.X): LockMode.X,
}


# Pair-keyed flattening of COMPATIBILITY: one dict lookup instead of
# two on the grant/conflict hot path (compatible() runs once per held
# lock per request under contention).
_COMPATIBLE_PAIRS = {
    (held, requested): ok
    for held, row in COMPATIBILITY.items()
    for requested, ok in row.items()
}


def compatible(held, requested):
    """True if *requested* can be granted alongside *held*."""
    return _COMPATIBLE_PAIRS[(held, requested)]


def supremum(a, b):
    """The least mode at least as strong as both *a* and *b*."""
    if (a, b) in _SUPREMUM:
        return _SUPREMUM[(a, b)]
    return _SUPREMUM[(b, a)]
