"""The lock table: per-granule holder sets and FIFO wait queues."""

from collections import deque

from repro.lockmgr.modes import compatible, supremum


class GranuleState:
    """Holders and waiters of one granule.

    Attributes
    ----------
    holders:
        Mapping owner → mode currently granted.
    waiters:
        FIFO of pending :class:`~repro.lockmgr.manager.LockRequest`.
    """

    __slots__ = ("holders", "waiters")

    def __init__(self):
        self.holders = {}
        self.waiters = deque()

    def grantable(self, owner, mode):
        """Can *owner* take *mode* here, given the current holders?

        The owner's own existing lock never conflicts (it will be
        upgraded to the supremum of the two modes instead).
        """
        return all(
            compatible(held, mode)
            for holder, held in self.holders.items()
            if holder != owner
        )


class LockTable:
    """A hash table of granule lock states.

    Granules are identified by arbitrary hashable ids.  States are
    created lazily and discarded when both holder and waiter sets
    drain, so memory scales with *locked* granules, not with ``ltot`` —
    the in-memory analogue of the paper's observation that fine
    granularity needs big lock tables.
    """

    def __init__(self):
        self._states = {}

    def __len__(self):
        return len(self._states)

    def __contains__(self, granule):
        return granule in self._states

    def state(self, granule):
        """The :class:`GranuleState` for *granule*, created if absent."""
        state = self._states.get(granule)
        if state is None:
            state = GranuleState()
            self._states[granule] = state
        return state

    def peek(self, granule):
        """The state for *granule*, or ``None`` if it has no entry."""
        return self._states.get(granule)

    def holders(self, granule):
        """Snapshot mapping owner → mode for *granule*."""
        state = self._states.get(granule)
        return dict(state.holders) if state else {}

    def mode_of(self, granule, owner):
        """The mode *owner* holds on *granule*, or ``None``."""
        state = self._states.get(granule)
        if state is None:
            return None
        return state.holders.get(owner)

    def grant(self, granule, owner, mode):
        """Record *owner* holding *mode*; upgrades merge via supremum."""
        state = self.state(granule)
        held = state.holders.get(owner)
        state.holders[owner] = mode if held is None else supremum(held, mode)

    def revoke(self, granule, owner):
        """Remove *owner*'s lock on *granule* (no-op if absent)."""
        state = self._states.get(granule)
        if state is None:
            return
        state.holders.pop(owner, None)
        self._discard_if_empty(granule, state)

    def _discard_if_empty(self, granule, state):
        if not state.holders and not state.waiters:
            del self._states[granule]

    def prune(self, granule):
        """Drop *granule*'s state if it has no holders and no waiters."""
        state = self._states.get(granule)
        if state is not None:
            self._discard_if_empty(granule, state)

    def locked_granules(self, owner=None):
        """Granule ids with any holder, or those held by *owner*."""
        if owner is None:
            return [g for g, s in self._states.items() if s.holders]
        return [g for g, s in self._states.items() if owner in s.holders]

    def check_invariants(self):
        """Assert structural invariants; used by tests.

        * every pair of distinct holders on a granule is compatible;
        * no state object is empty (they are discarded eagerly).
        """
        for granule, state in self._states.items():
            if not state.holders and not state.waiters:
                raise AssertionError("empty state retained for {!r}".format(granule))
            holders = list(state.holders.items())
            for i, (owner_a, mode_a) in enumerate(holders):
                for owner_b, mode_b in holders[i + 1 :]:
                    if not compatible(mode_a, mode_b):
                        raise AssertionError(
                            "incompatible holders on {!r}: {}={} vs {}={}".format(
                                granule, owner_a, mode_a, owner_b, mode_b
                            )
                        )
