"""Workload policies (the ``"workload"`` policy layer).

Thin factories binding the transaction-size samplers of
:mod:`repro.core.workload` into the policy registry, so size
distributions are resolved by name exactly like CC protocols and
composable with any arrival policy (``closed``, ``open``,
``bursty``).  A sampler is any object with ``sample(rng) -> int`` and
a ``mean`` property; register a new one under a fresh name to open a
new workload without touching the model.
"""

from repro.core.workload import ClassMixSizes, FixedSizes, MixedSizes, UniformSizes


def classes(params):
    """Multi-class mix sampler over ``params.txn_classes``."""
    return ClassMixSizes(params.workload_mix)


def uniform(params):
    """``NU ~ U{1 .. maxtransize}`` (the paper's base workload)."""
    return UniformSizes(params.maxtransize)


def mixed(params):
    """The §3.6 small/large mix (80% small / 20% large by default)."""
    return MixedSizes(
        params.mix_small_fraction,
        params.mix_small_maxtransize,
        params.mix_large_maxtransize,
    )


def fixed(params):
    """Every transaction accesses exactly ``maxtransize`` entities."""
    return FixedSizes(params.maxtransize)
