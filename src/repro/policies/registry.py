"""A string-keyed registry of pluggable policy layers.

Every strategy seam of the simulation — the concurrency-control
protocol, the admission policy, the workload and arrival shapes, the
granule placement, the data partitioning, the conflict engine — is
resolved by name through one :class:`PolicyRegistry`.  The registry
maps ``(layer, name)`` to a *target*: either an object (class or
factory) registered directly, or a lazy ``"module:attr"`` reference
imported on first resolution.  Lazy references are how the built-in
policies register without import cycles: :mod:`repro.policies` lists
them as strings at import time and the implementing modules load only
when a policy is actually used.

Third-party packages can contribute policies two ways:

* imperatively, ``from repro.policies import registry`` and
  ``registry.register("cc", "my-proto", MyProtocol)`` (or use it as a
  decorator);
* declaratively, through a ``repro.policies`` entry-point group whose
  entry names are ``"<layer>/<name>"`` — call
  :meth:`PolicyRegistry.load_entry_points` (the CLI does) to pick
  them up.

Unknown names raise :class:`UnknownPolicyError` (a ``ValueError``)
listing the registered names and close-match suggestions.
"""

import difflib
import importlib


class UnknownPolicyError(ValueError):
    """An unregistered policy name was requested.

    Attributes
    ----------
    layer / name:
        The failing lookup.
    known:
        Sorted tuple of names registered for the layer.
    suggestions:
        Close matches to *name* among *known* (possibly empty).
    """

    def __init__(self, layer, name, known):
        self.layer = layer
        self.name = name
        self.known = tuple(sorted(known))
        self.suggestions = tuple(
            difflib.get_close_matches(str(name), self.known, n=3, cutoff=0.5)
        )
        message = "unknown {} policy {!r}; registered: {}".format(
            layer, name, ", ".join(self.known) or "(none)"
        )
        if self.suggestions:
            message += ". Did you mean {}?".format(
                " or ".join(repr(s) for s in self.suggestions)
            )
        super().__init__(message)


class _Entry:
    """One registered policy: a resolved object or a lazy reference."""

    __slots__ = ("target", "doc")

    def __init__(self, target, doc=None):
        self.target = target
        self.doc = doc

    def resolve(self):
        """The policy object, importing a ``"module:attr"`` ref once."""
        if isinstance(self.target, str):
            module_name, _, attr = self.target.partition(":")
            module = importlib.import_module(module_name)
            self.target = getattr(module, attr)
        return self.target

    def describe(self):
        """One-line doc: the explicit doc, else the target's docstring."""
        if self.doc:
            return self.doc
        target = self.resolve()
        doc = getattr(target, "__doc__", None) or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""


class PolicyRegistry:
    """String-keyed policy layers: ``(layer, name) -> class/factory``."""

    def __init__(self):
        self._layers = {}

    def register(self, layer, name, target=None, doc=None, replace=False):
        """Register *target* as ``(layer, name)``.

        With ``target=None`` acts as a class decorator::

            @registry.register("cc", "my-proto")
            class MyProtocol(ConcurrencyControl): ...

        *target* may be a ``"module:attr"`` string, imported lazily on
        first :meth:`resolve`.  Re-registering an existing name raises
        unless ``replace=True`` (plugins overriding built-ins must say
        so explicitly).
        """
        if target is None:
            def decorator(obj):
                self.register(layer, name, obj, doc=doc, replace=replace)
                return obj

            return decorator
        entries = self._layers.setdefault(layer, {})
        if name in entries and not replace:
            raise ValueError(
                "policy {!r} already registered for layer {!r}; "
                "pass replace=True to override".format(name, layer)
            )
        entries[name] = _Entry(target, doc)
        return target

    def resolve(self, layer, name):
        """The policy object for ``(layer, name)``.

        Raises :class:`UnknownPolicyError` — with suggestions — for an
        unregistered name (or an entirely unknown layer).
        """
        entries = self._layers.get(layer)
        if entries is None:
            raise UnknownPolicyError(layer, name, ())
        entry = entries.get(name)
        if entry is None:
            raise UnknownPolicyError(layer, name, entries)
        return entry.resolve()

    def names(self, layer):
        """Sorted names registered for *layer* (empty for unknown)."""
        return tuple(sorted(self._layers.get(layer, ())))

    def layers(self):
        """Sorted layer names with at least one registration."""
        return tuple(sorted(self._layers))

    def __contains__(self, key):
        layer, name = key
        return name in self._layers.get(layer, ())

    def describe(self, layer=None):
        """Rows of ``(layer, name, one-line doc)`` for the CLI listing."""
        rows = []
        for layer_name in self.layers() if layer is None else (layer,):
            for name in self.names(layer_name):
                entry = self._layers[layer_name][name]
                rows.append((layer_name, name, entry.describe()))
        return rows

    def load_entry_points(self, group="repro.policies"):
        """Register policies advertised under entry-point *group*.

        Entry names must be ``"<layer>/<name>"``; the entry value
        loads to the policy object.  Returns the number registered.
        Malformed names and load failures are skipped (a broken plugin
        must not take the CLI down); duplicates of existing names are
        ignored rather than overriding built-ins.
        """
        try:
            from importlib.metadata import entry_points
        except ImportError:  # pragma: no cover - py3.7 fallback
            return 0
        try:
            selected = entry_points(group=group)
        except TypeError:  # pragma: no cover - py3.9 compat
            selected = entry_points().get(group, ())
        loaded = 0
        for point in selected:
            layer, sep, name = point.name.partition("/")
            if not sep or not layer or not name:
                continue
            if (layer, name) in self:
                continue
            try:
                self.register(layer, name, point.load())
                loaded += 1
            except Exception:  # noqa: BLE001 - plugin faults stay isolated
                continue
        return loaded
