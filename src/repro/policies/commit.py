"""Distributed commit/replication protocols (the ``"commit"`` layer).

A :class:`CommitProtocol` owns the step between a successful execution
(all sub-transactions done, ``cc.post_execute`` said commit) and the
model's completion bookkeeping.  Single-node runs use
:class:`LocalCommit`, whose generator consumes **zero** kernel events
and zero random variates — the paper's configurations stay
bit-identical to a build without this layer.  Distributed runs
(``nnodes > 1``) pay real message round trips over
:class:`repro.net.Network` and can fail: a failed commit releases the
transaction's locks, backs off (one variate from the dedicated
``commit_backoff`` stream, through the run's
:class:`~repro.faults.backoff.BackoffPolicy`) and reruns the whole
acquire/execute cycle, exactly like the fault-abort path.

Two distributed protocols are built in (DESIGN.md §12):

``2pc``
    Presumed-abort two-phase commit, update-everywhere: the home site
    coordinates a PREPARE round to every other site, waits for all
    votes against a ``commit_timeout`` deadline, then broadcasts the
    COMMIT decision.  Any unreachable participant (partition) or
    missed deadline presumes abort — notify the reachable sites,
    release, back off, retry.  One commit costs ``2·(nnodes-1)``
    one-way messages plus the decision broadcast.
``primary-copy``
    Primary-copy replication: writers synchronously commit at the
    primary site (zero messages when the home *is* the primary, one
    round trip otherwise) and replication to the backups is
    asynchronous (fire-and-forget REPLICATE messages).  When the
    primary is unreachable, a home in a strict-majority component
    elects the lowest site id of its component as the new primary (one
    broadcast round); a home stranded in a minority component drops to
    degraded read-only mode — readers still commit locally, writers
    abort-and-back-off until the partition heals.  Reads are
    one-copy (``read-one/write-all-available``), so read-only
    transactions never pay the network.
"""


class CommitProtocol:
    """Base class: binding plus the shared failed-commit path.

    Class attributes mirror :class:`~repro.policies.cc.ConcurrencyControl`:
    ``name`` is the registry key, ``version`` feeds
    :func:`repro.policies.policy_versions` (all built-ins are 1, so
    cache addresses do not move).
    """

    name = None
    version = 1

    def __init__(self):
        self.model = None

    def bind(self, model):
        """Attach to *model*; called once before the run starts."""
        self.model = model
        return self

    def commit(self, txn):
        """Generator: ``True`` when *txn* committed, ``False`` to retry.

        Runs after execution succeeded; a ``False`` return means the
        protocol already released the transaction's locks and slept
        its backoff, and the lifecycle loops back to re-acquire.
        """
        raise NotImplementedError

    # -- shared failed-commit path ------------------------------------

    def commit_abort(self, txn, reason):
        """Presumed-abort bookkeeping plus one backoff variate.

        Mirrors :meth:`~repro.policies.cc.ConcurrencyControl.fault_abort`:
        release locks, update gauges, count the abort, wake waiters,
        sleep one backoff draw — but counts a *commit* abort and draws
        from the dedicated ``commit_backoff`` stream so distributed
        retries never desynchronise the conflict or fault streams.
        """
        model = self.model
        model.conflicts.release(txn)
        model.metrics.active.update(model.conflicts.active_count)
        model.metrics.locks_held.update(model.conflicts.locks_held)
        model.metrics.note_commit_abort(reason)
        txn.commit_retries += 1
        model.emit("commit_abort", txn, reason=reason, retries=txn.commit_retries)
        model.wake_waiters(txn)
        yield model.backoff.delay(
            model.rngs["commit_backoff"], txn.commit_retries - 1
        )


class LocalCommit(CommitProtocol):
    """Single-site commit: free, instantaneous, and stream-neutral.

    The generator returns before its first ``yield``, so the kernel
    never sees it: no events, no draws, bit-identical event ids to the
    pre-distributed model.
    """

    name = "local"

    def commit(self, txn):
        return True
        yield  # pragma: no cover - makes this a generator


class TwoPhaseCommit(CommitProtocol):
    """Presumed-abort 2PC across every cluster site."""

    name = "2pc"

    def commit(self, txn):
        model = self.model
        cluster = model.cluster
        if cluster is None or not txn.is_writer:
            return True
        env, net = model.env, model.network
        home = cluster.home(txn)
        participants = [site for site in cluster.sites if site != home]
        if not participants:
            return True
        started = env.now
        votes = [0]
        all_voted = env.event()

        def on_vote(message):
            votes[0] += 1
            if votes[0] == len(participants) and not all_voted.triggered:
                all_voted.succeed()

        def on_prepare(message):
            # Participant: force-write the prepare record and vote.
            # A reachable site always votes commit; an unreachable one
            # simply never receives the PREPARE (dropped at the
            # partition boundary), which the coordinator reads as a
            # no-vote at the deadline.
            net.send(message.dst, message.src, "vote-commit", handler=on_vote)

        for site in participants:
            net.send(home, site, "prepare", handler=on_prepare)
        yield env.any_of([all_voted, env.timeout(model.params.commit_timeout)])
        if votes[0] == len(participants):
            # Decision: commit.  Presumed abort needs no acks on the
            # forward decision, so the broadcast is asynchronous.
            for site in participants:
                net.send(home, site, "commit")
            model.metrics.note_commit_latency(env.now - started)
            return True
        # Presumed abort: tell whoever is still reachable, then retry.
        for site in participants:
            net.send(home, site, "abort")
        yield from self.commit_abort(txn, "2pc-timeout")
        return False


class PrimaryCopyCommit(CommitProtocol):
    """Primary-copy replication with majority failover election."""

    name = "primary-copy"

    def commit(self, txn):
        model = self.model
        cluster = model.cluster
        if cluster is None:
            return True
        env, net = model.env, model.network
        home = cluster.home(txn)
        if not txn.is_writer:
            # Read-one: served from the home replica even under
            # partition (the degraded mode is read-*only*, not down).
            return True
        if not cluster.in_majority(home):
            # Minority partition: degraded read-only mode.
            model.metrics.note_degraded_mode()
            yield from self.commit_abort(txn, "degraded-read-only")
            return False
        if cluster.primary != home and not net.reachable(home, cluster.primary):
            # Primary partitioned or crashed away from our majority
            # component: elect the lowest reachable site id.
            yield from self._failover(home)
        started = env.now
        primary = cluster.primary
        if primary == home:
            self._replicate(home)
            model.metrics.note_commit_latency(env.now - started)
            return True
        acked = env.event()

        def on_ack(message):
            if not acked.triggered:
                acked.succeed()

        def on_request(message):
            net.send(message.dst, message.src, "commit-ack", handler=on_ack)

        net.send(home, primary, "commit-req", handler=on_request)
        yield env.any_of([acked, env.timeout(model.params.commit_timeout)])
        if acked.triggered:
            self._replicate(primary)
            model.metrics.note_commit_latency(env.now - started)
            return True
        yield from self.commit_abort(txn, "primary-timeout")
        return False

    def _replicate(self, origin):
        """Asynchronous REPLICATE fan-out from the committing site."""
        net = self.model.network
        for site in self.model.cluster.sites:
            if site != origin:
                net.send(origin, site, "replicate")

    def _failover(self, home):
        """One election round inside *home*'s majority component."""
        model = self.model
        cluster, net, env = model.cluster, model.network, model.env
        component = cluster.component(home)
        old_primary = cluster.primary
        for site in sorted(component):
            if site != home:
                net.send(home, site, "elect")
        # The round costs one RTT of campaigning before the result is
        # known cluster-component-wide.
        yield 2.0 * model.params.net_latency  # bare-delay sleep
        new_primary = min(component)
        if cluster.primary == old_primary and new_primary != cluster.primary:
            # Nobody elected meanwhile (concurrent coordinators race
            # here; first one to wake wins, the rest observe).
            cluster.elect(new_primary)
            model.metrics.note_election()
            model.emit_system("election", primary=new_primary, was=old_primary)
