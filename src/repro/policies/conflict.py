"""Conflict-engine policies (the ``"conflict"`` registry layer).

Factories binding the engines of :mod:`repro.core.conflict` (and the
multi-granularity engine of :mod:`repro.core.hierarchy_engine`) into
the policy registry.  Unlike the other layers these factories take
``(params, rng)`` — the probabilistic engine draws its interval test
from a dedicated stream; table-backed engines ignore the stream.

Capability attributes on each factory replace hardcoded engine-name
checks elsewhere in the stack:

``needs_granules``
    Transactions must materialise their granule sets up front
    (an extra ``placement`` draw per transaction).
``table_backed``
    The engine tracks real per-granule state, so placement policies
    that shape the granule distribution (``skewed``) work.
``supports_granule_cc``
    Granule-tracking CC protocols (``incremental``, ``wound-wait``)
    can run on this engine.
``validate_params``
    Optional hook ``validate_params(params)`` raising ``ValueError``
    for engine-specific parameter problems.
"""

from repro.core.conflict import ExplicitConflicts, ProbabilisticConflicts


def probabilistic(params, rng):
    """The paper's Ries–Stonebraker interval conflict model."""
    return ProbabilisticConflicts(params.ltot, rng)


probabilistic.needs_granules = False
probabilistic.table_backed = False
probabilistic.supports_granule_cc = False


def vectorized(params, rng):
    """Numpy-accelerated interval model; identical decisions and
    random stream, scalar fallback when numpy is unavailable."""
    from repro.core.conflict import VectorizedConflicts

    return VectorizedConflicts(params.ltot, rng)


vectorized.needs_granules = False
vectorized.table_backed = False
vectorized.supports_granule_cc = False


def explicit(params, rng):
    """A real flat lock table over materialised granule sets."""
    return ExplicitConflicts()


explicit.needs_granules = True
explicit.table_backed = True
explicit.supports_granule_cc = True


def hierarchical(params, rng):
    """File/granule multi-granularity locking with optional escalation."""
    from repro.core.hierarchy_engine import HierarchicalConflicts

    # A database of 1 granule cannot have 20 files: clamp so the
    # ltot sweep grids work unchanged.
    return HierarchicalConflicts(
        params.ltot,
        min(params.nfiles, params.ltot),
        params.escalation_threshold,
    )


hierarchical.needs_granules = True
hierarchical.table_backed = True
hierarchical.supports_granule_cc = False


def _validate_hierarchical(params):
    """nfiles/escalation_threshold sanity for the hierarchy engine.

    ``nfiles > ltot`` is *not* an error — the factory clamps it so a
    fixed ``nfiles`` survives sweeps over the ``ltot`` grid — but a
    file count beyond the database size, or an escalation threshold no
    transaction could ever reach, is a dead configuration worth
    rejecting loudly.
    """
    if params.nfiles > params.dbsize:
        raise ValueError(
            "nfiles must be <= dbsize={} (every file holds at least "
            "one block), got {}".format(params.dbsize, params.nfiles)
        )
    if params.escalation_threshold > params.ltot:
        raise ValueError(
            "escalation_threshold must be <= ltot={} (a transaction "
            "can never hold more block locks than exist), got {}".format(
                params.ltot, params.escalation_threshold
            )
        )


hierarchical.validate_params = _validate_hierarchical
