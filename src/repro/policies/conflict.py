"""Conflict-engine policies (the ``"conflict"`` registry layer).

Factories binding the engines of :mod:`repro.core.conflict` (and the
multi-granularity engine of :mod:`repro.core.hierarchy_engine`) into
the policy registry.  Unlike the other layers these factories take
``(params, rng)`` — the probabilistic engine draws its interval test
from a dedicated stream; table-backed engines ignore the stream.
"""

from repro.core.conflict import ExplicitConflicts, ProbabilisticConflicts


def probabilistic(params, rng):
    """The paper's Ries–Stonebraker interval conflict model."""
    return ProbabilisticConflicts(params.ltot, rng)


def vectorized(params, rng):
    """Numpy-accelerated interval model; identical decisions and
    random stream, scalar fallback when numpy is unavailable."""
    from repro.core.conflict import VectorizedConflicts

    return VectorizedConflicts(params.ltot, rng)


def explicit(params, rng):
    """A real flat lock table over materialised granule sets."""
    return ExplicitConflicts()


def hierarchical(params, rng):
    """File/granule multi-granularity locking with optional escalation."""
    from repro.core.hierarchy_engine import HierarchicalConflicts

    # A database of 1 granule cannot have 20 files: clamp so the
    # ltot sweep grids work unchanged.
    return HierarchicalConflicts(
        params.ltot,
        min(params.nfiles, params.ltot),
        params.escalation_threshold,
    )
