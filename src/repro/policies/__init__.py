"""Pluggable policy layers behind one string-keyed registry.

The transaction model is a thin orchestrator over eight policy
layers, each resolved by name through :data:`registry`:

========== =============================== ==========================
layer      selects                         ``SimulationParameters``
========== =============================== ==========================
cc         concurrency-control protocol    ``protocol``
admission  transaction-level scheduling    ``txn_policy``
workload   transaction-size distribution   ``workload``
arrival    arrival process / population    ``arrival_process``
placement  granule placement strategy      ``placement``
partitioning data partitioning method      ``partitioning``
conflict   conflict-decision engine        ``conflict_engine``
commit     distributed commit/replication  ``commit_protocol``
========== =============================== ==========================

Built-ins register lazily (as ``"module:attr"`` references) so that
importing :mod:`repro.policies` stays cheap and cycle-free; the
implementing module loads the first time its policy is resolved.
Third parties extend any layer via ``registry.register(...)`` or a
``repro.policies`` entry point (see :mod:`repro.policies.registry`).

:func:`active_policies` names the policies a parameter set selects —
surfaced in provenance manifests and the ``repro-locking policies``
CLI verb.  :func:`policy_versions` feeds the result cache: a policy
whose ``version`` attribute moved past 1 forks the cache address of
runs using it, without touching any other policy's entries (default
policies are all version 1, keeping historical digests bit-stable).
"""

from repro.policies.registry import PolicyRegistry, UnknownPolicyError

#: The process-wide registry every layer resolves through.
registry = PolicyRegistry()

#: Built-in policies, registered lazily: (layer, name, target, doc).
_BUILTINS = (
    ("cc", "preclaim", "repro.policies.cc:PreclaimCC",
     "the paper's conservative all-at-once scheme; blocks on the blocker"),
    ("cc", "incremental", "repro.policies.cc:IncrementalCC",
     "claim-as-needed 2PL; deadlock cycles abort the youngest waiter"),
    ("cc", "no-waiting", "repro.policies.cc:NoWaitingCC",
     "immediate restart: a denied request aborts, backs off and retries"),
    ("cc", "wound-wait", "repro.policies.cc:WoundWaitCC",
     "older requesters wound younger holders; younger requesters wait"),
    ("admission", "fcfs", "repro.policies.admission:_fcfs",
     "first-come-first-served, optional fixed multiprogramming limit"),
    ("admission", "smallest", "repro.policies.admission:_smallest",
     "admit the smallest pending transaction first"),
    ("admission", "adaptive", "repro.policies.admission:_adaptive",
     "multiprogramming limit adapted from the lock denial rate"),
    ("admission", "priority", "repro.policies.admission:_priority",
     "highest txn-class priority first (FCFS within a priority)"),
    ("workload", "uniform", "repro.policies.workload:uniform",
     "NU ~ U{1..maxtransize} (the paper's Table 1 workload)"),
    ("workload", "mixed", "repro.policies.workload:mixed",
     "the §3.6 small/large transaction mix"),
    ("workload", "fixed", "repro.policies.workload:fixed",
     "every transaction exactly maxtransize entities"),
    ("workload", "classes", "repro.policies.workload:classes",
     "multi-class mix from txn_classes (per-class sizes/priorities)"),
    ("arrival", "closed", "repro.policies.arrival:ClosedArrivals",
     "fixed population of ntrans; completions replaced immediately"),
    ("arrival", "open", "repro.policies.arrival:OpenArrivals",
     "Poisson arrivals at arrival_rate; no replacement"),
    ("arrival", "bursty", "repro.policies.arrival:BurstyArrivals",
     "Markov-modulated Poisson: quiet phases alternating with bursts"),
    ("placement", "best", "repro.policies.placement:best",
     "sequential access; locks proportional to the fraction touched"),
    ("placement", "worst", "repro.policies.placement:worst",
     "fully scattered access; every entity in a different granule"),
    ("placement", "random", "repro.policies.placement:random_placement",
     "uniform random access (Yao's mean-value formula)"),
    ("placement", "skewed", "repro.policies.placement:skewed",
     "hot-spot access: Zipf(access_skew) over granules"),
    ("partitioning", "horizontal", "repro.policies.placement:horizontal",
     "round-robin over all disks; every transaction uses all nodes"),
    ("partitioning", "random", "repro.policies.placement:random_partitioning",
     "relations on a random subset of disks; PU ~ U{1..npros}"),
    ("conflict", "probabilistic", "repro.policies.conflict:probabilistic",
     "the paper's Ries-Stonebraker interval conflict model"),
    ("conflict", "vectorized", "repro.policies.conflict:vectorized",
     "numpy-accelerated interval model (decision-identical, scalar fallback)"),
    ("conflict", "explicit", "repro.policies.conflict:explicit",
     "a real flat lock table over materialised granule sets"),
    ("conflict", "hierarchical", "repro.policies.conflict:hierarchical",
     "file/granule multi-granularity locking with optional escalation"),
    ("commit", "local", "repro.policies.commit:LocalCommit",
     "single-site commit: free, instantaneous, no messages (the paper)"),
    ("commit", "2pc", "repro.policies.commit:TwoPhaseCommit",
     "presumed-abort two-phase commit with coordinator timeouts"),
    ("commit", "primary-copy", "repro.policies.commit:PrimaryCopyCommit",
     "primary-copy replication with majority failover election"),
)

for _layer, _name, _target, _doc in _BUILTINS:
    registry.register(_layer, _name, _target, doc=_doc)
del _layer, _name, _target, _doc

#: Which parameter field selects each layer's policy.
PARAM_FIELDS = {
    "cc": "protocol",
    "admission": "txn_policy",
    "workload": "workload",
    "arrival": "arrival_process",
    "placement": "placement",
    "partitioning": "partitioning",
    "conflict": "conflict_engine",
    "commit": "commit_protocol",
}


def resolve(layer, name):
    """Shorthand for ``registry.resolve(layer, name)``."""
    return registry.resolve(layer, name)


def policy_names(layer):
    """Shorthand for ``registry.names(layer)``."""
    return registry.names(layer)


def active_policies(params):
    """Mapping ``layer -> policy name`` selected by *params*."""
    return {
        layer: getattr(params, field)
        for layer, field in sorted(PARAM_FIELDS.items())
    }


def policy_versions(params):
    """Non-default policy versions selected by *params*, or ``None``.

    Returns ``{layer: {"name": ..., "version": ...}}`` for every
    active policy whose ``version`` attribute exists and is not 1 —
    the token :func:`repro.experiments.cache.cache_key` folds into the
    content address.  ``None`` (the common case: every built-in is
    version 1) keeps the address byte-identical to the pre-registry
    format, so historical cache entries and golden digests survive.
    """
    versions = {}
    for layer, name in active_policies(params).items():
        try:
            target = registry.resolve(layer, name)
        except UnknownPolicyError:
            continue  # validation reports unknown names, not the cache
        version = getattr(target, "version", 1)
        if version != 1:
            versions[layer] = {"name": name, "version": version}
    return versions or None


__all__ = [
    "PARAM_FIELDS",
    "PolicyRegistry",
    "UnknownPolicyError",
    "active_policies",
    "policy_names",
    "policy_versions",
    "registry",
    "resolve",
]
