"""Transaction admission policies (the ``"admission"`` policy layer).

The paper's model admits transactions FCFS with no multiprogramming
limit.  Its §3.7 observes that under heavy load (``ntrans = 200``)
fine granularity collapses because lock-processing overhead grows with
the number of transactions, and points to *transaction level
scheduling* (the authors' companion work, refs [3, 4]) as the remedy.
This module implements that remedy as an extension:

* :class:`FCFSAdmission` — the paper's policy, optionally with a fixed
  multiprogramming limit (MPL);
* :class:`SmallestFirstAdmission` — admit the smallest pending
  transaction first (small transactions conflict less, §3.2);
* :class:`AdaptiveAdmission` — adjust the MPL from the observed lock
  denial rate, shrinking under thrash and growing when requests
  succeed.

A policy only decides *which* pending transaction may issue its lock
request next and *whether* one may right now; the queueing mechanics —
the pending list, the in-flight count, the admit events — live in
:class:`AdmissionGate`, which the model orchestrator owns.
"""


class FCFSAdmission:
    """First-come-first-served, with an optional fixed MPL.

    Parameters
    ----------
    mpl_limit:
        Maximum transactions admitted-and-unfinished at once;
        0 means unlimited (the paper's model).
    """

    name = "fcfs"

    def __init__(self, mpl_limit=0):
        if mpl_limit < 0:
            raise ValueError("mpl_limit must be >= 0")
        self.mpl_limit = mpl_limit
        #: Optional callable ``notify(kind, **details)`` for telemetry;
        #: policies report scheduling transitions through it (the
        #: adaptive policy emits ``"mpl_change"`` whenever feedback
        #: moves its multiprogramming limit).
        self.notify = None

    def select(self, pending, in_flight):
        """Index into *pending* to admit now, or ``None`` to hold."""
        if not pending:
            return None
        if self.mpl_limit and in_flight >= self.mpl_limit:
            return None
        return 0

    def on_grant(self):
        """Feedback hook: a lock request succeeded (unused here)."""

    def on_deny(self):
        """Feedback hook: a lock request was denied (unused here)."""


class SmallestFirstAdmission(FCFSAdmission):
    """Admit the smallest pending transaction first."""

    name = "smallest"

    def select(self, pending, in_flight):
        """Index of the smallest pending transaction, or ``None``."""
        if not pending:
            return None
        if self.mpl_limit and in_flight >= self.mpl_limit:
            return None
        smallest = 0
        for i in range(1, len(pending)):
            if pending[i].nu < pending[smallest].nu:
                smallest = i
        return smallest


class PriorityAdmission(FCFSAdmission):
    """Admit the highest transaction-class priority first.

    Priorities come from ``txn.txn_class.priority`` (0 for classless
    transactions, so the policy degrades to FCFS in single-class
    runs).  Ties are broken FCFS — the first pending transaction of
    the best priority wins — so starvation within a priority level
    cannot happen; across levels this is strict priority scheduling,
    the classic OLTP-over-batch admission discipline.
    """

    name = "priority"

    def select(self, pending, in_flight):
        """Index of the first highest-priority transaction, or ``None``."""
        if not pending:
            return None
        if self.mpl_limit and in_flight >= self.mpl_limit:
            return None
        best = 0
        for i in range(1, len(pending)):
            if pending[i].priority > pending[best].priority:
                best = i
        return best


class AdaptiveAdmission(FCFSAdmission):
    """MPL adjusted from the recent lock denial rate.

    Every *window* completed lock requests, the policy compares the
    denial fraction with two thresholds: above *high* the MPL halves
    (never below 1); below *low* it grows by one (never above
    *max_mpl*).  This is a simple rendition of the adaptive
    transaction-level scheduling the paper credits with controlling
    lock-processing overhead.
    """

    name = "adaptive"

    def __init__(self, initial_mpl=8, max_mpl=1024, window=50, low=0.1, high=0.4):
        super().__init__(mpl_limit=initial_mpl)
        if initial_mpl < 1:
            raise ValueError("initial_mpl must be >= 1")
        if not 0 <= low < high <= 1:
            raise ValueError("need 0 <= low < high <= 1")
        self.max_mpl = max_mpl
        self.window = window
        self.low = low
        self.high = high
        self._grants = 0
        self._denials = 0

    def on_grant(self):
        """Count a granted request and maybe adapt."""
        self._grants += 1
        self._maybe_adapt()

    def on_deny(self):
        """Count a denied request and maybe adapt."""
        self._denials += 1
        self._maybe_adapt()

    def _maybe_adapt(self):
        total = self._grants + self._denials
        if total < self.window:
            return
        denial_rate = self._denials / total
        before = self.mpl_limit
        if denial_rate > self.high:
            self.mpl_limit = max(1, self.mpl_limit // 2)
        elif denial_rate < self.low:
            self.mpl_limit = min(self.max_mpl, self.mpl_limit + 1)
        if self.mpl_limit != before and self.notify is not None:
            self.notify(
                "mpl_change",
                mpl=self.mpl_limit,
                previous=before,
                denial_rate=round(denial_rate, 4),
            )
        self._grants = 0
        self._denials = 0


class AdmissionGate:
    """The pending queue and MPL accounting around an admission policy.

    Extracted from the model so the orchestrator only says "gate this
    transaction" and "one finished": the gate owns the pending list,
    the in-flight count and the admit events, and pumps the policy
    whenever either changes.
    """

    def __init__(self, policy, env, metrics):
        self.policy = policy
        self.env = env
        self.metrics = metrics
        self._pending = []
        self.in_flight = 0

    def admit(self, txn):
        """Generator: park *txn* until the policy admits it."""
        admit = self.env.event()
        self._pending.append((txn, admit))
        self.metrics.pending.update(len(self._pending))
        self.pump()
        yield admit

    def pump(self):
        """Admit pending transactions while the policy allows."""
        while self._pending:
            index = self.policy.select(
                [txn for txn, _ in self._pending], self.in_flight
            )
            if index is None:
                return
            _, admit = self._pending.pop(index)
            self.metrics.pending.update(len(self._pending))
            self.in_flight += 1
            admit.succeed()

    def on_complete(self):
        """One admitted transaction finished; re-pump the queue."""
        self.in_flight -= 1
        self.pump()


def _fcfs(params):
    return FCFSAdmission(params.mpl_limit)


def _smallest(params):
    return SmallestFirstAdmission(params.mpl_limit)


def _priority(params):
    return PriorityAdmission(params.mpl_limit)


def _adaptive(params):
    if params.mpl_limit:
        initial = params.mpl_limit
    else:
        # Start near the machine's natural parallelism rather than
        # admitting the whole population: under heavy load the
        # uncontrolled request storm saturates the disks with lock
        # work before any feedback accrues.
        initial = min(params.ntrans, 2 * params.npros)
    return AdaptiveAdmission(initial_mpl=max(1, initial))


def make_admission_policy(params):
    """Build the admission policy described by *params*."""
    from repro.policies import resolve

    return resolve("admission", params.txn_policy)(params)
