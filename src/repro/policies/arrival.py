"""Arrival-process policies (the ``"arrival"`` policy layer).

An arrival policy decides when transactions enter the system and
whether completed ones are replaced:

``closed``
    The paper's fixed-population model: ``ntrans`` transactions
    arrive one time unit apart, and every completion immediately
    spawns a replacement so the population stays constant.
``open``
    Poisson arrivals at ``arrival_rate`` per time unit, no
    replacement on completion (``ntrans`` then only sizes nothing —
    the source runs for the whole horizon).
``bursty``
    A two-state Markov-modulated Poisson source: exponentially
    distributed quiet phases at ``arrival_rate`` alternating with
    shorter burst phases at ``burst_factor`` times that rate.  Open
    (no replacement); models the flash-crowd traffic the closed model
    cannot express.

All draws come from the model's ``arrivals`` stream, so arrival
shapes never perturb any other random stream.

Multi-class mixes (``workload = "classes"``) are handled per policy:
the closed system apportions the ``ntrans`` terminals over the
classes deterministically (largest-remainder, no randomness) and
replaces each completion with a transaction of the *same* class, so
per-class populations are constants of the run — the closed
multi-class MVA's assumption.  The open system runs one independent
Poisson source per class at ``arrival_rate * fraction`` (stream
``("arrivals", name)``), and the bursty source keeps its aggregate
modulated process, picking the class per arrival.
"""


class ClosedArrivals:
    """Fixed population: staggered initial batch, replace on complete."""

    name = "closed"

    def start(self, model):
        """Launch the initial population, one time unit apart.

        With a class mix the terminal classes follow the
        largest-remainder apportionment, interleaved in declaration
        order (class of terminal *i* fixed before any draws, so the
        stagger pattern is deterministic given the mix).
        """
        if model.mix is not None:
            counts = model.mix.population_counts(model.params.ntrans)
            slots = []
            for cls, count in zip(model.mix, counts):
                slots.extend([cls] * count)
            for i, cls in enumerate(slots):
                model.env.process(self._staggered(model, float(i), cls))
            return
        for i in range(model.params.ntrans):
            model.env.process(self._staggered(model, float(i)))

    def _staggered(self, model, delay, cls=None):
        if delay > 0:
            yield delay  # bare-delay sleep: no Timeout allocated
        yield from model.lifecycle(model.new_transaction(cls))

    def on_complete(self, model, txn=None):
        """Closed system: the finished transaction is immediately
        replaced so the population stays at ``ntrans`` — with a mix,
        replaced *by its own class* so per-class populations hold."""
        cls = txn.txn_class if txn is not None else None
        model.env.process(model.lifecycle(model.new_transaction(cls)))


class OpenArrivals:
    """Poisson source: independent arrivals, no replacement."""

    name = "open"

    def start(self, model):
        """Launch the Poisson source process(es).

        One source per class under a mix — thinning a Poisson stream
        by the class fractions is distribution-identical to
        independent per-class streams, and per-class streams keep one
        class's arrival draws from perturbing another's.
        """
        if model.mix is not None:
            from repro.des import RandomStreams

            streams = RandomStreams(model.params.seed)
            for cls in model.mix:
                rng = streams.stream("arrivals", cls.name)
                rate = model.params.arrival_rate * cls.fraction
                model.env.process(self._class_source(model, cls, rng, rate))
            return
        model.env.process(self._source(model))

    def _source(self, model):
        rate = model.params.arrival_rate
        rng = model.rngs["arrivals"]
        while True:
            yield rng.expovariate(rate)  # bare-delay sleep
            model.env.process(model.lifecycle(model.new_transaction()))

    def _class_source(self, model, cls, rng, rate):
        while True:
            yield rng.expovariate(rate)  # bare-delay sleep
            model.env.process(model.lifecycle(model.new_transaction(cls)))

    def on_complete(self, model, txn=None):
        """Open system: completions are not replaced."""


class BurstyArrivals(OpenArrivals):
    """Markov-modulated Poisson: quiet phases alternating with bursts.

    Phase lengths are exponential with means :attr:`mean_quiet` /
    :attr:`mean_burst`; the burst-phase rate is ``arrival_rate *
    burst_factor``.  The long-run average rate is therefore
    ``arrival_rate * (mean_quiet + burst_factor * mean_burst) /
    (mean_quiet + mean_burst)``.
    """

    name = "bursty"

    #: Rate multiplier inside a burst phase.
    burst_factor = 8.0
    #: Mean burst-phase length (simulated time units).
    mean_burst = 20.0
    #: Mean quiet-phase length (simulated time units).
    mean_quiet = 80.0

    def _source(self, model):
        base = model.params.arrival_rate
        rng = model.rngs["arrivals"]
        phases = (
            (base, self.mean_quiet),
            (base * self.burst_factor, self.mean_burst),
        )
        while True:
            for rate, mean_length in phases:
                phase_end = model.env.now + rng.expovariate(1.0 / mean_length)
                while True:
                    gap = rng.expovariate(rate)
                    if model.env.now + gap >= phase_end:
                        # The next arrival falls past the phase switch:
                        # idle out the remainder and change rate.
                        yield phase_end - model.env.now
                        break
                    yield gap
                    model.env.process(model.lifecycle(model.new_transaction()))
