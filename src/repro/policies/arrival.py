"""Arrival-process policies (the ``"arrival"`` policy layer).

An arrival policy decides when transactions enter the system and
whether completed ones are replaced:

``closed``
    The paper's fixed-population model: ``ntrans`` transactions
    arrive one time unit apart, and every completion immediately
    spawns a replacement so the population stays constant.
``open``
    Poisson arrivals at ``arrival_rate`` per time unit, no
    replacement on completion (``ntrans`` then only sizes nothing —
    the source runs for the whole horizon).
``bursty``
    A two-state Markov-modulated Poisson source: exponentially
    distributed quiet phases at ``arrival_rate`` alternating with
    shorter burst phases at ``burst_factor`` times that rate.  Open
    (no replacement); models the flash-crowd traffic the closed model
    cannot express.

All draws come from the model's ``arrivals`` stream, so arrival
shapes never perturb any other random stream.
"""


class ClosedArrivals:
    """Fixed population: staggered initial batch, replace on complete."""

    name = "closed"

    def start(self, model):
        """Launch the initial population, one time unit apart."""
        for i in range(model.params.ntrans):
            model.env.process(self._staggered(model, float(i)))

    def _staggered(self, model, delay):
        if delay > 0:
            yield delay  # bare-delay sleep: no Timeout allocated
        yield from model.lifecycle(model.new_transaction())

    def on_complete(self, model):
        """Closed system: the finished transaction is immediately
        replaced so the population stays at ``ntrans``."""
        model.env.process(model.lifecycle(model.new_transaction()))


class OpenArrivals:
    """Poisson source: independent arrivals, no replacement."""

    name = "open"

    def start(self, model):
        """Launch the Poisson source process."""
        model.env.process(self._source(model))

    def _source(self, model):
        rate = model.params.arrival_rate
        rng = model.rngs["arrivals"]
        while True:
            yield rng.expovariate(rate)  # bare-delay sleep
            model.env.process(model.lifecycle(model.new_transaction()))

    def on_complete(self, model):
        """Open system: completions are not replaced."""


class BurstyArrivals(OpenArrivals):
    """Markov-modulated Poisson: quiet phases alternating with bursts.

    Phase lengths are exponential with means :attr:`mean_quiet` /
    :attr:`mean_burst`; the burst-phase rate is ``arrival_rate *
    burst_factor``.  The long-run average rate is therefore
    ``arrival_rate * (mean_quiet + burst_factor * mean_burst) /
    (mean_quiet + mean_burst)``.
    """

    name = "bursty"

    #: Rate multiplier inside a burst phase.
    burst_factor = 8.0
    #: Mean burst-phase length (simulated time units).
    mean_burst = 20.0
    #: Mean quiet-phase length (simulated time units).
    mean_quiet = 80.0

    def _source(self, model):
        base = model.params.arrival_rate
        rng = model.rngs["arrivals"]
        phases = (
            (base, self.mean_quiet),
            (base * self.burst_factor, self.mean_burst),
        )
        while True:
            for rate, mean_length in phases:
                phase_end = model.env.now + rng.expovariate(1.0 / mean_length)
                while True:
                    gap = rng.expovariate(rate)
                    if model.env.now + gap >= phase_end:
                        # The next arrival falls past the phase switch:
                        # idle out the remainder and change rate.
                        yield phase_end - model.env.now
                        break
                    yield gap
                    model.env.process(model.lifecycle(model.new_transaction()))
