"""Concurrency-control protocols (the ``"cc"`` policy layer).

A :class:`ConcurrencyControl` owns the lock-acquisition phase of the
transaction lifecycle: everything between admission and execution,
plus what happens when execution has to be undone.  The orchestrator
(:class:`~repro.core.model.LockingGranularityModel`) calls

* :meth:`~ConcurrencyControl.acquire` — a generator that returns once
  the transaction holds every lock it needs (blocking, restarting or
  aborting victims along the way as the protocol dictates);
* :meth:`~ConcurrencyControl.post_execute` — a generator run after
  all sub-transactions completed, returning ``True`` to commit or
  aborting-and-backing-off and returning ``False`` to retry (used by
  wound-wait, whose victims may already be executing);
* :meth:`~ConcurrencyControl.fault_abort` — the single degraded-mode
  abort path shared by **every** protocol: release locks, wake
  waiters, back off on the fault-retry stream, retry.  Faulted and
  conflict aborts thus share one code path and draw exactly one
  backoff variate per abort (the model's
  :class:`~repro.faults.backoff.BackoffPolicy` discipline), they just
  draw it from different named streams so fault injection never
  perturbs conflict-backoff reproducibility.

Four protocols are built in:

``preclaim``
    The paper's conservative scheme: all locks at once, block on the
    named blocker until it completes, retry.  Deadlock-free.
``incremental``
    Claim-as-needed 2PL (footnote 1): granules acquired one at a time
    through the explicit lock manager; waits-for cycles are broken by
    aborting the youngest transaction in the cycle.
``no-waiting``
    Immediate-restart CC (Thomasian's restart-oriented family): a
    denied request never blocks — the transaction aborts, backs off
    and retries from scratch.  Deadlock-free by construction; works
    with any conflict engine.
``wound-wait``
    Timestamp-ordered deadlock avoidance: an older requester *wounds*
    (aborts) any younger conflicting holder; a younger requester
    waits for older holders.  Wounded transactions that are already
    executing finish their current work and abort at the commit
    point.  Deadlock-free: waits only ever point from younger to
    older.

All protocols are registered in :data:`repro.policies.registry`; new
ones subclass :class:`ConcurrencyControl`, implement ``acquire`` and
register under a fresh name (see DESIGN.md §8 for a worked example).
"""

from repro.lockmgr.manager import RequestStatus
from repro.lockmgr.modes import LockMode

#: Outcome value delivered to a waiting request when its owner is
#: killed (deadlock victim or wound).
ABORTED = "aborted"


class ConcurrencyControl:
    """Base protocol: binding, shared abort paths, commit hook.

    Class attributes
    ----------------
    name:
        Registry key; also surfaced in manifests and the CLI.
    needs_granules:
        True when the protocol acquires individual granules through
        the explicit lock manager and therefore requires materialised
        granule sets (``conflict_engine="explicit"``).
    version:
        Semantic version of the protocol's behaviour.  ``1`` for as
        shipped; bumping it forks the result-cache address of runs
        using this protocol (see
        :func:`repro.policies.policy_versions`) without invalidating
        any other policy's cached results.
    """

    name = None
    needs_granules = False
    version = 1
    #: Contention semantics assumed by the analytic fast path
    #: (:mod:`repro.analytic.mva`): ``"blocking"`` (deny → wait for the
    #: blocker, retry), ``"restart"`` (deny → abort, back off, retry
    #: from scratch) or ``"incremental"`` (granule-at-a-time waits, lock
    #: work paid once).  ``None`` lets the model infer from
    #: ``needs_granules``.
    analytic_semantics = None

    def __init__(self):
        self.model = None

    def bind(self, model):
        """Attach to *model*; called once before the run starts."""
        self.model = model
        return self

    # -- protocol hooks ---------------------------------------------------

    def acquire(self, txn):
        """Generator: return once *txn* holds all its locks."""
        raise NotImplementedError

    def post_execute(self, txn):
        """Generator: ``True`` to commit, ``False`` to retry.

        The default commits unconditionally; protocols that can kill
        a transaction *after* it acquired its locks (wound-wait)
        override this to abort at the commit point.
        """
        return True
        yield  # pragma: no cover - makes this a generator

    # -- shared abort paths -----------------------------------------------

    def fault_abort(self, txn, node):
        """Degraded-mode abort: release, wake waiters, back off, retry.

        One code path for every protocol; the backoff variate comes
        from the dedicated ``fault_backoff`` stream so fault-triggered
        draws never perturb the conflict-backoff stream.
        """
        model = self.model
        model.conflicts.release(txn)
        model.metrics.active.update(model.conflicts.active_count)
        model.metrics.locks_held.update(model.conflicts.locks_held)
        model.metrics.note_failure_abort()
        txn.fault_retries += 1
        model.emit("retry", txn, node=node, retries=txn.fault_retries)
        model.wake_waiters(txn)
        yield model.backoff.delay(
            model.rngs["fault_backoff"], txn.fault_retries - 1
        )

    def conflict_abort(self, txn, reason):
        """Conflict-driven abort bookkeeping plus one backoff variate.

        Emits ``abort``, counts a denial and an abort, feeds the
        admission policy's congestion signal, then sleeps a randomised
        backoff so the same conflict does not instantly re-form among
        retrying transactions.  The draw discipline matches
        :meth:`fault_abort`: exactly one variate per abort, from the
        ``backoff`` stream.  A transaction class scales the drawn
        delay by its ``backoff`` factor (still one variate, so class
        backoff never desyncs the stream).
        """
        model = self.model
        model.emit("abort", txn, aborts=txn.aborts + 1, reason=reason)
        model.metrics.note_denial()
        model.metrics.note_abort(reason, txn=txn)
        txn.aborts += 1
        model.admission.policy.on_deny()
        delay = model.backoff.delay(model.rngs["backoff"], txn.aborts - 1)
        if txn.txn_class is not None and txn.txn_class.backoff != 1.0:
            delay = delay * txn.txn_class.backoff
        yield delay


class PreclaimCC(ConcurrencyControl):
    """Conservative preclaim: all locks up front, block on the blocker."""

    name = "preclaim"
    analytic_semantics = "blocking"

    def acquire(self, txn):
        model = self.model
        params = model.params
        # The hierarchical engine sets intention locks and may
        # escalate, so the chargeable lock count is its planned set,
        # not the flat placement count.
        plan_count = getattr(model.conflicts, "planned_lock_count", None)
        while True:
            txn.attempts += 1
            model.metrics.note_request()
            locks = plan_count(txn) if plan_count is not None else txn.lock_count
            model.emit("lock_request", txn, attempt=txn.attempts, locks=locks)
            yield model.machine.lock_overhead(
                locks * params.lcputime, locks * params.liotime
            )
            blocker = model.conflicts.request(txn)
            if blocker is None:
                model.emit("lock_grant", txn, attempt=txn.attempts)
                model.admission.policy.on_grant()
                return
            yield from self._denied(txn, blocker)

    def _denied(self, txn, blocker):
        """Denied request: wait for *blocker* to complete, then retry."""
        model = self.model
        model.emit("lock_deny", txn, blocker=blocker.tid)
        model.metrics.note_denial()
        model.admission.policy.on_deny()
        wake = model.env.event()
        model.blocked_wakes.setdefault(blocker.tid, []).append(wake)
        model.emit("block", txn, blocker=blocker.tid)
        model.metrics.blocked.increment(1)
        blocked_at = model.env.now
        yield wake
        model.emit("wake", txn)
        model.metrics.blocked.increment(-1)
        if model.instruments is not None:
            # Preclaim has no per-granule identity; the wait is
            # attributed to the run's granularity label only.
            model.instruments.observe_lock_wait(
                model.env.now - blocked_at, txn_class=txn.class_name
            )


class NoWaitingCC(PreclaimCC):
    """No-waiting (immediate restart): a denied request never blocks."""

    name = "no-waiting"
    analytic_semantics = "restart"

    def _denied(self, txn, blocker):
        """Denied request: abort immediately, back off, restart."""
        model = self.model
        model.emit("lock_deny", txn, blocker=blocker.tid)
        # conflict_abort counts the denial (metrics + admission
        # feedback) along with the abort.
        yield from self.conflict_abort(txn, reason="no-waiting")


class IncrementalCC(ConcurrencyControl):
    """Claim-as-needed 2PL with youngest-victim deadlock detection."""

    name = "incremental"
    needs_granules = True
    analytic_semantics = "incremental"

    def bind(self, model):
        from repro.lockmgr.deadlock import DeadlockDetector

        super().bind(model)
        #: tid -> (waiting LockRequest, wake event) for transactions
        #: currently parked inside the lock manager's FIFO queues.
        self._waiting = {}
        self._detector = DeadlockDetector(
            model.conflicts.manager, victim_key=lambda txn: txn.tid
        )
        return self

    def acquire(self, txn):
        model = self.model
        params = model.params
        manager = model.conflicts.manager
        mode = LockMode.X if txn.is_writer else LockMode.S
        while True:
            txn.attempts += 1
            model.metrics.note_request()
            model.emit(
                "lock_request", txn, attempt=txn.attempts,
                locks=len(txn.granules),
            )
            # The bundled request/set/release cost, charged per attempt
            # exactly as in the preclaim protocol so the two schemes
            # differ only in conflict semantics.
            yield model.machine.lock_overhead(
                len(txn.granules) * params.lcputime,
                len(txn.granules) * params.liotime,
            )
            aborted = False
            for granule in txn.granules:
                request = manager.acquire(txn, granule, mode)
                if request.status is RequestStatus.GRANTED:
                    continue
                wake = model.env.event()
                request.on_grant = (
                    lambda _req, event=wake: event.succeed("granted")
                )
                self._waiting[txn.tid] = (request, wake)
                victim = self._detector.resolve_once()
                if victim is txn:
                    # Self-abort before parking: nothing waits on the
                    # wake event, so it must never trigger (a spurious
                    # trigger would consume a kernel event slot).
                    manager.cancel(request)
                    manager.release_all(txn)
                    self._waiting.pop(txn.tid, None)
                    aborted = True
                    break
                if victim is not None:
                    self._abort_waiter(victim)
                model.metrics.blocked.increment(1)
                blocked_at = model.env.now
                outcome = yield wake
                model.metrics.blocked.increment(-1)
                if model.instruments is not None:
                    model.instruments.observe_lock_wait(
                        model.env.now - blocked_at, granule=granule,
                        txn_class=txn.class_name,
                    )
                self._waiting.pop(txn.tid, None)
                if outcome == ABORTED:
                    aborted = True
                    break
            if not aborted:
                model.emit("lock_grant", txn, attempt=txn.attempts)
                model.conflicts.mark_active(txn)
                model.admission.policy.on_grant()
                return
            yield from self.conflict_abort(txn, reason="deadlock")

    def _abort_waiter(self, victim):
        """Kill another waiting transaction to break a cycle."""
        manager = self.model.conflicts.manager
        entry = self._waiting.pop(victim.tid, None)
        if entry is not None:
            request, wake = entry
            manager.cancel(request)
            manager.release_all(victim)
            if not wake.triggered:
                wake.succeed(ABORTED)
        else:
            manager.release_all(victim)


class WoundWaitCC(ConcurrencyControl):
    """Wound-wait: older transactions wound younger conflicting holders.

    Timestamps are transaction ids (assigned in start order, so a
    smaller tid is older).  On conflict, the requester wounds every
    younger holder: a holder that is itself parked in a lock queue is
    aborted on the spot (like a deadlock victim); a holder already
    executing is marked wounded and aborts at its commit point,
    releasing its locks then.  A requester younger than some holder
    simply waits in the manager's FIFO queue.  Since a transaction
    only ever waits for an *older* one, waits-for edges all point from
    younger to older and cycles are impossible.
    """

    name = "wound-wait"
    needs_granules = True
    analytic_semantics = "incremental"

    def bind(self, model):
        super().bind(model)
        self._waiting = {}
        #: tids wounded while executing; they abort at post_execute.
        self._wounded = set()
        return self

    def acquire(self, txn):
        model = self.model
        params = model.params
        manager = model.conflicts.manager
        mode = LockMode.X if txn.is_writer else LockMode.S
        self._wounded.discard(txn.tid)
        while True:
            txn.attempts += 1
            model.metrics.note_request()
            model.emit(
                "lock_request", txn, attempt=txn.attempts,
                locks=len(txn.granules),
            )
            yield model.machine.lock_overhead(
                len(txn.granules) * params.lcputime,
                len(txn.granules) * params.liotime,
            )
            aborted = False
            for granule in txn.granules:
                request = manager.acquire(txn, granule, mode)
                if request.status is RequestStatus.GRANTED:
                    continue
                wake = model.env.event()
                request.on_grant = (
                    lambda _req, event=wake: event.succeed("granted")
                )
                self._waiting[txn.tid] = (request, wake)
                # Wound every younger conflicting holder.  Releasing a
                # wounded waiter's locks may promote our own queued
                # request synchronously, in which case the wake event
                # is already triggered when we yield it.
                for holder in manager.conflicting_holders(txn, granule, mode):
                    if holder.tid > txn.tid:
                        self._wound(holder)
                model.metrics.blocked.increment(1)
                blocked_at = model.env.now
                outcome = yield wake
                model.metrics.blocked.increment(-1)
                if model.instruments is not None:
                    model.instruments.observe_lock_wait(
                        model.env.now - blocked_at, granule=granule,
                        txn_class=txn.class_name,
                    )
                self._waiting.pop(txn.tid, None)
                if outcome == ABORTED:
                    aborted = True
                    break
            if not aborted:
                model.emit("lock_grant", txn, attempt=txn.attempts)
                model.conflicts.mark_active(txn)
                model.admission.policy.on_grant()
                return
            yield from self.conflict_abort(txn, reason="wounded")

    def _wound(self, victim):
        """Abort *victim* now if it is waiting, else mark it wounded."""
        entry = self._waiting.pop(victim.tid, None)
        if entry is None:
            # Already executing with a full lock set; it aborts at its
            # commit point (post_execute) and releases everything then.
            self._wounded.add(victim.tid)
            return
        manager = self.model.conflicts.manager
        request, wake = entry
        manager.cancel(request)
        manager.release_all(victim)
        if not wake.triggered:
            wake.succeed(ABORTED)

    def post_execute(self, txn):
        if txn.tid not in self._wounded:
            return True
        self._wounded.discard(txn.tid)
        model = self.model
        model.conflicts.release(txn)
        model.metrics.active.update(model.conflicts.active_count)
        model.metrics.locks_held.update(model.conflicts.locks_held)
        yield from self.conflict_abort(txn, reason="wounded")
        return False
