"""Placement and partitioning policies (two registry layers).

Thin factories binding the granule-placement strategies of
:mod:`repro.core.placement` and the data-partitioning methods of
:mod:`repro.core.partitioning` into the policy registry.  A placement
answers ``lock_count(nu)`` / ``granules(nu, rng)``; a partitioning
answers ``processors(rng)``.  Register new ones under fresh names to
model other storage layouts without touching the model.
"""

from repro.core.partitioning import HorizontalPartitioning, RandomPartitioning
from repro.core.placement import (
    BestPlacement,
    RandomPlacement,
    SkewedPlacement,
    WorstPlacement,
)


def best(params):
    """Sequential access: locks proportional to the fraction touched."""
    return BestPlacement(params.dbsize, params.ltot)


def worst(params):
    """Fully scattered access: every entity in a different granule."""
    return WorstPlacement(params.dbsize, params.ltot)


def random_placement(params):
    """Uniform random access (Yao's mean-value formula)."""
    return RandomPlacement(params.dbsize, params.ltot)


def skewed(params):
    """Hot-spot access: Zipf(theta = ``access_skew``) over granules."""
    return SkewedPlacement(params.dbsize, params.ltot, params.access_skew)


def horizontal(params):
    """Round-robin over all disks: every transaction uses all nodes."""
    return HorizontalPartitioning(params.npros)


def random_partitioning(params):
    """Relations on a random subset of disks: ``PU ~ U{1 .. npros}``."""
    return RandomPartitioning(params.npros)
