"""First-class transaction classes (multi-class workload mixes).

The paper's §3.6 "mixed workload" is a single-population hack: one
size sampler with a coin flip.  This module promotes the idea to a
first-class :class:`TransactionClass` — a named population with its
own fraction of the arrival stream, size distribution, read/write
ratio, preferred locking granularity, admission priority, backoff
scale and (optional) access skew — and a validated
:class:`WorkloadMix` of such classes that the whole stack (sampling,
lifecycle, concurrency control, results, analytic model, metrics)
can discriminate on.

Classes are configured through ``SimulationParameters.txn_classes``,
either as ``TransactionClass`` instances or as compact spec strings::

    oltp:0.8:50
    batch:0.2:500:write=0.5:gran=file:prio=1

i.e. ``name:fraction:maxtransize`` followed by optional ``key=value``
refinements (``dist``, ``write``, ``gran``, ``prio``, ``backoff``,
``skew``).  ``parse_class_specs`` / ``format_class_specs`` round-trip
the canonical comma-joined form, which is also what parameter dicts,
CSVs and cache documents carry — an empty mix is *omitted entirely*
so single-class digests stay byte-identical (the same discipline as
the registry's ``policy_versions`` token).
"""

from dataclasses import dataclass

#: Recognised per-class size distributions.
SIZE_DISTS = ("uniform", "fixed")
#: Recognised per-class granularity preferences for the hierarchical
#: engine: ``default`` follows ``escalation_threshold``, ``file``
#: always takes file locks, ``block`` never escalates.
GRANULARITIES = ("default", "file", "block")

#: Spec-string refinement keys, in canonical emission order.
_SPEC_KEYS = ("dist", "write", "gran", "prio", "backoff", "skew")


@dataclass(frozen=True)
class TransactionClass:
    """One population in a multi-class workload mix.

    Attributes
    ----------
    name:
        Label carried through results, metrics and reports.
    fraction:
        Share of the transaction population in ``(0, 1]``; the
        fractions of a mix must sum to 1.
    maxtransize:
        Size bound: ``NU ~ U{1..maxtransize}`` for the ``uniform``
        distribution, exactly ``maxtransize`` for ``fixed``.
    size_dist:
        ``uniform`` (the paper's shape) or ``fixed``.
    write_fraction:
        Probability a member is an updater taking X locks.
    granularity:
        Preferred level under the hierarchical engine: ``default``
        (honor ``escalation_threshold``), ``file`` (always lock whole
        files — the coarse-grained preference), or ``block`` (never
        escalate).
    priority:
        Admission priority (higher admits first under the
        ``priority`` admission policy; ties fall back to FCFS).
    backoff:
        Multiplier on the restart backoff delay for members of this
        class (1.0 = the shared policy unchanged).
    access_skew:
        Optional per-class Zipf theta overriding the global
        ``access_skew`` under the ``skewed`` placement; ``None``
        inherits the global value.
    """

    name: str
    fraction: float
    maxtransize: int
    size_dist: str = "uniform"
    write_fraction: float = 1.0
    granularity: str = "default"
    priority: int = 0
    backoff: float = 1.0
    access_skew: float = None

    def validate(self, dbsize=None):
        """Raise ``ValueError`` on any out-of-range field."""
        if not self.name or "," in self.name or ":" in self.name:
            raise ValueError(
                "class name must be non-empty and contain no ',' or ':', "
                "got {!r}".format(self.name)
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                "class {}: fraction must be in (0, 1], got {}".format(
                    self.name, self.fraction
                )
            )
        if self.maxtransize < 1:
            raise ValueError(
                "class {}: maxtransize must be >= 1, got {}".format(
                    self.name, self.maxtransize
                )
            )
        if dbsize is not None and self.maxtransize > dbsize:
            raise ValueError(
                "class {}: maxtransize must be <= dbsize={}, got {}".format(
                    self.name, dbsize, self.maxtransize
                )
            )
        if self.size_dist not in SIZE_DISTS:
            raise ValueError(
                "class {}: size_dist must be one of {}, got {!r}".format(
                    self.name, SIZE_DISTS, self.size_dist
                )
            )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError(
                "class {}: write_fraction must be in [0, 1]".format(self.name)
            )
        if self.granularity not in GRANULARITIES:
            raise ValueError(
                "class {}: granularity must be one of {}, got {!r}".format(
                    self.name, GRANULARITIES, self.granularity
                )
            )
        if self.backoff <= 0:
            raise ValueError(
                "class {}: backoff must be > 0, got {}".format(
                    self.name, self.backoff
                )
            )
        if self.access_skew is not None and self.access_skew < 0:
            raise ValueError(
                "class {}: access_skew must be >= 0".format(self.name)
            )

    @property
    def mean_size(self):
        """Expected NU of one member."""
        if self.size_dist == "fixed":
            return float(self.maxtransize)
        return (self.maxtransize + 1) / 2.0

    @property
    def second_moment_size(self):
        """E[NU^2] of one member (size-biased moments for the MVA)."""
        if self.size_dist == "fixed":
            return float(self.maxtransize) ** 2
        m = self.maxtransize
        return (m + 1) * (2 * m + 1) / 6.0

    def spec(self):
        """Canonical spec string (defaults omitted)."""
        parts = [
            self.name,
            _trim_float(self.fraction),
            str(self.maxtransize),
        ]
        if self.size_dist != "uniform":
            parts.append("dist={}".format(self.size_dist))
        if self.write_fraction != 1.0:
            parts.append("write={}".format(_trim_float(self.write_fraction)))
        if self.granularity != "default":
            parts.append("gran={}".format(self.granularity))
        if self.priority != 0:
            parts.append("prio={}".format(self.priority))
        if self.backoff != 1.0:
            parts.append("backoff={}".format(_trim_float(self.backoff)))
        if self.access_skew is not None:
            parts.append("skew={}".format(_trim_float(self.access_skew)))
        return ":".join(parts)


class WorkloadMix:
    """A validated, ordered collection of transaction classes.

    Parameters
    ----------
    classes:
        Sequence of :class:`TransactionClass` whose fractions sum to
        1 (within 1e-6) and whose names are unique.
    """

    def __init__(self, classes, dbsize=None):
        classes = tuple(classes)
        if not classes:
            raise ValueError("a workload mix needs at least one class")
        names = [cls.name for cls in classes]
        if len(set(names)) != len(names):
            raise ValueError(
                "class names must be unique, got {}".format(names)
            )
        for cls in classes:
            cls.validate(dbsize=dbsize)
        total = sum(cls.fraction for cls in classes)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                "class fractions must sum to 1, got {}".format(total)
            )
        self.classes = classes

    def __iter__(self):
        return iter(self.classes)

    def __len__(self):
        return len(self.classes)

    def __getitem__(self, index):
        return self.classes[index]

    def by_name(self, name):
        """The class labelled *name* (KeyError when absent)."""
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(name)

    @property
    def names(self):
        return tuple(cls.name for cls in self.classes)

    @property
    def mean_size(self):
        """Mixture-mean transaction size."""
        return sum(cls.fraction * cls.mean_size for cls in self.classes)

    @property
    def second_moment_size(self):
        """Mixture E[NU^2]."""
        return sum(
            cls.fraction * cls.second_moment_size for cls in self.classes
        )

    def pick(self, u):
        """The class selected by one uniform variate *u* in [0, 1).

        Cumulative-fraction inversion in declaration order — the same
        draw discipline as :class:`repro.core.workload.MixedSizes`, so
        the two-class compatibility alias consumes the random stream
        identically to the historical sampler.
        """
        edge = 0.0
        for cls in self.classes[:-1]:
            edge += cls.fraction
            if u < edge:
                return cls
        return self.classes[-1]

    def population_counts(self, ntrans):
        """Largest-remainder apportionment of *ntrans* terminals.

        Deterministic (no randomness): every class gets
        ``floor(ntrans * fraction)`` terminals and the leftovers go to
        the largest fractional remainders (declaration order breaks
        ties).  Every class with a positive fraction is guaranteed at
        least the chance to round up; classes can still end up with 0
        terminals when ``ntrans`` is smaller than the class count.
        """
        quotas = [ntrans * cls.fraction for cls in self.classes]
        counts = [int(q) for q in quotas]
        leftovers = ntrans - sum(counts)
        order = sorted(
            range(len(quotas)),
            key=lambda i: (counts[i] - quotas[i], i),
        )
        for i in order[:leftovers]:
            counts[i] += 1
        return counts

    def spec(self):
        """Canonical comma-joined spec string."""
        return format_class_specs(self.classes)


def parse_class_spec(text):
    """One ``name:fraction:maxtransize[:key=value]*`` spec string."""
    parts = [part.strip() for part in text.split(":")]
    if len(parts) < 3:
        raise ValueError(
            "class spec needs name:fraction:maxtransize, got {!r}".format(text)
        )
    name, fraction, maxtransize = parts[0], parts[1], parts[2]
    try:
        kwargs = {
            "name": name,
            "fraction": float(fraction),
            "maxtransize": int(maxtransize),
        }
    except ValueError:
        raise ValueError(
            "class spec {!r}: fraction must be a float and maxtransize "
            "an int".format(text)
        )
    for extra in parts[3:]:
        if "=" not in extra:
            raise ValueError(
                "class spec {!r}: refinement {!r} is not key=value".format(
                    text, extra
                )
            )
        key, _, value = extra.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "dist":
            kwargs["size_dist"] = value
        elif key == "write":
            kwargs["write_fraction"] = float(value)
        elif key == "gran":
            kwargs["granularity"] = value
        elif key == "prio":
            kwargs["priority"] = int(value)
        elif key == "backoff":
            kwargs["backoff"] = float(value)
        elif key == "skew":
            kwargs["access_skew"] = float(value)
        else:
            raise ValueError(
                "class spec {!r}: unknown key {!r} (expected one of "
                "{})".format(text, key, _SPEC_KEYS)
            )
    return TransactionClass(**kwargs)


def parse_class_specs(text):
    """A comma-separated list of class specs -> tuple of classes."""
    return tuple(
        parse_class_spec(part)
        for part in str(text).split(",")
        if part.strip()
    )


def format_class_specs(classes):
    """Canonical comma-joined spec string for *classes*."""
    return ",".join(cls.spec() for cls in classes)


def normalize_classes(value):
    """Coerce *value* (specs, strings, classes, or a mix) to a tuple.

    Accepts the empty string / ``None`` / ``()`` (single-class mode),
    a spec string, a :class:`WorkloadMix`, or any iterable of
    :class:`TransactionClass` / spec strings.  Returns a plain tuple
    of ``TransactionClass`` — *not yet validated as a mix* (parameter
    validation does that with the dbsize bound in hand).
    """
    if value is None:
        return ()
    if isinstance(value, WorkloadMix):
        return value.classes
    if isinstance(value, str):
        return parse_class_specs(value)
    if isinstance(value, TransactionClass):
        return (value,)
    out = []
    for item in value:
        if isinstance(item, TransactionClass):
            out.append(item)
        elif isinstance(item, str):
            out.append(parse_class_spec(item))
        elif isinstance(item, dict):
            out.append(TransactionClass(**item))
        else:
            raise ValueError(
                "cannot interpret {!r} as a transaction class".format(item)
            )
    return tuple(out)


def mixed_workload_classes(params):
    """The §3.6 mixed workload re-expressed as a two-class mix.

    The historical ``workload="mixed"`` scalar knobs map onto a
    ``small`` / ``large`` pair; ``MixedSizes`` is the compatibility
    alias sampling from exactly this mix.
    """
    return (
        TransactionClass(
            name="small",
            fraction=params.mix_small_fraction,
            maxtransize=params.mix_small_maxtransize,
        ),
        TransactionClass(
            name="large",
            fraction=1.0 - params.mix_small_fraction,
            maxtransize=params.mix_large_maxtransize,
        ),
    )


def _trim_float(value):
    """Compact float formatting: 0.8 -> '0.8', 1.0 -> '1'."""
    text = repr(float(value))
    if text.endswith(".0"):
        text = text[:-2]
    return text
