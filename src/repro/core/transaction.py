"""Transaction and sub-transaction records."""


class Transaction:
    """One transaction cycling through the closed system.

    Created with its random draws already made (size, lock demand,
    granule set when the explicit engine is used); the model process
    then walks it through the pipeline.

    Attributes
    ----------
    tid:
        Monotonically increasing id (also the age order used by the
        deadlock victim policy: larger tid = younger).
    nu:
        Number of database entities accessed (``NUi``).
    lock_count:
        Locks required (``LUi``); real-valued for random placement
        (mean-value formula).
    granules:
        Materialised granule ids (explicit engine only, else ``None``).
    is_writer:
        True when the transaction takes X locks (always, in the
        paper's model).
    txn_class:
        The :class:`repro.core.txnclass.TransactionClass` this
        transaction belongs to, or ``None`` in the single-class
        model.  Carried through the whole lifecycle so admission,
        concurrency control, the hierarchical engine, metrics and
        results can discriminate per class.
    arrival:
        Simulation time it entered the pending queue.
    attempts:
        Lock requests issued so far (1 + number of retries).
    aborts:
        Times it was chosen as a deadlock victim (incremental
        protocol only).
    fault_retries:
        Times it was aborted by a processor crash and retried
        (fault injection only; always 0 in unfaulted runs).
    commit_retries:
        Times its distributed commit was presumed aborted and retried
        (distributed protocols only; always 0 single-node).
    """

    __slots__ = (
        "tid",
        "nu",
        "lock_count",
        "granules",
        "is_writer",
        "txn_class",
        "arrival",
        "attempts",
        "aborts",
        "fault_retries",
        "commit_retries",
    )

    def __init__(self, tid, nu, lock_count, granules=None, is_writer=True,
                 txn_class=None):
        self.tid = tid
        self.nu = nu
        self.lock_count = lock_count
        self.granules = granules
        self.is_writer = is_writer
        self.txn_class = txn_class
        self.arrival = None
        self.attempts = 0
        self.aborts = 0
        self.fault_retries = 0
        self.commit_retries = 0

    @property
    def class_name(self):
        """The class label, or ``None`` in the single-class model."""
        return self.txn_class.name if self.txn_class is not None else None

    @property
    def priority(self):
        """Admission priority (0 when classless)."""
        return self.txn_class.priority if self.txn_class is not None else 0

    def __repr__(self):
        return "<Transaction #{} nu={} locks={}{}>".format(
            self.tid, self.nu, self.lock_count,
            " class={}".format(self.txn_class.name)
            if self.txn_class is not None else "",
        )

    @property
    def lock_cpu_demand(self):
        """Not bound to parameters here; computed by the model."""
        raise AttributeError(
            "use model-level helpers; demand depends on SimulationParameters"
        )


def split_entities(nu, parts):
    """Split *nu* entities into *parts* balanced integer shares.

    The first ``nu % parts`` shares get one extra entity, matching a
    round-robin horizontal partitioning of the accessed tuples.  Shares
    are never negative; when ``parts > nu`` the trailing shares are
    zero-sized (those sub-transactions exist but carry no work — the
    model drops them instead of scheduling empty service).

    >>> split_entities(10, 4)
    [3, 3, 2, 2]
    >>> split_entities(2, 4)
    [1, 1, 0, 0]
    """
    if parts < 1:
        raise ValueError("parts must be >= 1, got {}".format(parts))
    base, extra = divmod(nu, parts)
    return [base + 1 if i < extra else base for i in range(parts)]
