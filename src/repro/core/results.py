"""Result records and replication aggregation."""

import math
from dataclasses import dataclass

from repro.core.parameters import SimulationParameters
from repro.stats.student_t import t_ppf

#: Numeric output fields of a run, in reporting order.  The first nine
#: are the paper's output parameters.
RESULT_FIELDS = (
    "totcpus",
    "totios",
    "lockcpus",
    "lockios",
    "usefulcpus",
    "usefulios",
    "totcom",
    "throughput",
    "response_time",
    "response_p50",
    "response_p95",
    "cpu_utilization",
    "io_utilization",
    "lock_overhead",
    "lock_requests",
    "lock_denials",
    "denial_rate",
    "deadlock_aborts",
    "lock_escalations",
    "mean_locks_held",
    "max_locks_held",
    "mean_attempts",
    "mean_pending",
    "mean_blocked",
    "mean_active",
    "failure_aborts",
    "availability",
    "degraded_throughput",
    "commit_aborts",
    "commit_latency",
    "messages_sent",
    "messages_dropped",
    "partition_time",
)


@dataclass(frozen=True)
class SimulationResult:
    """Outputs of one simulation run (see the paper's §2 output list).

    Attributes
    ----------
    totcpus / totios:
        Total busy time over all CPUs / disks (transactions + locks).
    lockcpus / lockios:
        CPU / I/O time spent requesting, setting and releasing locks.
    usefulcpus / usefulios:
        ``(tot − lock) / npros`` — average per-processor time spent on
        transaction processing.
    totcom:
        Transactions completed within the measured horizon.
    throughput:
        ``totcom / (tmax − warmup)``.
    response_time:
        Mean time from pending-queue entry to lock release.
    failure_aborts:
        Transactions aborted because a processor crash killed one of
        their sub-transactions or lock-work shares (fault injection;
        0 in unfaulted runs).
    availability:
        ``1 − node-downtime / (npros × horizon)`` — fraction of
        node-time the machine was up (1.0 in unfaulted runs).
    degraded_throughput:
        Completions per time unit while at least one node was down
        (0.0 when the run never degraded).
    commit_aborts:
        Distributed commits presumed aborted and retried (0 for the
        local protocol).
    commit_latency:
        Mean time from the commit decision's start to its outcome
        (0.0 when no distributed commit happened).
    messages_sent / messages_dropped:
        Cluster messages sent / dropped at a partition boundary
        (0 single-node).
    partition_time:
        Measured time some network partition was active (0.0 when the
        cluster never partitioned).
    per_class:
        Per-transaction-class breakdown for multi-class runs: a tuple
        of dicts (``txn_class``, ``totcom``, ``throughput``,
        ``response_time``, ``aborts``, ``mean_attempts``) in mix
        declaration order.  Empty in single-class runs and then
        *omitted* from ``as_dict`` / cache documents, so historical
        digests and CSVs are unchanged.  Flat access uses suffixed
        field names: ``result.value("throughput__oltp")``.
    """

    params: SimulationParameters
    totcpus: float
    totios: float
    lockcpus: float
    lockios: float
    usefulcpus: float
    usefulios: float
    totcom: int
    throughput: float
    response_time: float
    response_p50: float
    response_p95: float
    cpu_utilization: float
    io_utilization: float
    lock_overhead: float
    lock_requests: int
    lock_denials: int
    denial_rate: float
    deadlock_aborts: int
    lock_escalations: int
    mean_locks_held: float
    max_locks_held: float
    mean_attempts: float
    mean_pending: float
    mean_blocked: float
    mean_active: float
    failure_aborts: int = 0
    availability: float = 1.0
    degraded_throughput: float = 0.0
    commit_aborts: int = 0
    commit_latency: float = 0.0
    messages_sent: int = 0
    messages_dropped: int = 0
    partition_time: float = 0.0
    per_class: tuple = ()

    def value(self, field):
        """*field*'s value; supports per-class names like
        ``throughput__oltp`` (``<base>__<class>``)."""
        if "__" in field:
            base, _, cls = field.partition("__")
            for entry in self.per_class:
                if entry["txn_class"] == cls:
                    return entry.get(base, math.nan)
            return math.nan
        return getattr(self, field)

    def as_dict(self, include_params=True):
        """Flat dict of outputs (optionally prefixed parameter inputs).

        Multi-class runs append one ``<field>__<class>`` column per
        per-class output; single-class rows carry no extra keys, so
        legacy CSVs round-trip unchanged.
        """
        row = {name: getattr(self, name) for name in RESULT_FIELDS}
        for entry in self.per_class:
            cls = entry["txn_class"]
            for key, value in entry.items():
                if key != "txn_class":
                    row["{}__{}".format(key, cls)] = value
        if include_params:
            for key, value in self.params.as_dict().items():
                row.setdefault(key, value)
        return row


class ReplicatedResult:
    """Mean and confidence intervals over independent replications.

    Parameters
    ----------
    results:
        Non-empty sequence of :class:`SimulationResult` from runs that
        differ only in seed.
    """

    def __init__(self, results):
        results = list(results)
        if not results:
            raise ValueError("need at least one result")
        self.results = results
        self.params = results[0].params

    def __len__(self):
        return len(self.results)

    def samples(self, field):
        """All replication values of *field* (per-class suffixed
        names like ``throughput__oltp`` included)."""
        return [result.value(field) for result in self.results]

    def mean(self, field):
        """Replication mean of *field* (nan-samples are dropped)."""
        values = [v for v in self.samples(field) if not _is_nan(v)]
        if not values:
            return math.nan
        return sum(values) / len(values)

    def stdev(self, field):
        """Replication sample standard deviation of *field*."""
        values = [v for v in self.samples(field) if not _is_nan(v)]
        if len(values) < 2:
            return math.nan
        mean = sum(values) / len(values)
        return math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))

    def half_width(self, field, confidence=0.95):
        """Half-width of the Student-t confidence interval of *field*."""
        values = [v for v in self.samples(field) if not _is_nan(v)]
        if len(values) < 2:
            return math.nan
        stdev = self.stdev(field)
        t = t_ppf(0.5 + confidence / 2.0, len(values) - 1)
        return t * stdev / math.sqrt(len(values))

    def ci(self, field, confidence=0.95):
        """(lower, upper) confidence interval of *field*."""
        mean = self.mean(field)
        half = self.half_width(field, confidence)
        return (mean - half, mean + half)

    def as_dict(self, include_params=True):
        """Means of every output field, plus parameters if requested.

        Per-class columns appear only when the underlying results
        carry a class breakdown (multi-class runs).
        """
        row = {name: self.mean(name) for name in RESULT_FIELDS}
        for entry in self.results[0].per_class:
            cls = entry["txn_class"]
            for key in entry:
                if key != "txn_class":
                    name = "{}__{}".format(key, cls)
                    row[name] = self.mean(name)
        if include_params:
            for key, value in self.params.as_dict().items():
                row.setdefault(key, value)
        return row


def aggregate(results):
    """Wrap replication *results* in a :class:`ReplicatedResult`."""
    return ReplicatedResult(results)


def result_fields():
    """Reporting-order tuple of numeric output field names."""
    return RESULT_FIELDS


def _is_nan(value):
    return isinstance(value, float) and math.isnan(value)


def results_table(results, fields=("ltot", "throughput", "response_time")):
    """Rows (list of dicts) for quick tabular printing of many results."""
    rows = []
    for result in results:
        row = {}
        merged = result.as_dict()
        for field in fields:
            row[field] = merged.get(field)
        rows.append(row)
    return rows
