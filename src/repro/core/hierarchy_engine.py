"""A hierarchical conflict engine with lock escalation.

The paper's conclusion points at systems like Gamma that offer locks
"at the block level and at the file level" — a *mixed* granularity.
This engine models that design: the ``ltot`` granules (blocks) are
grouped into ``nfiles`` files under one database root, and a
transaction that touches at least ``escalation_threshold`` blocks of
one file *escalates* — it takes a single file-level lock instead of
the individual block locks, trading concurrency for a much smaller
lock count (and hence lock-processing cost).

The engine plugs into the simulation model through the same
request/release interface as the flat engines, plus one extra hook:
:meth:`planned_lock_count`, which the model uses to charge the lock
overhead actually incurred (intention locks included), rather than
the flat placement count.
"""

from repro.lockmgr.manager import LockManager
from repro.lockmgr.modes import LockMode

#: Intention mode taken on ancestors of an X / S target.
_INTENT = {LockMode.X: LockMode.IX, LockMode.S: LockMode.IS}

#: Node id of the database root in the two-level hierarchy.
ROOT = "db"


class HierarchicalConflicts:
    """Two-level (file/block) locking with optional escalation.

    Parameters
    ----------
    ltot:
        Number of block granules covering the database.
    nfiles:
        Number of files the blocks are grouped into (balanced split).
    escalation_threshold:
        Escalate to a file lock when a transaction needs at least this
        many blocks of that file; ``0`` disables escalation (pure
        block-level locking, with intention locks still maintained).
    """

    def __init__(self, ltot, nfiles, escalation_threshold=0):
        if ltot < 1:
            raise ValueError("ltot must be >= 1")
        if not 1 <= nfiles <= ltot:
            raise ValueError("nfiles must be in [1, ltot]")
        if escalation_threshold < 0:
            raise ValueError("escalation_threshold must be >= 0")
        self.ltot = ltot
        self.nfiles = nfiles
        self.escalation_threshold = escalation_threshold
        self.manager = LockManager()
        self._active = {}
        self._plans = {}
        self.escalations = 0

    # -- structure ---------------------------------------------------------

    def file_of(self, block):
        """The file id (0-based) that *block* belongs to."""
        return block * self.nfiles // self.ltot

    # -- planning ----------------------------------------------------------

    def _plan(self, txn):
        """The (requests, lock_count) the transaction will issue.

        Requests are (node, mode) pairs over the node namespace
        ``ROOT`` / ``("f", i)`` / ``("b", i)``.  ``lock_count`` counts
        every lock actually set — intention locks included — which is
        what the lock-processing cost scales with.

        A transaction class's granularity preference overrides the
        global escalation rule: ``file`` always takes file locks
        (batch-style coarse locking), ``block`` never escalates, and
        ``default`` (or a classless transaction) follows
        ``escalation_threshold``.
        """
        if txn.granules is None:
            raise ValueError(
                "hierarchical conflict engine needs materialised granules; "
                "transaction {} has none".format(txn.tid)
            )
        mode = LockMode.X if txn.is_writer else LockMode.S
        intent = _INTENT[mode]
        preference = "default"
        txn_class = getattr(txn, "txn_class", None)
        if txn_class is not None:
            preference = txn_class.granularity
        by_file = {}
        for block in txn.granules:
            by_file.setdefault(self.file_of(block), []).append(block)
        requests = [(ROOT, intent)]
        escalated = 0
        for file_id, blocks in sorted(by_file.items()):
            if preference == "file":
                escalate = True
            elif preference == "block":
                escalate = False
            else:
                escalate = bool(
                    self.escalation_threshold
                    and len(blocks) >= self.escalation_threshold
                )
            if escalate:
                requests.append((("f", file_id), mode))
                escalated += 1
            else:
                requests.append((("f", file_id), intent))
                requests.extend((("b", block), mode) for block in sorted(blocks))
        return requests, len(requests), escalated

    def planned_lock_count(self, txn):
        """Locks this transaction will set (memoised until release)."""
        plan = self._plans.get(txn.tid)
        if plan is None:
            plan = self._plan(txn)
            self._plans[txn.tid] = plan
        return plan[1]

    # -- engine interface --------------------------------------------------

    @property
    def active_count(self):
        """Number of transactions currently holding locks."""
        return len(self._active)

    @property
    def locks_held(self):
        """Total locks (all levels) currently held."""
        return sum(plan[1] for tid, plan in self._plans.items()
                   if tid in self._active)

    def request(self, txn):
        """Atomically claim the planned lock set, or name a blocker."""
        requests, _count, escalated = self._plans.get(
            txn.tid
        ) or self._plan(txn)
        self._plans[txn.tid] = (requests, _count, escalated)
        blocker = self.manager.try_acquire_all(txn, requests)
        if blocker is None:
            self._active[txn.tid] = txn
            self.escalations += escalated
            return None
        return blocker

    def release(self, txn):
        """Release everything *txn* holds and drop its plan."""
        self._active.pop(txn.tid, None)
        self._plans.pop(txn.tid, None)
        self.manager.release_all(txn)
