"""Output-parameter accounting (the paper's output list, plus extras)."""

import math

from repro.des.monitor import Tally, TimeWeighted
from repro.engine.machine import BusySnapshot


def _percentiles(samples, fractions):
    """Nearest-rank percentiles (``nan`` when no samples).

    Uses the explicit nearest-rank formula ``rank = ceil(f * n)``
    (1-based, clamped to ``[1, n]``).  The obvious-looking
    ``int(round(f * last))`` is *not* equivalent: Python's ``round``
    is round-half-even (banker's rounding), which picks an
    off-by-one sample whenever ``f * last`` lands on ``.5`` — e.g. the
    median of four samples came out as ``ordered[2]`` instead of
    ``ordered[1]``.
    """
    if not samples:
        return [math.nan for _ in fractions]
    ordered = sorted(samples)
    n = len(ordered)
    return [
        ordered[min(n, max(1, math.ceil(f * n))) - 1] for f in fractions
    ]


class _ClassStats:
    """Per-transaction-class accumulator (multi-class runs only)."""

    __slots__ = ("name", "completions", "response", "attempts", "aborts")

    def __init__(self, name):
        self.name = name
        self.completions = 0
        self.response = Tally("response:" + name)
        self.attempts = Tally("attempts:" + name)
        self.aborts = 0


class MetricsCollector:
    """Collects everything a run reports.

    The paper's output parameters (``totcpus``, ``totios``,
    ``lockcpus``, ``lockios``, ``usefulcpus``, ``usefulios``,
    ``totcom``, ``throughput``, response time) are computed in
    :meth:`finalize`; on top of those the collector tracks lock
    request/denial counts, deadlock aborts, retry counts, and
    time-weighted pending/blocked/active populations.

    With a non-zero warmup the collector snapshots machine busy time at
    the warmup instant and discards completions and response samples
    observed before it.

    *instruments* is an optional live-metrics bundle
    (:class:`repro.obs.metrics.RunInstruments`).  Its updates happen
    *before* the warmup gate: the live view reports what the run is
    doing now, while the paper's reported outputs stay
    warmup-filtered.  Every instrument call is guarded by one
    ``is not None`` branch, so the un-instrumented path is unchanged.
    """

    def __init__(
        self,
        env,
        params,
        machine,
        conflicts=None,
        instruments=None,
        cluster=None,
        network=None,
    ):
        self.env = env
        self.params = params
        self.machine = machine
        self.conflicts = conflicts
        self.instruments = instruments
        self.cluster = cluster
        self.network = network
        self.response = Tally("response")
        self.attempts = Tally("attempts")
        #: Per-completion response times in completion order; feed
        #: these to repro.stats.batch_means_ci for a single-run CI.
        self.response_samples = []
        self.pending = TimeWeighted(env, name="pending")
        self.blocked = TimeWeighted(env, name="blocked")
        self.active = TimeWeighted(env, name="active")
        #: Locks concurrently held — the lock table's occupancy, i.e.
        #: the storage requirement the paper's introduction motivates.
        self.locks_held = TimeWeighted(env, name="locks_held")
        self.completions = 0
        self.lock_requests = 0
        self.lock_denials = 0
        self.deadlock_aborts = 0
        self.failure_aborts = 0
        self.degraded_completions = 0
        self.commit_aborts = 0
        self.commit_latency = Tally("commit_latency")
        # Per-class breakdowns only exist for multi-class runs, so the
        # single-class result payload (and its cache digest) is
        # byte-identical to the historical format.
        mix = params.workload_mix
        self._class_names = mix.names if mix is not None else ()
        self.class_stats = {
            name: _ClassStats(name) for name in self._class_names
        }
        self._warmup_busy = BusySnapshot(0.0, 0.0, 0.0, 0.0)
        self._warmup_downtime = 0.0
        self._warmup_degraded = 0.0
        self._warmup_partition = 0.0
        self._warmup_isolated = 0.0
        self._warmup_messages = (0, 0)
        self._measuring = params.warmup == 0.0
        if params.warmup > 0.0:
            env.process(self._begin_measurement())

    def _begin_measurement(self):
        yield self.params.warmup  # bare-delay sleep
        self._warmup_busy = self.machine.busy_snapshot()
        self._warmup_downtime = self.machine.downtime(self.env.now)
        self._warmup_degraded = self.machine.degraded_time(self.env.now)
        if self.cluster is not None:
            now = self.env.now
            self._warmup_partition = self.cluster.partition_time(now)
            self._warmup_isolated = self.cluster.isolated_site_time(now)
        if self.network is not None:
            self._warmup_messages = (
                self.network.messages_sent,
                self.network.messages_dropped,
            )
        self.response = Tally("response")
        self.attempts = Tally("attempts")
        self.response_samples = []
        self.completions = 0
        self.lock_requests = 0
        self.lock_denials = 0
        self.deadlock_aborts = 0
        self.failure_aborts = 0
        self.degraded_completions = 0
        self.commit_aborts = 0
        self.commit_latency = Tally("commit_latency")
        self.class_stats = {
            name: _ClassStats(name) for name in self._class_names
        }
        self._measuring = True

    # -- event hooks -----------------------------------------------------

    def note_request(self):
        """A lock request was issued (first attempt or retry)."""
        if self.instruments is not None:
            self.instruments.lock_requests.inc()
        if self._measuring:
            self.lock_requests += 1

    def note_denial(self):
        """A lock request was denied."""
        if self.instruments is not None:
            self.instruments.lock_denials.inc()
        if self._measuring:
            self.lock_denials += 1

    def note_abort(self, cause="deadlock", txn=None):
        """A transaction attempt was aborted on a conflict.

        *cause* is the protocol's reason string (``"deadlock"``,
        ``"wounded"``, ``"no-waiting"``); it feeds the live
        aborts-by-cause counter only — the paper's ``deadlock_aborts``
        output keeps counting every conflict abort as before.  *txn*
        (when given and classed) additionally charges the abort to
        the transaction's class breakdown.
        """
        cls = getattr(txn, "class_name", None)
        if self.instruments is not None:
            self.instruments.note_abort(cause)
            if cls is not None:
                self.instruments.note_class_abort(cls, cause)
        if self._measuring:
            self.deadlock_aborts += 1
            if cls is not None and cls in self.class_stats:
                self.class_stats[cls].aborts += 1

    def note_failure_abort(self):
        """A transaction was aborted by a processor crash."""
        if self.instruments is not None:
            self.instruments.note_abort("fault")
        if self._measuring:
            self.failure_aborts += 1

    def note_commit_abort(self, reason):
        """A distributed commit was presumed aborted (will retry)."""
        if self.instruments is not None:
            self.instruments.note_commit_event("abort")
            self.instruments.note_abort(reason)
        if self._measuring:
            self.commit_aborts += 1

    def note_commit_latency(self, latency):
        """A distributed commit decision landed after *latency*."""
        if self.instruments is not None:
            self.instruments.note_commit_event("commit")
            self.instruments.observe_commit_latency(latency)
        if self._measuring:
            self.commit_latency.observe(latency)

    def note_degraded_mode(self):
        """A writer hit the minority-partition read-only mode."""
        if self.instruments is not None:
            self.instruments.note_commit_event("degraded")

    def note_election(self):
        """A primary-copy failover election completed."""
        if self.instruments is not None:
            self.instruments.note_commit_event("election")

    def note_completion(self, txn):
        """A transaction finished and released its locks."""
        cls = txn.class_name
        if self.instruments is not None:
            self.instruments.commits.inc()
            if txn.attempts > 1:
                self.instruments.restarts.inc(txn.attempts - 1)
            self.instruments.response.observe(self.env.now - txn.arrival)
            if cls is not None:
                self.instruments.note_class_completion(
                    cls, txn.attempts - 1, self.env.now - txn.arrival
                )
        if not self._measuring:
            return
        if cls is not None and cls in self.class_stats:
            stats = self.class_stats[cls]
            stats.completions += 1
            stats.response.observe(self.env.now - txn.arrival)
            stats.attempts.observe(txn.attempts)
        self.completions += 1
        if self.machine.down_count or (
            self.cluster is not None and self.cluster.partitioned
        ):
            # Committed while at least one node was down (or the
            # cluster was partitioned): this is the degraded-mode
            # share of the throughput.
            self.degraded_completions += 1
        response = self.env.now - txn.arrival
        self.response.observe(response)
        self.response_samples.append(response)
        self.attempts.observe(txn.attempts)

    # -- finalisation ------------------------------------------------------

    def finalize(self):
        """Compute the :class:`~repro.core.results.SimulationResult`."""
        from repro.core.results import SimulationResult

        params = self.params
        horizon = params.tmax - params.warmup
        busy = self.machine.busy_snapshot().minus(self._warmup_busy)
        percentiles = _percentiles(self.response_samples, (0.5, 0.95))
        npros = params.npros
        usefulcpus = (busy.totcpus - busy.lockcpus) / npros
        usefulios = (busy.totios - busy.lockios) / npros
        denial_rate = (
            self.lock_denials / self.lock_requests if self.lock_requests else 0.0
        )
        escalations = getattr(self.conflicts, "escalations", 0)
        now = self.env.now
        downtime = self.machine.downtime(now) - self._warmup_downtime
        degraded = self.machine.degraded_time(now) - self._warmup_degraded
        availability = 1.0 - downtime / (npros * horizon) if horizon else 1.0
        partition_time = 0.0
        messages_sent = 0
        messages_dropped = 0
        if self.cluster is not None:
            partition_time = (
                self.cluster.partition_time(now) - self._warmup_partition
            )
            isolated = (
                self.cluster.isolated_site_time(now) - self._warmup_isolated
            )
            if isolated > 0.0 and horizon:
                # A site outside the majority is capacity the partition
                # took away; fold it into availability the same way
                # processor downtime is.
                availability *= max(
                    0.0, 1.0 - isolated / (self.cluster.nnodes * horizon)
                )
            # Partitioned time is degraded-mode time even when every
            # processor stayed up.  Overlap between the two windows is
            # not subtracted (plans normally use one fault family).
            degraded += partition_time
        if self.network is not None:
            messages_sent = self.network.messages_sent - self._warmup_messages[0]
            messages_dropped = (
                self.network.messages_dropped - self._warmup_messages[1]
            )
        degraded_throughput = (
            self.degraded_completions / degraded if degraded > 0.0 else 0.0
        )
        per_class = tuple(
            {
                "txn_class": name,
                "totcom": stats.completions,
                "throughput": stats.completions / horizon,
                "response_time": stats.response.mean,
                "aborts": stats.aborts,
                "mean_attempts": stats.attempts.mean,
            }
            for name, stats in self.class_stats.items()
        )
        return SimulationResult(
            per_class=per_class,
            params=params,
            totcpus=busy.totcpus,
            totios=busy.totios,
            lockcpus=busy.lockcpus,
            lockios=busy.lockios,
            usefulcpus=usefulcpus,
            usefulios=usefulios,
            totcom=self.completions,
            throughput=self.completions / horizon,
            response_time=self.response.mean,
            response_p50=percentiles[0],
            response_p95=percentiles[1],
            cpu_utilization=busy.totcpus / (npros * horizon),
            io_utilization=busy.totios / (npros * horizon),
            lock_overhead=busy.lockcpus + busy.lockios,
            lock_requests=self.lock_requests,
            lock_denials=self.lock_denials,
            denial_rate=denial_rate,
            deadlock_aborts=self.deadlock_aborts,
            lock_escalations=escalations,
            mean_locks_held=self.locks_held.mean(),
            max_locks_held=self.locks_held.maximum,
            mean_attempts=self.attempts.mean,
            mean_pending=self.pending.mean(),
            mean_blocked=self.blocked.mean(),
            mean_active=self.active.mean(),
            failure_aborts=self.failure_aborts,
            availability=availability,
            degraded_throughput=degraded_throughput,
            commit_aborts=self.commit_aborts,
            commit_latency=(
                self.commit_latency.mean if self.commit_latency.count else 0.0
            ),
            messages_sent=messages_sent,
            messages_dropped=messages_dropped,
            partition_time=partition_time,
        )
